#!/usr/bin/env python
"""Regular vs. irregular traffic: when does the bandwidth model matter?

Section 3 lists the classical regular consumers of all-to-all routing
(matrix transposition, HPF array remapping); Section 6 argues the
interesting case is *irregular* traffic.  This demo prices all three on the
matched machine pair and visualizes each schedule's load profile — flat for
the regular patterns, spiky-but-contained for the scheduled irregular one.

Also shows the workload I/O round-trip used to pin experiment inputs.

Run:  python examples/array_remap.py
"""

import tempfile
from pathlib import Path

from repro import MachineParams
from repro.scheduling import bsp_g_routing_time, evaluate_schedule, unbalanced_send
from repro.util.reporting import Table
from repro.workloads import (
    block_remap_relation,
    load_relation,
    matrix_transpose_relation,
    save_relation,
    task_spawn_relation,
)

P, M, L = 64, 8, 4
local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
G = local.g

workloads = {
    "matrix transpose 512x512": matrix_transpose_relation(P, 512, 512),
    "HPF remap block 4 -> 64": block_remap_relation(P, 40_000, 4, 64),
    "nested-parallel task spawn": task_spawn_relation(P, tasks_per_proc=60, spawn_prob=0.03, burst=500, seed=2),
}

table = Table(
    ["workload", "n (flits)", "imbalance h/(n/p)", "BSP(g)", "BSP(m)", "speedup"],
    title=f"regular vs irregular traffic (p={P}, m={M}, g={G:g})",
)
schedules = {}
for name, rel in workloads.items():
    t_local = bsp_g_routing_time(rel, g=G, L=L)
    sched = unbalanced_send(rel, m=M, epsilon=0.5, seed=1)
    rep = evaluate_schedule(sched, global_)
    schedules[name] = sched
    table.add_row(
        [name, rel.n, round(rel.h / (rel.n / P), 2), t_local,
         rep.completion_time, round(t_local / rep.completion_time, 2)]
    )
print(table.render())

print(
    "\nReading: regular patterns (transpose, remap) are balanced — both "
    "models tie up to constants.  The task-spawn skew is where the "
    "aggregate-bandwidth machine pulls ahead."
)

name = "nested-parallel task spawn"
print(f"\nload profile of the scheduled '{name}' traffic (m = {M}):")
print(schedules[name].load_profile(m=M, width=48, bins=10))

# Pin the workload to disk and prove the round-trip.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "spawn_workload.npz"
    save_relation(path, workloads[name])
    back = load_relation(path)
    print(
        f"\nworkload saved to {path.name} and reloaded: "
        f"{back.n_messages} messages, {back.n} flits — "
        f"{'identical' if back.n == workloads[name].n else 'MISMATCH'}"
    )
