#!/usr/bin/env python
"""Long messages, wormhole constraints and start-up overheads (§6.1).

Real networks often require a long message's flits to travel back-to-back
(wormhole routing) and charge a start-up cost per message (the LOGP ``o``).
This example compares the three senders the paper provides for that world:

* Unbalanced-Consecutive-Send — whole per-processor block contiguous
  (additive term ``x̄'``);
* the long-message variant — per-*message* contiguity only (additive term
  ``l̂``, the longest message);
* the overhead variant — each message prepended with ``o`` dummy slots.

Run:  python examples/wormhole_messages.py
"""

from repro import MachineParams
from repro.scheduling import (
    evaluate_schedule,
    offline_lower_bound,
    send_window,
    unbalanced_consecutive_send,
    unbalanced_send_long,
    unbalanced_send_with_overhead,
)
from repro.util.reporting import Table
from repro.workloads import variable_length_relation

P, M, EPS = 256, 32, 0.25
params = MachineParams(p=P, m=M, L=4)

# A bursty RPC-like workload: many short messages, a heavy tail of big ones.
rel = variable_length_relation(P, n_messages=5000, mean_length=6, dist="pareto", seed=0)
window = send_window(rel.n, M, EPS)
print(
    f"workload: {rel.n_messages} messages, {rel.n} flits, "
    f"longest message l̂ = {rel.max_length}, heaviest sender x̄ = {rel.x_bar}"
)
print(f"window W = (1+ε)n/m = {window}; offline optimum span = {offline_lower_bound(rel, M)}\n")

table = Table(
    ["sender", "span", "additive term", "completion", "T/OPT", "overloaded"],
    title=f"wormhole-constrained senders on BSP(m={M})",
)

s1 = unbalanced_consecutive_send(rel, M, EPS, seed=1)
s1.check_valid(require_consecutive=True)
r1 = evaluate_schedule(s1, params)
table.add_row(["consecutive-block", r1.span, f"x̄' = {int(s1.meta['x_bar_prime'])}",
               r1.completion_time, round(r1.ratio, 3), r1.overloaded_slots])

s2 = unbalanced_send_long(rel, M, EPS, seed=1)
s2.check_valid(require_consecutive=True)
r2 = evaluate_schedule(s2, params)
table.add_row(["per-message (long)", r2.span, f"l̂ = {rel.max_length}",
               r2.completion_time, round(r2.ratio, 3), r2.overloaded_slots])

for o in (2, 8):
    s3, inflated = unbalanced_send_with_overhead(rel, M, o=o, epsilon=EPS, seed=1)
    s3.check_valid(require_consecutive=True)
    r3 = evaluate_schedule(s3, params)
    table.add_row([f"overhead o={o}", r3.span, f"l̂+o = {rel.max_length + o}",
                   r3.completion_time, round(r3.completion_time / r1.optimal_time, 3),
                   r3.overloaded_slots])

print(table.render())
print(
    "\nReading: per-message contiguity (additive l̂) beats whole-block "
    "contiguity (additive x̄') whenever processors hold many short messages; "
    "start-up overheads inflate n to (1 + o/l̄)n and the bound follows suit — "
    "both exactly the Section 6.1 closing remarks."
)
