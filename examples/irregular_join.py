#!/usr/bin/env python
"""Irregular application scenario: a distributed hash join with skew.

Section 6 motivates unbalanced h-relations with exactly this workload:
"skew in the amount of new values produced by the processors (e.g., an
intermediate result of a join operation)".  We build a synthetic
hash-partitioned join whose probe side follows a Zipf key distribution —
a handful of processors own hot keys and must ship large intermediate
results — and route the repartitioning traffic on both machines.

The demo shows the crossover the paper predicts: the globally-limited
machine's advantage appears exactly when the send imbalance ``x̄``
exceeds ``g · n/p``, and grows to Θ(g).

Run:  python examples/irregular_join.py
"""

import numpy as np

from repro import MachineParams
from repro.scheduling import bsp_g_routing_time, evaluate_schedule, unbalanced_send
from repro.util.reporting import Table
from repro.workloads import HRelation

P, M, L = 512, 64, 8
G = P / M
RNG = np.random.default_rng(7)


def join_repartition_traffic(zipf_alpha: float) -> HRelation:
    """Traffic of the join's repartition phase.

    Each processor holds 2000 probe tuples whose keys follow a Zipf law;
    a tuple joining key ``k`` must be shipped to processor ``hash(k) % P``.
    Skew in the key distribution concentrates *destinations*; the build
    side's matching factor (hot keys match more rows) concentrates
    *sources* too — both kinds of imbalance the paper discusses.
    """
    tuples_per_proc = 2000
    keys = RNG.zipf(zipf_alpha, size=(P, tuples_per_proc)) % 4096
    # match factor: hot keys produce more output rows (join fan-out)
    fanout = np.maximum(1, (4096 // (1 + keys)) // 256)
    src = np.repeat(np.arange(P), tuples_per_proc)
    dest = (keys * 2654435761 % P).reshape(-1)
    length = fanout.reshape(-1)
    mask = src != dest  # local tuples need no network hop
    return HRelation(p=P, src=src[mask], dest=dest[mask], length=length[mask].astype(np.int64))


local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
table = Table(
    ["zipf α", "n (flits)", "x̄", "ȳ", "h/(n/p)", "crossover h≥g·n/p?",
     "BSP(g)", "BSP(m)", "speedup"],
    title=f"join repartitioning on p={P}, m={M} (g={G:g})",
)

for alpha in (1.5, 2.0, 3.0, 4.0):
    rel = join_repartition_traffic(alpha)
    t_local = bsp_g_routing_time(rel, g=G, L=L)
    sched = unbalanced_send(rel, m=M, epsilon=0.2, seed=int(alpha * 10))
    rep = evaluate_schedule(sched, global_)
    crossed = rel.h >= G * rel.n / P
    table.add_row(
        [alpha, rel.n, rel.x_bar, rel.y_bar, round(rel.h / (rel.n / P), 1),
         "yes" if crossed else "no", t_local, rep.completion_time,
         round(t_local / rep.completion_time, 2)]
    )

print(table.render())
print(
    "\nReading: higher α concentrates the join's hot keys; once the "
    "imbalance crosses g, the speedup of the aggregate-bandwidth machine "
    f"climbs toward g = {G:g}, exactly the paper's Section 1 prediction."
)
