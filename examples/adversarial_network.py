#!/usr/bin/env python
"""Dynamic routing under an adversarial traffic source (Section 6.2).

A malicious client floods one processor with requests at rate beta.  On
the locally-limited BSP(g), any beta > 1/g sinks the system (Theorem 6.5):
the backlog grows linearly at rate beta - 1/g.  Algorithm B on the matched
BSP(m) — interval batching plus Unbalanced-Send — absorbs the same flood
with bounded queues (Theorem 6.7).

Run:  python examples/adversarial_network.py
"""

from repro import MachineParams
from repro.dynamic import (
    AlgorithmBProtocol,
    BSPgIntervalProtocol,
    SingleTargetAdversary,
    check_compliance,
    expected_time_in_system,
    required_u,
    run_dynamic,
)
from repro.util.reporting import Table

P, M, L = 256, 16, 8
W = 128  # adversary window
HORIZON = 30_000

local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
g = local.g
print(f"machines: BSP(g={g:g}) vs BSP(m={M}); adversary window w={W}, horizon {HORIZON}\n")

table = Table(
    ["beta·g", "compliant", "BSP(g) backlog slope", "BSP(g) verdict",
     "AlgB backlog slope", "AlgB verdict", "AlgB mean sojourn"],
    title="single-source flood at rate beta (Theorem 6.5 vs Theorem 6.7)",
)

for beta_g in (0.5, 1.5, 3.0, 6.0):
    beta = beta_g / g
    adversary = SingleTargetAdversary(P, W, beta=beta)
    trace = adversary.generate(HORIZON, seed=42)
    ok, _why = check_compliance(trace, W, alpha=beta, beta=beta)

    res_local = run_dynamic(BSPgIntervalProtocol(local, W), trace)
    res_global = run_dynamic(
        AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=7), trace
    )
    table.add_row(
        [beta_g, "yes" if ok else "NO",
         round(res_local.backlog_slope(), 4),
         "stable" if res_local.is_stable() else "UNSTABLE",
         round(res_global.backlog_slope(), 4),
         "stable" if res_global.is_stable() else "UNSTABLE",
         round(res_global.mean_sojourn, 1)]
    )

print(table.render())

# Backlog timeline for the beta*g = 3 case — watch one queue melt.
beta = 3.0 / g
trace = SingleTargetAdversary(P, W, beta=beta).generate(HORIZON, seed=42)
res_local = run_dynamic(BSPgIntervalProtocol(local, W), trace)
res_global = run_dynamic(
    AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=7), trace
)
print("\nbacklog over time (beta·g = 3):")
print(f"{'time':>8} | {'BSP(g) backlog':>14} | {'AlgB backlog':>12}")
step = max(1, len(res_local.backlog) // 12)
for i in range(0, len(res_local.backlog), step):
    t = int(res_local.backlog_times[i])
    bg = int(res_local.backlog[i])
    j = min(i, len(res_global.backlog) - 1)
    bm = int(res_global.backlog[j])
    bar = "#" * min(60, bg // 20)
    print(f"{t:>8} | {bg:>14} | {bm:>12}  {bar}")

# Claim 6.8's analytic sanity check for the stable protocol:
u = required_u(W, r=0.05)
print(
    f"\nClaim 6.8: with slack u = {u} the dominating M/G/1 queue predicts an "
    f"expected time in system of {expected_time_in_system(W, u, 0.05):.0f} "
    f"steps = O(w²/u); the measured mean sojourn above stays near one interval."
)
