#!/usr/bin/env python
"""Run every Table-1 problem on all four machine models — the measured
reproduction of the paper's Table 1.

Each algorithm is a real SPMD program on the engine; the printed time is
the model time (the quantity the paper bounds), not wall-clock.

Run:  python examples/model_zoo.py
"""

import numpy as np

from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import (
    broadcast,
    columnsort,
    list_ranking_contraction,
    list_ranking_wyllie,
    one_to_all,
    random_list,
    sequential_ranks,
    summation,
)
from repro.theory import render_table1
from repro.util.reporting import Table

P, M, L = 256, 16, 8
local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
G = local.g


def machines():
    return {
        "QSM(m)": QSMm(global_),
        "QSM(g)": QSMg(local),
        "BSP(m)": BSPm(global_),
        "BSP(g)": BSPg(local),
    }


rows = []

# --- one-to-all personalized communication -------------------------------
times = {}
for name, mach in machines().items():
    res = one_to_all(mach)
    assert res.results == list(range(P))
    times[name] = res.time
rows.append(["One-to-all", times["QSM(m)"], times["QSM(g)"], times["BSP(m)"], times["BSP(g)"]])

# --- broadcasting ----------------------------------------------------------
times = {}
for name, mach in machines().items():
    res = broadcast(mach, value=42)
    assert all(v == 42 for v in res.results)
    times[name] = res.time
rows.append(["Broadcast", times["QSM(m)"], times["QSM(g)"], times["BSP(m)"], times["BSP(g)"]])

# --- parity / summation ------------------------------------------------------
values = [float(i) for i in range(P)]
times = {}
for name, mach in machines().items():
    res, total = summation(mach, values)
    assert total == sum(values)
    times[name] = res.time
rows.append(["Summation", times["QSM(m)"], times["QSM(g)"], times["BSP(m)"], times["BSP(g)"]])

# --- list ranking ------------------------------------------------------------
succ = random_list(P, seed=3)
oracle = sequential_ranks(succ)
times = {}
for name, mach in machines().items():
    if mach.uses_shared_memory:
        res, ranks = list_ranking_wyllie(mach, succ)
    else:
        res, ranks = list_ranking_contraction(mach, succ, seed=5)
    assert np.array_equal(ranks, oracle)
    times[name] = res.time
rows.append(["List ranking", times["QSM(m)"], times["QSM(g)"], times["BSP(m)"], times["BSP(g)"]])

# --- sorting (BSP machines; the paper's QSM/BSP bounds differ only in L) -----
keys = np.random.default_rng(0).random(2048)
times = {}
for name in ("BSP(m)", "BSP(g)"):
    mach = machines()[name]
    res, out = columnsort(mach, keys)
    assert np.array_equal(out, np.sort(keys))
    times[name] = res.time
rows.append(["Sorting (n=2048)", "-", "-", times["BSP(m)"], times["BSP(g)"]])

table = Table(
    ["problem", "QSM(m)", "QSM(g)", "BSP(m)", "BSP(g)"],
    title=f"measured model times (p = n = {P}, m = {M}, g = {G:g}, L = {L})",
)
for row in rows:
    table.add_row(row)
print(table.render())

print("\nFor comparison, the analytic Table 1 at the same parameter point:")
print(render_table1(p=P, L=float(L), m=M))
