#!/usr/bin/env python
"""The Section-4 pipeline, end to end: PRAM algorithm → measured trace →
QSM(m) mapping → comparison with the hand-built algorithm.

The paper's Table-1 upper bounds mostly follow from one observation: any
EREW/QRQW PRAM algorithm with time t and work w becomes a QSM(m) algorithm
of time O(n/m + t + w/m).  This demo runs two real EREW algorithms on the
PRAM engine, extracts their *measured* traces, maps them, and shows why
work-optimality decides who benefits.

It also runs the §4.1 h-relation gadgets — the other direction of the
conversion — on the Arbitrary-CRCW engine.

Run:  python examples/pram_pipeline.py
"""

import numpy as np

from repro import MachineParams, QSMm
from repro.algorithms import (
    pram_prefix_sums,
    pram_wyllie_ranks,
    random_list,
    realize_h_relation_crcw,
    realize_h_relation_crcw_randomized,
    sequential_ranks,
    simulate_trace_on_qsm_m,
    summation,
    trace_from_run,
)
from repro.util.reporting import Table
from repro.workloads import uniform_random_relation

P = 1024

# --- 1. run the PRAM algorithms and measure their traces ------------------
prefix_run, prefixes = pram_prefix_sums([1.0] * P)
succ = random_list(P, seed=0)
wyllie_run, ranks = pram_wyllie_ranks(succ)
assert prefixes[-1] == float(P)
assert np.array_equal(ranks, sequential_ranks(succ))

traces = {
    "prefix sums (EREW, w = O(n))": trace_from_run(prefix_run),
    "Wyllie ranking (EREW, w = O(n lg n))": trace_from_run(wyllie_run),
}
for name, tr in traces.items():
    print(f"{name}: t = {tr.t} steps, w = {tr.w} shared-memory ops")

# --- 2. map both onto the QSM(m) across m ---------------------------------
table = Table(
    ["algorithm", "m", "mapped time", "paper bound n/m+t+w/m", "direct QSM(m) summation"],
    title="\nthe §4 generic mapping, measured",
)
for name, tr in traces.items():
    for m in (16, 64, 256):
        measured, bound = simulate_trace_on_qsm_m(tr, m)
        _, global_ = MachineParams.matched_pair(p=P, m=m, L=2)
        direct = summation(QSMm(global_), [1.0] * P)[0].time
        table.add_row([name.split(" (")[0], m, measured, round(bound, 1), direct])
print(table.render())
print(
    "\nReading: the mapped work-optimal algorithm tracks the hand-built "
    "Table-1 implementation; mapping Wyllie pays its lg-factor work — the "
    "reason the paper's list-ranking bound needs a work-efficient algorithm."
)

# --- 3. the other direction: h-relations on the CRCW (§4.1) --------------
rel = uniform_random_relation(24, 120, seed=1)
det_run, det = realize_h_relation_crcw(rel)
rand_run, rand = realize_h_relation_crcw_randomized(rel, seed=2)
assert all(sorted(det[i]) == sorted(rand[i]) for i in range(rel.p))
print(
    f"\n§4.1 h-relation gadget (n={rel.n}, h={rel.h}): deterministic teams "
    f"finish in {det_run.time:g} CRCW steps (= 2·ȳ), the randomized darts in "
    f"{rand_run.time:g} (O(h + lg n)).\n"
    "This is what lets a CRCW lower bound t(n) lift to Ω(g·t(n)) on the "
    "BSP(g): the CRCW routes the superstep's h-relation in O(h) while the "
    "BSP(g) pays g·h."
)
