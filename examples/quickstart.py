#!/usr/bin/env python
"""Quickstart: local vs. global bandwidth restrictions in 60 lines.

Builds the paper's comparison setting — a BSP(g) and a BSP(m) machine with
*equal aggregate bandwidth* (p/g = m) — throws a skewed communication
pattern at both, and shows the globally-limited machine winning by Θ(g)
once one processor dominates the traffic.

Run:  python examples/quickstart.py
"""

from repro import MachineParams
from repro.scheduling import (
    bsp_g_routing_time,
    evaluate_schedule,
    naive_schedule,
    offline_optimal_schedule,
    unbalanced_send,
)
from repro.util.reporting import Table
from repro.workloads import balanced_h_relation, zipf_h_relation

P, M, L = 1024, 64, 16  # 1024 processors, aggregate bandwidth 64 => gap g = 16
EPSILON = 0.15

local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
print(f"machines: BSP(g) with g={local.g:g}  vs  BSP(m) with m={global_.m}  (same aggregate bandwidth)")

table = Table(
    ["workload", "imbalance x̄/(n/p)", "BSP(g) time", "BSP(m) time", "BSP(m)/OPT", "speedup"],
    title="\nrouting 100k messages through the same total bandwidth",
)

for name, rel in {
    "balanced": balanced_h_relation(P, h=100, seed=0),
    "zipf-skewed": zipf_h_relation(P, n=100_000, alpha=1.2, seed=0),
}.items():
    # Locally limited: no scheduling can help; the cost is g*(max send/recv).
    t_local = bsp_g_routing_time(rel, g=local.g, L=L)

    # Globally limited: Unbalanced-Send (Theorem 6.2) randomizes injection
    # slots so no time slot exceeds m, w.h.p.
    schedule = unbalanced_send(rel, m=M, epsilon=EPSILON, seed=1)
    schedule.check_valid()
    report = evaluate_schedule(schedule, global_)

    table.add_row(
        [name, round(rel.imbalance(), 1), t_local, report.completion_time,
         round(report.ratio, 3), round(t_local / report.completion_time, 1)]
    )

print(table.render())

# What happens without scheduling?  The naive everyone-sends-at-once
# schedule trips the exponential overload penalty of Section 2:
rel = zipf_h_relation(P, n=100_000, alpha=1.2, seed=0)
naive = evaluate_schedule(naive_schedule(rel), global_)
optimal = evaluate_schedule(offline_optimal_schedule(rel, M), global_)
print(
    f"\nwithout scheduling (naive): {naive.completion_time:.3g} "
    f"({naive.overloaded_slots} overloaded slots) — "
    f"{naive.completion_time / optimal.completion_time:.0f}x the offline optimum.\n"
    "That penalty is exactly why Section 6's randomized senders exist."
)
