"""Reliable transport over a faulty bandwidth-limited machine.

:func:`reliable_route` routes an h-relation on a machine whose network
drops, duplicates, reorders or corrupts messages (and whose processors may
stall or crash), and guarantees **exactly-once** delivery of every flit:

* every flit carries its global flit index as a *sequence number*;
* receivers validate each arrival (a corrupted sequence number is
  detectable — see :class:`~repro.faults.plan.CorruptedPayload`) and
  discard duplicates against the set of already-delivered flits;
* receivers **acknowledge** every valid arrival in a follow-up superstep;
  acks travel through the same faulty network and are themselves scheduled
  against the bandwidth limit;
* senders retransmit every unacknowledged flit after an exponential
  backoff (``backoff_base * 2^round`` idle supersteps), and each retry
  round is re-admitted through the Unbalanced-Send discipline — the retry
  relation is scheduled exactly like a fresh static routing problem, so
  re-injections are priced against the aggregate limit ``m_t`` like any
  other traffic.  **There are no free re-injections**: summing
  ``total_flits`` over the data rounds' records always equals
  ``rel.n + retried``.

The protocol's cost is the paper's own accounting: the sum of the engine
times of every data and ack superstep plus the idle backoff supersteps
(an empty BSP superstep costs ``L``).  With a null fault plan the round-0
run is bit-identical to :func:`repro.scheduling.execute.execute_schedule`
on a clean machine, so ``fault_free_time`` (the round-0 engine time) makes
``overhead`` an exact resilience price.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.core.events import SuperstepRecord
from repro.obs.metrics import active_metrics
from repro.obs.tracer import active_tracer
from repro.scheduling.naive import naive_schedule
from repro.scheduling.schedule import expand_per_flit
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike, as_generator
from repro.workloads.relations import HRelation

__all__ = ["TransportError", "TransportResult", "reliable_route"]

_I64 = np.int64


class TransportError(RuntimeError):
    """The reliable transport could not deliver every flit within its
    retry budget.  ``pending`` holds the undelivered flit ids and
    ``result`` the partial :class:`TransportResult`."""

    def __init__(self, message: str, *, pending: np.ndarray, result: "TransportResult") -> None:
        super().__init__(message)
        self.pending = pending
        self.result = result


@dataclass
class TransportResult:
    """Outcome of a :func:`reliable_route` protocol run.

    ``time`` is total model time (data + ack + backoff supersteps);
    ``fault_free_time`` is the round-0 data superstep alone, which is
    exactly what the same schedule costs on a fault-free machine, so
    ``overhead`` prices the resilience.
    """

    n: int
    rounds: int
    time: float
    fault_free_time: float
    delivered: int
    retried: int
    dropped: int
    duplicates: int
    corrupted: int
    backoff_steps: int
    data_runs: List[RunResult] = field(default_factory=list)
    ack_runs: List[RunResult] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Resilience overhead: protocol time over the fault-free time."""
        if self.fault_free_time == 0:
            return float("nan")
        return self.time / self.fault_free_time

    @property
    def exactly_once(self) -> bool:
        """True when every flit was delivered exactly once."""
        return self.delivered == self.n

    def to_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "flits": self.n,
            "rounds": self.rounds,
            "time": self.time,
            "fault_free_time": self.fault_free_time,
            "overhead": self.overhead,
            "delivered": self.delivered,
            "retried": self.retried,
            "dropped": self.dropped,
            "duplicates": self.duplicates,
            "corrupted": self.corrupted,
            "backoff_steps": self.backoff_steps,
            "exactly_once": self.exactly_once,
        }


def _transport_program(ctx, slots, dests, seq_ids):
    """One protocol superstep: inject the assigned flits, return arrivals."""
    ctx.send_many(dests, payloads=seq_ids, slots=slots)
    yield
    return ctx.receive().payloads


def _run_flits(
    machine: Machine,
    p: int,
    src: np.ndarray,
    dest: np.ndarray,
    seq_ids: np.ndarray,
    scheduler: Callable,
    epsilon: float,
    rng: np.random.Generator,
    max_time: Optional[float],
    audit: bool,
) -> RunResult:
    """Schedule one round's flits against the bandwidth limit and run it."""
    rel = HRelation(p=p, src=src, dest=dest, length=np.ones(src.size, dtype=_I64))
    if machine.params.m is not None:
        sched = scheduler(rel, machine.params.m, epsilon, seed=rng)
    else:
        sched = naive_schedule(rel)
    slots = np.asarray(sched.flit_slots, dtype=_I64)
    order = np.argsort(src, kind="stable")
    bounds = np.searchsorted(src[order], np.arange(p + 1, dtype=_I64))
    plan = []
    for pid in range(p):
        idx = order[bounds[pid] : bounds[pid + 1]]
        plan.append((slots[idx], dest[idx], seq_ids[idx]))
    return machine.run(
        _transport_program, per_proc_args=plan, nprocs=p, max_time=max_time, audit=audit
    )


def _valid_arrivals(received) -> Tuple[np.ndarray, int]:
    """Split one inbox's payload column into (valid seq ids, #corrupted)."""
    if isinstance(received, np.ndarray) and received.dtype.kind in "iu":
        arr = received.astype(_I64, copy=False)
        bad = arr < 0
        return arr[~bad], int(bad.sum())
    ids: List[int] = []
    corrupted = 0
    for v in received:
        if isinstance(v, (int, np.integer)) and v >= 0:
            ids.append(int(v))
        else:
            corrupted += 1
    return np.asarray(ids, dtype=_I64), corrupted


def _idle_superstep_cost(machine: Machine, p: int) -> float:
    """Model time of one empty (backoff) superstep on this machine."""
    empty = SuperstepRecord(index=0, work=[0.0] * p)
    cost, _, _ = machine._price(empty)
    return cost


def reliable_route(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable] = None,
    max_rounds: int = 64,
    backoff_base: int = 1,
    max_time: Optional[float] = None,
    audit: bool = False,
) -> TransportResult:
    """Route ``rel`` with exactly-once delivery despite injected faults.

    Parameters mirror :func:`repro.scheduling.execute.route`; additionally
    ``max_rounds`` bounds the retry loop (raising :class:`TransportError`
    with the pending flits if exhausted), ``backoff_base`` scales the
    exponential backoff, and ``max_time``/``audit`` are forwarded to every
    engine run.  The machine's attached fault injector (if any) supplies
    the faults; without one the protocol completes in a single round.
    """
    if machine.uses_shared_memory:
        raise ValueError("reliable transport routes point-to-point messages; use a BSP machine")
    p = rel.p
    if machine.params.p < p:
        raise ValueError(f"machine has {machine.params.p} processors, relation needs {p}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    if backoff_base < 1:
        raise ValueError(f"backoff_base must be >= 1, got {backoff_base}")
    rng = as_generator(seed)
    if scheduler is None:
        scheduler = unbalanced_send

    n = rel.n
    flit_src = expand_per_flit(rel.src, rel.length).astype(_I64, copy=False)
    flit_dest = expand_per_flit(rel.dest, rel.length).astype(_I64, copy=False)
    delivered_mask = np.zeros(n, dtype=bool)  # receiver-side dedup ledger
    acked_mask = np.zeros(n, dtype=bool)  # sender-side retransmit ledger
    pending = np.arange(n, dtype=_I64)

    result = TransportResult(
        n=n, rounds=0, time=0.0, fault_free_time=0.0,
        delivered=0, retried=0, dropped=0, duplicates=0, corrupted=0,
        backoff_steps=0,
    )
    if n == 0:
        return result
    idle_cost = _idle_superstep_cost(machine, p)
    tracer = active_tracer()

    for r in range(max_rounds):
        result.rounds = r + 1
        if r > 0:
            result.retried += int(pending.size)
        round_span = (
            tracer.begin(
                f"round {r}", cat="transport", track="transport",
                pending=int(pending.size), retry=r > 0,
            )
            if tracer is not None
            else None
        )
        # -- data superstep: pending flits, rescheduled against m ----------
        res = _run_flits(
            machine, p, flit_src[pending], flit_dest[pending], pending,
            scheduler, epsilon, rng, max_time, audit,
        )
        result.data_runs.append(res)
        result.time += res.time
        if r == 0:
            result.fault_free_time = res.time
        result.dropped += int(sum(rec.stats.get("fault_dropped", 0.0) for rec in res.records))
        # -- receiver side: validate, dedup, build the ack batch -----------
        ack_src: List[np.ndarray] = []
        ack_ids: List[np.ndarray] = []
        for pid, received in enumerate(res.results):
            ids, corrupt = _valid_arrivals(received)
            result.corrupted += corrupt
            if not ids.size:
                continue
            if np.any(flit_dest[ids] != pid):
                raise AssertionError(
                    f"transport invariant broken: processor {pid} received a "
                    "flit addressed elsewhere (engine bug)"
                )
            uniq = np.unique(ids)
            fresh = uniq[~delivered_mask[uniq]]
            result.duplicates += int(ids.size - fresh.size)
            delivered_mask[fresh] = True
            # ack *every* valid arrival (duplicates included): a duplicate
            # means the original ack was lost, so the sender needs another
            ack_src.append(np.full(ids.size, pid, dtype=_I64))
            ack_ids.append(ids)
        # -- ack superstep: through the same faulty, priced network --------
        if ack_src:
            a_src = np.concatenate(ack_src)
            a_ids = np.concatenate(ack_ids)
            ack_res = _run_flits(
                machine, p, a_src, flit_src[a_ids], a_ids,
                scheduler, epsilon, rng, max_time, audit,
            )
            result.ack_runs.append(ack_res)
            result.time += ack_res.time
            result.dropped += int(
                sum(rec.stats.get("fault_dropped", 0.0) for rec in ack_res.records)
            )
            for received in ack_res.results:
                ids, corrupt = _valid_arrivals(received)
                result.corrupted += corrupt
                if ids.size:
                    acked_mask[ids] = True
        pending = np.nonzero(~acked_mask)[0].astype(_I64)
        if not pending.size:
            if round_span is not None:
                tracer.end(round_span, unacked=0)
            break
        # -- exponential backoff before the retry round --------------------
        steps = backoff_base * (2**r)
        result.backoff_steps += steps
        result.time += steps * idle_cost
        if round_span is not None:
            # idle supersteps occupy model time too: advance the traced
            # clock so the next round's runs start after the backoff
            backoff_model = steps * idle_cost
            tracer.add(
                "backoff", cat="transport", track="transport",
                parent=round_span, model_start=tracer.model_clock,
                model_dur=backoff_model, args={"steps": steps},
            )
            tracer.model_clock += backoff_model
            tracer.end(round_span, unacked=int(pending.size), backoff_steps=steps)
    result.delivered = int(delivered_mask.sum())
    metrics = active_metrics()
    if metrics is not None:
        metrics.counter("transport.runs").inc()
        metrics.counter("transport.rounds").inc(result.rounds)
        metrics.counter("transport.retried").inc(result.retried)
        metrics.counter("transport.dropped").inc(result.dropped)
        metrics.counter("transport.duplicates").inc(result.duplicates)
        metrics.counter("transport.corrupted").inc(result.corrupted)
        metrics.counter("transport.backoff_steps").inc(result.backoff_steps)
        if result.fault_free_time > 0:
            metrics.gauge("transport.last_overhead").set(result.overhead)
    if pending.size:
        raise TransportError(
            f"{pending.size} of {n} flits still unacknowledged after "
            f"{max_rounds} rounds",
            pending=pending,
            result=result,
        )
    return result
