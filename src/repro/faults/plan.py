"""Deterministic fault plans and the columnar fault injector.

A :class:`FaultPlan` is an immutable, seeded description of everything that
can go wrong in a run: per-message network faults (drop, duplicate, reorder,
payload corruption) and per-processor faults (stall / crash for a span of
supersteps).  A :class:`FaultInjector` executes a plan against the engine's
frozen :class:`~repro.core.events.MessageBatch` at each barrier — the
delivered batch is derived from the sent batch with a handful of vectorized
index operations, and the *sent* batch is what the machine prices, so a
dropped flit still counts against the aggregate bandwidth ``m_t`` (the
sender injected it; the network ate it).

Determinism
-----------
Every random draw comes from ``default_rng([plan.seed, step])`` where
``step`` is the injector's monotonically increasing barrier counter.  Two
runs that attach fresh injectors built from the same plan see bit-identical
faults; successive runs through one injector (e.g. the retry rounds of
:mod:`repro.faults.transport`) see fresh, but still reproducible, draws.
Call :meth:`FaultInjector.reset` to rewind the counter.

The disabled path costs nothing: a machine without an injector skips the
hook entirely, and a null plan (all rates zero, no stalls/crashes) returns
the sent batch unchanged, so delivery is bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.core.events import MessageBatch, _column_take
from repro.obs.metrics import active_metrics
from repro.util.validation import check_nonnegative, check_prob

__all__ = [
    "StallSpec",
    "CrashSpec",
    "FaultPlan",
    "FaultInjector",
    "CorruptedPayload",
    "is_corrupted",
]

_I64 = np.int64


class CorruptedPayload:
    """Wrapper marking an object payload as corrupted in flight.

    Integer-array payload columns are corrupted in place by bitwise
    negation instead (the corrupted value is always negative, so a
    transport layer using non-negative sequence numbers detects it the way
    a real one detects a failed checksum).
    """

    __slots__ = ("original",)

    def __init__(self, original: object) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CorruptedPayload({self.original!r})"


def is_corrupted(payload: object) -> bool:
    """True when a payload is a detectably corrupted delivery."""
    if isinstance(payload, CorruptedPayload):
        return True
    return isinstance(payload, (int, np.integer)) and payload < 0


@dataclass(frozen=True)
class StallSpec:
    """Processor ``pid`` freezes for supersteps ``start .. start+duration-1``.

    ``start`` is measured on the injector's global barrier clock (see
    :meth:`FaultInjector.halted`), so windows elapse across successive runs
    through one injector.  A stalled processor does not advance (it
    executes no code and registers no operations) but stays alive and
    resumes afterwards.  Messages
    delivered to it while stalled are lost — the engine's inbox only
    survives one superstep — which is exactly the failure a reliable
    transport must recover from.
    """

    pid: int
    start: int
    duration: int = 1

    def __post_init__(self) -> None:
        check_nonnegative("pid", self.pid)
        check_nonnegative("start", self.start)
        if self.duration < 1:
            raise ValueError(f"stall duration must be >= 1, got {self.duration}")


@dataclass(frozen=True)
class CrashSpec:
    """Processor ``pid`` crashes for ``duration`` supersteps from ``start``.

    ``start`` is measured on the injector's global barrier clock, like
    :class:`StallSpec`.  A crash is a stall plus message loss: everything
    addressed to the processor while it is down is dropped at the barrier (and, since it
    executes no code, it sends nothing).  After ``duration`` supersteps the
    processor reboots and resumes from where it yielded.
    """

    pid: int
    start: int
    duration: int = 1

    def __post_init__(self) -> None:
        check_nonnegative("pid", self.pid)
        check_nonnegative("start", self.start)
        if self.duration < 1:
            raise ValueError(f"crash duration must be >= 1, got {self.duration}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, immutable description of the faults to inject into a run.

    Rates are independent per-message probabilities applied at each
    barrier; ``seed`` makes the whole plan deterministic.

    Parameters
    ----------
    seed:
        Root seed for every random draw the injector makes.
    drop_rate:
        Probability that a sent message is silently discarded in flight.
    duplicate_rate:
        Probability that a delivered message arrives twice.
    reorder_rate:
        Probability that a delivered message is pulled into a random
        shuffle of its superstep's delivery order (BSP semantics make
        inbox order arbitrary anyway; this exercises order-sensitive
        consumers).
    corrupt_rate:
        Probability that a delivered message's payload is corrupted
        detectably (bitwise negation for integer payload columns,
        :class:`CorruptedPayload` wrapping otherwise).
    stalls / crashes:
        Per-processor :class:`StallSpec` / :class:`CrashSpec` tuples.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    stalls: Tuple[StallSpec, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()

    def __post_init__(self) -> None:
        check_prob("drop_rate", self.drop_rate)
        check_prob("duplicate_rate", self.duplicate_rate)
        check_prob("reorder_rate", self.reorder_rate)
        check_prob("corrupt_rate", self.corrupt_rate)
        # tolerate lists at construction time; store canonical tuples
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all (the ~0-cost path)."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.reorder_rate == 0.0
            and self.corrupt_rate == 0.0
            and not self.stalls
            and not self.crashes
        )


_EMPTY_STATS: Dict[str, float] = {}


class FaultInjector:
    """Executes a :class:`FaultPlan` against frozen superstep batches.

    Attach to a machine with ``machine.inject_faults(plan)`` (or by
    assigning ``machine.fault_injector``).  The engine consults the
    injector at every barrier:

    * :meth:`halted` — which processors are stalled or crashed at a
      superstep (the engine skips advancing them);
    * :meth:`apply` — transform the sent :class:`MessageBatch` into the
      delivered one (drops, duplicates, reorders, corruption, plus loss of
      messages addressed to crashed processors).

    The injector accumulates run-wide ``totals`` (injected / delivered /
    dropped / duplicated / corrupted / reordered message counts) for
    reporting, and stamps the same counters into each faulted record's
    ``stats`` under ``fault_*`` keys.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._step = 0
        self._stalled: Dict[int, set] = {}
        self._crashed: Dict[int, set] = {}
        for s in plan.stalls:
            for t in range(s.start, s.start + s.duration):
                self._stalled.setdefault(t, set()).add(s.pid)
        for c in plan.crashes:
            for t in range(c.start, c.start + c.duration):
                self._crashed.setdefault(t, set()).add(c.pid)
        self.totals: Dict[str, int] = dict(
            injected=0, delivered=0, dropped=0, duplicated=0, corrupted=0, reordered=0
        )

    def reset(self) -> None:
        """Rewind the barrier counter and zero the totals, so the next run
        sees the same fault sequence as a fresh injector."""
        self._step = 0
        for k in self.totals:
            self.totals[k] = 0

    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return np.random.default_rng([self.plan.seed, self._step])

    def halted(self, index: int) -> Optional[FrozenSet[int]]:
        """Pids stalled or crashed at the current superstep (or ``None`` —
        the common fast path — when nobody is down).

        Stall/crash windows are indexed in the injector's *global* barrier
        clock, not the run-local ``index``: the clock keeps counting across
        successive runs through the same injector (e.g. the retry rounds of
        the reliable transport), so a processor crashed for ``duration``
        supersteps comes back even if every retry run restarts its local
        index at zero.  :meth:`reset` rewinds the clock.
        """
        del index  # run-local; the plan's clock is the injector's own
        t = self._step
        stalled = self._stalled.get(t)
        crashed = self._crashed.get(t)
        if stalled is None and crashed is None:
            return None
        return frozenset((stalled or set()) | (crashed or set()))

    # ------------------------------------------------------------------
    def apply(
        self, batch: MessageBatch, index: int, nprocs: int
    ) -> Tuple[MessageBatch, Dict[str, float]]:
        """Derive the delivered batch from the sent batch at a barrier.

        Returns ``(delivered_batch, stats)``; ``stats`` is empty when the
        plan is null (so the fault-free path stays bit-identical to a run
        without an injector).  The sent batch is never mutated.
        """
        del index  # run-local; faults tick on the injector's global clock
        t = self._step
        self._step += 1
        plan = self.plan
        if plan.is_null:
            return batch, _EMPTY_STATS
        n = batch.n
        crashed = self._crashed.get(t)
        if n == 0:
            return batch, _EMPTY_STATS
        rng = self._rng()
        keep = np.ones(n, dtype=bool)
        if crashed:
            down = np.fromiter(crashed, dtype=_I64)
            keep &= ~np.isin(batch.dest, down)
        if plan.drop_rate > 0.0:
            keep &= rng.random(n) >= plan.drop_rate
        idx = np.nonzero(keep)[0]
        dropped = n - int(idx.size)
        duplicated = 0
        if plan.duplicate_rate > 0.0 and idx.size:
            dup = idx[rng.random(idx.size) < plan.duplicate_rate]
            duplicated = int(dup.size)
            if duplicated:
                idx = np.concatenate([idx, dup])
        reordered = 0
        if plan.reorder_rate > 0.0 and idx.size > 1:
            sel = np.nonzero(rng.random(idx.size) < plan.reorder_rate)[0]
            if sel.size > 1:
                reordered = int(sel.size)
                idx[sel] = idx[sel][rng.permutation(sel.size)]
        if dropped or duplicated or reordered:
            delivered = batch.take(idx)
        else:
            delivered = batch
        corrupted = 0
        if plan.corrupt_rate > 0.0 and delivered.n:
            mask = rng.random(delivered.n) < plan.corrupt_rate
            corrupted = int(mask.sum())
            if corrupted:
                delivered = self._corrupt(delivered, mask)
        stats = {
            "fault_injected": float(n),
            "fault_delivered": float(delivered.n),
            "fault_dropped": float(dropped),
            "fault_duplicated": float(duplicated),
            "fault_corrupted": float(corrupted),
            "fault_reordered": float(reordered),
        }
        self.totals["injected"] += n
        self.totals["delivered"] += delivered.n
        self.totals["dropped"] += dropped
        self.totals["duplicated"] += duplicated
        self.totals["corrupted"] += corrupted
        self.totals["reordered"] += reordered
        metrics = active_metrics()
        if metrics is not None:
            metrics.counter("faults.injected").inc(n)
            metrics.counter("faults.delivered").inc(delivered.n)
            metrics.counter("faults.dropped").inc(dropped)
            metrics.counter("faults.duplicated").inc(duplicated)
            metrics.counter("faults.corrupted").inc(corrupted)
            metrics.counter("faults.reordered").inc(reordered)
        return delivered, stats

    @staticmethod
    def _corrupt(batch: MessageBatch, mask: np.ndarray) -> MessageBatch:
        """Corrupt the payloads selected by ``mask`` (detectably)."""
        payload = batch.payload
        if payload is None:
            # nothing carried, nothing to corrupt — wrap a marker so the
            # receiver can still detect the damaged delivery
            col: list = [None] * batch.n
            for i in np.nonzero(mask)[0].tolist():
                col[i] = CorruptedPayload(None)
        elif isinstance(payload, np.ndarray) and payload.dtype.kind in "iu":
            col = payload.copy()
            col[mask] = ~col[mask]  # bit-flip: always negative for seq ids
        else:
            col = list(payload)
            for i in np.nonzero(mask)[0].tolist():
                col[i] = CorruptedPayload(col[i])
        return MessageBatch(
            batch.src, batch.dest, batch.size, batch.slot, batch.consecutive, col
        )
