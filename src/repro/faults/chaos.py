"""Chaos-harness sweep trials: many seeded fault-injection runs at once.

``python -m repro chaos --trials N --jobs J`` fans N independent chaos
runs (fresh workload, fresh fault plan, fresh transport randomness per
trial — all derived from one root seed) through the sweep engine and
aggregates delivery/loss/retry statistics.  :func:`chaos_trial` is the
module-level (picklable) unit of parallelism; one trial is exactly what
the single-run chaos command executes.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.core.params import MachineParams
from repro.faults.plan import CrashSpec, FaultPlan, StallSpec

__all__ = ["chaos_trial", "summarize_chaos_sweep"]


def _int_seed(seq: np.random.SeedSequence) -> int:
    """A stable 32-bit int drawn from a SeedSequence, for components (like
    :class:`FaultPlan`) whose seed field is an integer."""
    return int(seq.generate_state(1, np.uint32)[0])


def build_relation(workload: str, p: int, n: int, alpha: float, seed) -> Any:
    """The chaos harness's workload menu (same shapes as the scheduler CLI)."""
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    makers = {
        "balanced": lambda: balanced_h_relation(p, max(1, n // p), seed=seed),
        "uniform": lambda: uniform_random_relation(p, n, seed=seed),
        # "route-verify" is the pinned routing profile: uniform traffic at
        # whatever (p, n) the harness pinned (256, 40k)
        "route-verify": lambda: uniform_random_relation(p, n, seed=seed),
        "zipf": lambda: zipf_h_relation(p, n, alpha=alpha, seed=seed),
        "one-to-all": lambda: one_to_all_relation(p),
    }
    return makers[workload]()


def chaos_trial(
    workload: str,
    p: int,
    n: int,
    m: int,
    L: float,
    alpha: float,
    epsilon: float,
    drop_rate: float,
    duplicate_rate: float,
    reorder_rate: float,
    corrupt_rate: float,
    stalls: Sequence[Tuple[int, int, int]],
    crashes: Sequence[Tuple[int, int, int]],
    max_rounds: int,
    backoff_base: int,
    audit: bool,
    seed,
) -> Dict[str, Any]:
    """One chaos run: route ``workload`` through a seeded fault plan with
    the reliable transport; returns the transport report dict (with
    ``failed``/``error`` set when the transport gave up).

    ``seed`` is a per-trial :class:`~numpy.random.SeedSequence`; workload,
    fault plan, and transport randomness are independent children of it.
    """
    from repro.faults.transport import TransportError
    from repro.models.bsp_m import BSPm
    from repro.scheduling.execute import route_reliable

    rel_seed, plan_seed, transport_seed = seed.spawn(3)
    rel = build_relation(workload, p, n, alpha, rel_seed)
    machine = BSPm(MachineParams(p=p, m=m, L=L))
    plan = FaultPlan(
        seed=_int_seed(plan_seed),
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        reorder_rate=reorder_rate,
        corrupt_rate=corrupt_rate,
        stalls=tuple(StallSpec(pid=a, start=b, duration=c) for a, b, c in stalls),
        crashes=tuple(CrashSpec(pid=a, start=b, duration=c) for a, b, c in crashes),
    )
    machine.inject_faults(plan)
    try:
        result = route_reliable(
            machine, rel,
            epsilon=epsilon, seed=transport_seed,
            max_rounds=max_rounds, backoff_base=backoff_base, audit=audit,
        )
        report = result.to_dict()
        report["failed"] = False
    except TransportError as exc:
        report = exc.result.to_dict()
        report["failed"] = True
        report["error"] = str(exc)
    return report


def summarize_chaos_sweep(reports: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a chaos sweep's trial reports into the statistics the
    single-run table prints, plus across-trial spread.

    ``None`` entries (trials skipped under ``run_sweep(on_error=...)``)
    are excluded from the statistics and counted in ``skipped``.
    """
    skipped = sum(1 for r in reports if r is None)
    reports = [r for r in reports if r is not None]

    def col(key: str) -> np.ndarray:
        return np.asarray([r[key] for r in reports], dtype=np.float64)

    if not reports:
        return {"trials": 0, "skipped": skipped, "failures": 0}

    overhead = col("overhead")
    failures = sum(1 for r in reports if r["failed"])
    return {
        "trials": len(reports),
        "skipped": skipped,
        "failures": failures,
        "exactly_once_rate": float(np.mean(col("exactly_once"))),
        "delivered_total": int(col("delivered").sum()),
        "dropped_total": int(col("dropped").sum()),
        "retried_total": int(col("retried").sum()),
        "duplicates_total": int(col("duplicates").sum()),
        "rounds": {"mean": float(col("rounds").mean()), "max": int(col("rounds").max())},
        "overhead": {
            "mean": float(overhead.mean()),
            "max": float(overhead.max()),
            "p95": float(np.percentile(overhead, 95)),
        },
    }
