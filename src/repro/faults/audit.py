"""Debug-mode invariant auditor for engine runs.

Enabled with ``machine.run(program, audit=True)``.  After every barrier the
auditor re-derives the superstep's price from the frozen record and checks
the delivery bookkeeping, catching the two classes of bug that silently
corrupt experiments:

* **flit conservation** — every message the engine delivered is accounted
  for: inbox totals must equal the delivered batch, and when a fault
  injector is active the injector's ledger must balance
  (``delivered = injected − dropped + duplicated``);
* **cost reconciliation** — pricing must be a pure function of the frozen
  record: re-pricing the same record must reproduce the recorded cost,
  breakdown and stats exactly (this is the engine-side half of the
  evaluator-vs-engine agreement pinned by ``tests/test_execute.py``), and
  the recorded cost can never undercut its own breakdown.

The auditor lives in the fault layer because it shares the layer's
contract: zero cost when disabled, loud and structured when something is
wrong.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.events import MessageBatch, SuperstepRecord

__all__ = ["AuditViolation", "audit_record"]


class AuditViolation(AssertionError):
    """An engine invariant failed during an audited run.

    Subclasses :class:`AssertionError` because a violation always means a
    bug in the engine/models (or a tampered record), never user error.
    """


def _fail(record: SuperstepRecord, what: str) -> None:
    raise AuditViolation(f"superstep {record.index}: {what}")


def audit_record(
    machine,
    record: SuperstepRecord,
    procs: List,
    delivered: Optional[MessageBatch] = None,
) -> None:
    """Check one barrier's invariants; raise :class:`AuditViolation` on the
    first failure.  ``delivered`` is the fault-transformed batch (``None``
    means delivery used the record's own batch)."""
    batch = record.msg_batch if delivered is None else delivered
    # -- flit conservation --------------------------------------------------
    inbox_msgs = sum(len(proc.inbox) for proc in procs)
    if inbox_msgs != batch.n:
        _fail(
            record,
            f"flit conservation broken: {batch.n} messages delivered but "
            f"{inbox_msgs} present in inboxes",
        )
    stats = record.stats
    if "fault_injected" in stats:
        expected = (
            stats["fault_injected"]
            - stats["fault_dropped"]
            + stats["fault_duplicated"]
        )
        if stats["fault_delivered"] != expected:
            _fail(
                record,
                "fault ledger unbalanced: delivered "
                f"{stats['fault_delivered']:.0f} != injected "
                f"{stats['fault_injected']:.0f} - dropped "
                f"{stats['fault_dropped']:.0f} + duplicated "
                f"{stats['fault_duplicated']:.0f}",
            )
        if delivered is not None and delivered.n != int(stats["fault_delivered"]):
            _fail(
                record,
                f"delivered batch has {delivered.n} messages but the record "
                f"claims {stats['fault_delivered']:.0f}",
            )
    # -- cost reconciliation ------------------------------------------------
    cost2, breakdown2, stats2 = machine._price(record)
    if cost2 != record.cost:
        _fail(
            record,
            f"re-pricing disagrees with the recorded cost: {cost2!r} != "
            f"{record.cost!r}",
        )
    if record.cost < record.breakdown.total():
        _fail(
            record,
            f"recorded cost {record.cost!r} undercuts its own breakdown "
            f"total {record.breakdown.total()!r}",
        )
    for key, value in stats2.items():
        if stats.get(key) != value:
            _fail(
                record,
                f"re-priced stat {key!r} = {value!r} disagrees with the "
                f"recorded {stats.get(key)!r}",
            )
    if breakdown2 != record.breakdown:
        _fail(record, "re-priced breakdown disagrees with the recorded one")
