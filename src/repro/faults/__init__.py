"""Fault injection, invariant auditing, and reliable transport.

This subpackage is the repo's resilience layer: deterministic chaos for the
superstep engine (:mod:`repro.faults.plan`), a debug-mode invariant auditor
(:mod:`repro.faults.audit`), and an exactly-once transport protocol whose
retries are priced against the bandwidth limit like any other traffic
(:mod:`repro.faults.transport`).  See ``docs/robustness.md``.
"""

from repro.faults.audit import AuditViolation, audit_record
from repro.faults.plan import (
    CorruptedPayload,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    StallSpec,
    is_corrupted,
)
from repro.faults.transport import TransportError, TransportResult, reliable_route

__all__ = [
    "AuditViolation",
    "audit_record",
    "CorruptedPayload",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "StallSpec",
    "is_corrupted",
    "TransportError",
    "TransportResult",
    "reliable_route",
]
