"""Closed-form time bounds — every Table-1 cell and every numbered theorem
as an executable formula.

All formulas use the clamped ``lg`` of :mod:`repro.util.intmath` (asymptotic
bounds never go negative) and take the concrete parameters ``p, n, g, m, L,
w`` so benchmarks can overlay measured times on the predicted curves.

Upper bounds are ``O(·)`` shapes with constant 1 unless the construction
fixes a constant; lower bounds are the paper's ``Ω(·)`` shapes, with
Theorem 4.1's explicit ``L lg p / (2 lg(2L/g + 1))`` kept exact.
"""

from __future__ import annotations

import math

from repro.util.intmath import lg, safe_log_ratio

__all__ = [
    "one_to_all_qsm_m",
    "one_to_all_qsm_g",
    "one_to_all_bsp_m",
    "one_to_all_bsp_g",
    "broadcast_qsm_m",
    "broadcast_qsm_g",
    "broadcast_bsp_m",
    "broadcast_bsp_g",
    "broadcast_bsp_g_lower",
    "broadcast_nonreceipt_upper",
    "parity_qsm_m",
    "parity_qsm_g_lower",
    "parity_bsp_m",
    "parity_bsp_g",
    "list_ranking_qsm_m",
    "list_ranking_qsm_g_lower",
    "list_ranking_bsp_m",
    "list_ranking_bsp_g_lower",
    "sorting_qsm_m",
    "sorting_qsm_g_lower",
    "sorting_bsp_m",
    "sorting_bsp_g_lower",
    "unbalanced_routing_bsp_g",
    "unbalanced_routing_bsp_m",
    "tau_prefix_broadcast",
    "crcw_pramm_on_qsm_m_upper",
    "crcw_pramm_on_qsm_m_lower",
    "leader_recognition_pramm",
    "leader_recognition_qsm_m_lower",
    "er_cr_pramm_separation",
    "TABLE1",
]


# ----------------------------------------------------------------------
# Row 1: one-to-all personalized communication
# ----------------------------------------------------------------------


def one_to_all_qsm_m(p: int, m: int) -> float:
    """QSM(m): ``Θ(p)`` — bandwidth never binds for the single sender."""
    return float(p)


def one_to_all_qsm_g(p: int, g: float) -> float:
    """QSM(g): ``Θ(g p)`` — the sender pays the gap per distinct message."""
    return g * p


def one_to_all_bsp_m(p: int, m: int, L: float) -> float:
    """BSP(m): ``Θ(p + L)``."""
    return p + L


def one_to_all_bsp_g(p: int, g: float, L: float) -> float:
    """BSP(g): ``Θ(g p + L)``."""
    return g * p + L


# ----------------------------------------------------------------------
# Row 2: broadcasting
# ----------------------------------------------------------------------


def broadcast_qsm_m(p: int, m: int) -> float:
    """QSM(m): ``Θ(lg m + p/m)``."""
    return lg(m) + p / m


def broadcast_qsm_g(p: int, g: float) -> float:
    """QSM(g): ``Θ(g lg p / lg g)``."""
    return g * safe_log_ratio(p, g)


def broadcast_bsp_m(p: int, m: int, L: float) -> float:
    """BSP(m): ``O(L lg m / lg L + p/m + L)``."""
    return L * safe_log_ratio(m, L) + p / m + L


def broadcast_bsp_g(p: int, g: float, L: float) -> float:
    """BSP(g): ``Θ(L lg p / lg(L/g))``."""
    return L * safe_log_ratio(p, L / g if L / g > 1 else 2.0)


def broadcast_bsp_g_lower(p: int, g: float, L: float) -> float:
    """Theorem 4.1 (exact constant): any deterministic BSP(g) broadcast
    needs ``L lg p / (2 lg(2L/g + 1))`` time, non-receipt included."""
    return L * lg(p) / (2.0 * math.log2(2.0 * L / g + 1.0))


def broadcast_nonreceipt_upper(p: int, g: float) -> float:
    """Section 4.2 single-bit algorithm: ``g ceil(log3 p)`` when L <= g."""
    return g * math.ceil(math.log(max(p, 2), 3))


# ----------------------------------------------------------------------
# Row 3: parity / summation  (n = input size)
# ----------------------------------------------------------------------


def parity_qsm_m(n: int, m: int) -> float:
    """QSM(m): ``Θ(lg m + n/m)``."""
    return lg(m) + n / m


def parity_qsm_g_lower(n: int, g: float) -> float:
    """QSM(g): ``Ω(g lg n / lg lg n)`` (Beame–Håstad via Section 4.1)."""
    return g * lg(n) / max(lg(lg(n)), 1.0)


def parity_bsp_m(n: int, m: int, L: float) -> float:
    """BSP(m): ``O(L lg m / lg L + n/m + L)``."""
    return L * safe_log_ratio(m, L) + n / m + L


def parity_bsp_g(n: int, g: float, L: float) -> float:
    """BSP(g): ``Θ(L lg n / lg(L/g))``."""
    return L * safe_log_ratio(n, L / g if L / g > 1 else 2.0)


# ----------------------------------------------------------------------
# Row 4: list ranking
# ----------------------------------------------------------------------


def list_ranking_qsm_m(n: int, m: int) -> float:
    """QSM(m): ``O(lg m + n/m)``."""
    return lg(m) + n / m


def list_ranking_qsm_g_lower(n: int, g: float) -> float:
    """QSM(g): ``Ω(g lg n / lg lg n)``."""
    return g * lg(n) / max(lg(lg(n)), 1.0)


def list_ranking_bsp_m(n: int, m: int, L: float) -> float:
    """BSP(m): ``O(L lg m + n/m)``."""
    return L * lg(m) + n / m


def list_ranking_bsp_g_lower(n: int, g: float, L: float) -> float:
    """BSP(g): ``Ω(g lg n / lg lg n + L)``."""
    return g * lg(n) / max(lg(lg(n)), 1.0) + L


# ----------------------------------------------------------------------
# Row 5: sorting (m = O(n^{1-eps}))
# ----------------------------------------------------------------------


def sorting_qsm_m(n: int, m: int) -> float:
    """QSM(m): ``Θ(n/m)`` for ``m = O(n^{1-eps})``."""
    return n / m


def sorting_qsm_g_lower(n: int, g: float) -> float:
    """QSM(g): ``Ω(g lg n / lg lg n)``."""
    return g * lg(n) / max(lg(lg(n)), 1.0)


def sorting_bsp_m(n: int, m: int, L: float) -> float:
    """BSP(m): ``Θ(n/m + L)``."""
    return n / m + L


def sorting_bsp_g_lower(n: int, g: float, L: float) -> float:
    """BSP(g): ``Ω(g lg n / lg lg n + L)``."""
    return g * lg(n) / max(lg(lg(n)), 1.0) + L


# ----------------------------------------------------------------------
# Section 6: unbalanced routing
# ----------------------------------------------------------------------


def unbalanced_routing_bsp_g(x_bar: float, y_bar: float, g: float, L: float) -> float:
    """Proposition 6.1: ``Θ(g(x̄ + ȳ) + L)``."""
    return g * (x_bar + y_bar) + L


def unbalanced_routing_bsp_m(
    n: float, x_bar: float, y_bar: float, m: int, L: float, epsilon: float = 0.0
) -> float:
    """Theorem 6.2 bound (without ``tau``):
    ``max((1+eps) n/m, x̄, ȳ, L)``; ``epsilon = 0`` gives the lower bound."""
    return max((1.0 + epsilon) * n / m, x_bar, y_bar, L)


def tau_prefix_broadcast(p: int, m: int, L: float) -> float:
    """The prefix-sum/broadcast overhead ``O(p/m + L + L lg m / lg L)``."""
    return p / m + L + L * safe_log_ratio(m, L)


# ----------------------------------------------------------------------
# Section 5: concurrent reading
# ----------------------------------------------------------------------


def crcw_pramm_on_qsm_m_upper(p: int, m: int) -> float:
    """Theorem 5.1: one CRCW PRAM(m) step simulates on the QSM(m) in
    ``O(p/m)`` (for ``m = O(p^{1-eps})``)."""
    return p / m


def crcw_pramm_on_qsm_m_lower(p: int, m: int, w: int) -> float:
    """Theorem 5.2: worst-case slowdown ``Ω((p lg m)/(m w) · min(w/lg p, 1))``."""
    return (p * lg(m)) / (m * w) * min(w / max(lg(p), 1.0), 1.0)


def leader_recognition_pramm(p: int, w: int) -> float:
    """Leader recognition on the CRCW PRAM(m): ``O(max(lg p / w, 1))``."""
    return max(lg(p) / w, 1.0)


def leader_recognition_qsm_m_lower(p: int, m: int, w: int) -> float:
    """Lemma 5.3 (explicit constant 1/2): ``p lg m / (2 m w)`` even when
    every processor knows the whole input in advance."""
    return p * lg(m) / (2.0 * m * w)


def er_cr_pramm_separation(p: int, m: int) -> float:
    """The ER-vs-CR PRAM(m) separation ``Ω(p lg m / (m lg p))`` — the
    improvement over the previous ``2^Ω(sqrt(lg p))``."""
    return p * lg(m) / (m * max(lg(p), 1.0))


# ----------------------------------------------------------------------
# Registry used by the Table-1 summary harness
# ----------------------------------------------------------------------

#: ``TABLE1[(problem, model)] -> callable(p, n, g, m, L) -> bound``
TABLE1 = {
    ("one_to_all", "qsm_m"): lambda p, n, g, m, L: one_to_all_qsm_m(p, m),
    ("one_to_all", "qsm_g"): lambda p, n, g, m, L: one_to_all_qsm_g(p, g),
    ("one_to_all", "bsp_m"): lambda p, n, g, m, L: one_to_all_bsp_m(p, m, L),
    ("one_to_all", "bsp_g"): lambda p, n, g, m, L: one_to_all_bsp_g(p, g, L),
    ("broadcast", "qsm_m"): lambda p, n, g, m, L: broadcast_qsm_m(p, m),
    ("broadcast", "qsm_g"): lambda p, n, g, m, L: broadcast_qsm_g(p, g),
    ("broadcast", "bsp_m"): lambda p, n, g, m, L: broadcast_bsp_m(p, m, L),
    ("broadcast", "bsp_g"): lambda p, n, g, m, L: broadcast_bsp_g(p, g, L),
    ("parity", "qsm_m"): lambda p, n, g, m, L: parity_qsm_m(n, m),
    ("parity", "qsm_g"): lambda p, n, g, m, L: parity_qsm_g_lower(n, g),
    ("parity", "bsp_m"): lambda p, n, g, m, L: parity_bsp_m(n, m, L),
    ("parity", "bsp_g"): lambda p, n, g, m, L: parity_bsp_g(n, g, L),
    ("list_ranking", "qsm_m"): lambda p, n, g, m, L: list_ranking_qsm_m(n, m),
    ("list_ranking", "qsm_g"): lambda p, n, g, m, L: list_ranking_qsm_g_lower(n, g),
    ("list_ranking", "bsp_m"): lambda p, n, g, m, L: list_ranking_bsp_m(n, m, L),
    ("list_ranking", "bsp_g"): lambda p, n, g, m, L: list_ranking_bsp_g_lower(n, g, L),
    ("sorting", "qsm_m"): lambda p, n, g, m, L: sorting_qsm_m(n, m),
    ("sorting", "qsm_g"): lambda p, n, g, m, L: sorting_qsm_g_lower(n, g),
    ("sorting", "bsp_m"): lambda p, n, g, m, L: sorting_bsp_m(n, m, L),
    ("sorting", "bsp_g"): lambda p, n, g, m, L: sorting_bsp_g_lower(n, g, L),
}
