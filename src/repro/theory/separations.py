"""Separation ratios — Table 1's last column as executable formulas, plus
the harness that regenerates the printed table.

The separations hold for ``n = p`` and "suitable values of L and g"; the
functions take the concrete parameters so the benchmark can check measured
ratios against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.theory import bounds as B
from repro.util.intmath import lg, safe_log_ratio
from repro.util.reporting import Table

__all__ = [
    "separation_one_to_all",
    "separation_broadcast_qsm",
    "separation_broadcast_bsp",
    "separation_parity_qsm",
    "separation_parity_bsp",
    "separation_list_ranking",
    "separation_sorting",
    "Table1Row",
    "table1_rows",
    "render_table1",
]


def separation_one_to_all(g: float) -> float:
    """``Θ(g)``."""
    return g


def separation_broadcast_qsm(p: int, g: float) -> float:
    """``Θ(lg p / lg g)``."""
    return safe_log_ratio(p, g)


def separation_broadcast_bsp(p: int, g: float, m: int, L: float) -> float:
    """``Θ(lg L · lg p / (lg(L/g) · lg m))``."""
    num = max(lg(L), 1.0) * max(lg(p), 1.0)
    den = max(lg(L / g), 1.0) * max(lg(m), 1.0)
    return num / den


def separation_parity_qsm(n: int) -> float:
    """``Ω(lg n / lg lg n)``."""
    return lg(n) / max(lg(lg(n)), 1.0)


def separation_parity_bsp(n: int, g: float, m: int, L: float) -> float:
    """``Θ(lg L · lg n / (lg(L/g) · lg m))``."""
    num = max(lg(L), 1.0) * max(lg(n), 1.0)
    den = max(lg(L / g), 1.0) * max(lg(m), 1.0)
    return num / den


def separation_list_ranking(n: int) -> float:
    """``Ω(lg n / lg lg n)``."""
    return lg(n) / max(lg(lg(n)), 1.0)


def separation_sorting(n: int) -> float:
    """``Θ(lg n / lg lg n)`` (for ``m = O(n^{1-eps})``)."""
    return lg(n) / max(lg(lg(n)), 1.0)


@dataclass
class Table1Row:
    """One (problem, model family) row of the regenerated Table 1."""

    problem: str
    family: str  # "QSM" or "BSP"
    strong_bound: float  # globally-limited model
    weak_bound: float  # locally-limited model
    separation: float

    @property
    def bound_ratio(self) -> float:
        return self.weak_bound / self.strong_bound if self.strong_bound else 0.0


def table1_rows(p: int, L: float, m: int) -> List[Table1Row]:
    """Regenerate Table 1 numerically for ``n = p`` and ``g = p/m``."""
    g = p / m
    n = p
    rows = [
        Table1Row(
            "One-to-all", "QSM",
            B.one_to_all_qsm_m(p, m), B.one_to_all_qsm_g(p, g),
            separation_one_to_all(g),
        ),
        Table1Row(
            "One-to-all", "BSP",
            B.one_to_all_bsp_m(p, m, L), B.one_to_all_bsp_g(p, g, L),
            separation_one_to_all(g),
        ),
        Table1Row(
            "Broadcast", "QSM",
            B.broadcast_qsm_m(p, m), B.broadcast_qsm_g(p, g),
            separation_broadcast_qsm(p, g),
        ),
        Table1Row(
            "Broadcast", "BSP",
            B.broadcast_bsp_m(p, m, L), B.broadcast_bsp_g(p, g, L),
            separation_broadcast_bsp(p, g, m, L),
        ),
        Table1Row(
            "Parity/Summation", "QSM",
            B.parity_qsm_m(n, m), B.parity_qsm_g_lower(n, g),
            separation_parity_qsm(n),
        ),
        Table1Row(
            "Parity/Summation", "BSP",
            B.parity_bsp_m(n, m, L), B.parity_bsp_g(n, g, L),
            separation_parity_bsp(n, g, m, L),
        ),
        Table1Row(
            "List ranking", "QSM",
            B.list_ranking_qsm_m(n, m), B.list_ranking_qsm_g_lower(n, g),
            separation_list_ranking(n),
        ),
        Table1Row(
            "List ranking", "BSP",
            B.list_ranking_bsp_m(n, m, L), B.list_ranking_bsp_g_lower(n, g, L),
            separation_list_ranking(n),
        ),
        Table1Row(
            "Sorting", "QSM",
            B.sorting_qsm_m(n, m), B.sorting_qsm_g_lower(n, g),
            separation_sorting(n),
        ),
        Table1Row(
            "Sorting", "BSP",
            B.sorting_bsp_m(n, m, L), B.sorting_bsp_g_lower(n, g, L),
            separation_sorting(n),
        ),
    ]
    return rows


def render_table1(p: int, L: float, m: int) -> str:
    """The printed reproduction of Table 1 (bounds, not measurements)."""
    t = Table(
        ["problem", "family", "global model", "local model", "bound ratio", "paper separation"],
        title=f"Table 1 (n = p = {p}, m = {m}, g = {p / m:g}, L = {L:g})",
    )
    for row in table1_rows(p, L, m):
        t.add_row(
            [
                row.problem,
                row.family,
                row.strong_bound,
                row.weak_bound,
                row.bound_ratio,
                row.separation,
            ]
        )
    return t.render()
