"""Chernoff machinery behind Theorem 6.2's "with high probability".

The Unbalanced-Send analysis bounds the load of one window slot (a sum of
independent indicators with mean at most ``m/(1+eps)``) with the standard
multiplicative Chernoff bound, union-bounds over the ``(1+eps)n/m`` slots,
and bounds the *tail* of the completion time through the exponential
penalty: a slot of load ``l·m`` costs at most ``e^{l-1}``, and
``Pr[load > l·m] <= e^{-Omega(l eps^2 m)}``, giving
``Pr[T > k sigma] <= k^{-4} e^{-Omega(eps^2 m)}``.

These are the *predicted* probabilities; ``benchmarks/bench_unbalanced_send``
measures the empirical counterparts.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive, check_prob

__all__ = [
    "chernoff_upper_tail",
    "slot_overload_probability",
    "window_overload_probability",
    "completion_tail_probability",
    "min_m_for_failure_probability",
]


def chernoff_upper_tail(mu: float, threshold: float) -> float:
    """``Pr[X >= threshold]`` for a sum ``X`` of independent [0,1] variables
    with mean ``mu``, by the multiplicative Chernoff bound
    ``(e^delta / (1+delta)^(1+delta))^mu`` with ``threshold = (1+delta)mu``.
    Returns 1 when ``threshold <= mu``.
    """
    check_positive("mu", mu)
    if threshold <= mu:
        return 1.0
    delta = threshold / mu - 1.0
    exponent = mu * (delta - (1.0 + delta) * math.log1p(delta))
    return min(1.0, math.exp(exponent))


def slot_overload_probability(n: int, m: int, epsilon: float) -> float:
    """Probability that *one* window slot of Unbalanced-Send exceeds ``m``.

    The slot's expected load is at most ``m/(1+eps)``; the paper quotes the
    simplified form ``exp(-eps^2 m / 3)``, which we return as the standard
    shape (the exact Chernoff value is available via
    :func:`chernoff_upper_tail`).
    """
    check_positive("m", m)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return min(1.0, math.exp(-(epsilon**2) * m / 3.0))


def window_overload_probability(n: int, m: int, epsilon: float) -> float:
    """Union bound over all ``(1+eps)n/m`` window slots — the failure
    probability of Theorem 6.2's main event."""
    slots = max(1.0, (1.0 + epsilon) * n / m)
    return min(1.0, slots * slot_overload_probability(n, m, epsilon))


def completion_tail_probability(k: float, n: int, m: int, epsilon: float) -> float:
    """Theorem 6.2's tail: ``Pr[T > k sigma] <= k^{-4} e^{-Omega(eps^2 m)}``
    for ``k >= 1`` (returned as the quoted shape with the union-bounded
    window probability as the base)."""
    if k < 1:
        return 1.0
    return min(1.0, window_overload_probability(n, m, epsilon) / k**4)


def min_m_for_failure_probability(n: int, epsilon: float, target: float) -> int:
    """Smallest ``m`` whose predicted window overload probability is at most
    ``target`` — useful for sizing experiments."""
    check_prob("target", target)
    check_positive("n", n)
    m = 1
    while window_overload_probability(n, m, epsilon) > target:
        m *= 2
        if m > 2 * n:
            break
    # binary refine
    lo, hi = m // 2, m
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if window_overload_probability(n, mid, epsilon) <= target:
            hi = mid
        else:
            lo = mid
    return hi
