"""Executable theory: Table-1 bounds, separations, and Chernoff machinery."""

from repro.theory import bounds
from repro.theory.bounds import TABLE1
from repro.theory.separations import table1_rows, render_table1, Table1Row
from repro.theory.sensitivity import (
    SensitivityOptimum,
    minimize_sensitivity_bound,
    closed_form_Y,
    sensitivity_point,
)
from repro.theory.chernoff import (
    chernoff_upper_tail,
    slot_overload_probability,
    window_overload_probability,
    completion_tail_probability,
    min_m_for_failure_probability,
)

__all__ = [
    "bounds",
    "TABLE1",
    "table1_rows",
    "render_table1",
    "Table1Row",
    "chernoff_upper_tail",
    "slot_overload_probability",
    "window_overload_probability",
    "completion_tail_probability",
    "min_m_for_failure_probability",
    "SensitivityOptimum",
    "minimize_sensitivity_bound",
    "closed_form_Y",
    "sensitivity_point",
]
