"""Numeric verification of Theorem 4.1's sensitivity argument.

The proof of the broadcast lower bound minimizes

.. math:: Y(y, n) = n \\cdot \\max(L, g y)
          \\quad\\text{subject to}\\quad (2y + 1)^n \\ge p

over the per-superstep fan-out ``y`` and superstep count ``n``, and claims
the optimum sits at ``y = L/g`` with value ``Y >= L lg p / lg(2L/g + 1)``
(hence the stated ``T >= Y/2``).  :func:`minimize_sensitivity_bound`
brute-forces the discrete program so the closed form can be *checked*
rather than trusted — the test suite asserts the closed form lower-bounds
the numeric optimum within a small tolerance across a parameter sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = [
    "SensitivityOptimum",
    "minimize_sensitivity_bound",
    "closed_form_Y",
    "sensitivity_point",
]


@dataclass
class SensitivityOptimum:
    """Result of the numeric minimization."""

    y: float
    n: int
    value: float  # Y = n * max(L, g*y)

    @property
    def T_lower(self) -> float:
        """The proof's ``T >= Y / 2``."""
        return self.value / 2.0


def closed_form_Y(p: int, g: float, L: float) -> float:
    """The paper's closed form ``Y = L lg p / lg(2L/g + 1)``."""
    check_positive("p", p)
    if p < 2:
        return 0.0
    return L * math.log2(p) / math.log2(2.0 * L / g + 1.0)


def sensitivity_point(p: int, g: float, L: float, y_grid: int = 4000, seed=None) -> dict:
    """One ``(p, g, L)`` cell of the Theorem-4.1 verification grid: the
    numeric optimum vs the closed form, as a JSON-ready dict.

    The brute-force minimization is deterministic; ``seed`` is accepted
    (and ignored) so the function satisfies the sweep-engine trial
    contract and the grid can fan out across cores via
    :func:`repro.sweep.run_sweep`.
    """
    opt = minimize_sensitivity_bound(p, g, L, y_grid=y_grid)
    closed = closed_form_Y(p, g, L)
    return {
        "p": p,
        "g": g,
        "L": L,
        "numeric_Y": opt.value,
        "numeric_y": opt.y,
        "numeric_n": opt.n,
        "closed_form_Y": closed,
        "closed_over_numeric": closed / opt.value if opt.value else 1.0,
        "T_lower": opt.T_lower,
    }


def minimize_sensitivity_bound(
    p: int, g: float, L: float, y_grid: int = 4000
) -> SensitivityOptimum:
    """Brute-force the constrained minimization over a fine ``y`` grid.

    For each candidate fan-out ``y`` the smallest admissible superstep
    count is ``n(y) = ceil(lg p / lg(2y + 1))``; we scan ``y`` from near 0
    up to ``p`` (beyond which one superstep suffices) and keep the minimum
    of ``n(y) · max(L, g y)``.
    """
    check_positive("p", p)
    check_positive("g", g)
    check_positive("L", L)
    if p < 2:
        return SensitivityOptimum(y=0.0, n=0, value=0.0)
    lg_p = math.log2(p)
    best = SensitivityOptimum(y=float(p), n=1, value=max(L, g * p))
    # geometric grid over y in (0, p]
    lo, hi = 0.25, float(p)
    ratio = (hi / lo) ** (1.0 / y_grid)
    y = lo
    for _ in range(y_grid + 1):
        n = max(1, math.ceil(lg_p / math.log2(2.0 * y + 1.0)))
        value = n * max(L, g * y)
        if value < best.value:
            best = SensitivityOptimum(y=y, n=n, value=value)
        y *= ratio
    return best
