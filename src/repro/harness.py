"""Command-line experiment harness: ``python -m repro <command>``.

Gives downstream users the paper's experiments without writing code:

``table1``
    Print the analytic Table 1 at a chosen parameter point.
``measure``
    Run the Table-1 algorithms on all four machine models and print the
    measured model times (the executable Table 1).
``schedule``
    Schedule a chosen workload with every sender and print the Section-6
    comparison (optimal / randomized / grouped / naive / BSP(g)).
``dynamic``
    Run the Theorem 6.5 vs Theorem 6.7 stability experiment (optionally
    under message loss with ``--drop-rate``).
``chaos``
    Route a workload through the fault injector with the reliable
    transport and report delivered / lost / retried counts plus the
    resilience overhead against the fault-free run.
``compare``
    Diff two benchmark/telemetry JSON records (e.g. a fresh run against
    the committed ``BENCH_engine.json``) and flag regressions beyond a
    relative tolerance — exit 1 when any gated metric regressed
    (``--json`` emits the machine-readable comparison).
``ledger``
    Run a paper program with the per-superstep load ledger installed and
    print which restriction — local (``m``) or global (``g``) — binds at
    every barrier, plus the charge attribution (``--from FILE``
    summarizes a previously written dump instead).
``top``
    Live terminal view of a running serve daemon (``--url``/``--uds``)
    or a sweep telemetry file (``--telemetry``); ``--once`` prints a
    single frame and exits.

Every randomized subcommand accepts ``--seed``; a top-level
``python -m repro --seed N <command>`` sets the default for all of them,
and the effective seed is always echoed in the output header so any run
can be reproduced from its transcript.  Sweep-capable subcommands
(``experiment``, ``chaos --trials``) likewise accept ``--jobs`` — their
own or the top-level one — to fan independent trials across a process
pool (``repro.sweep``); outputs are bit-identical at any job count.

``measure``, ``experiment``, ``chaos`` and ``profile`` additionally accept
``--trace PATH`` (write a Chrome trace_event JSON — load it at
https://ui.perfetto.dev — plus a run manifest next to it, and print the
cost-attribution table), ``--metrics PATH`` (dump the metrics registry as
columnar JSON) and ``--ledger PATH`` (record the per-superstep load
ledger and dump it; combined with ``--trace`` the ledger also becomes a
Perfetto counter track).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable, Dict

from repro.core.params import MachineParams
from repro.util.reporting import Table

__all__ = ["main", "build_parser"]


def _effective_seed(args: argparse.Namespace, default: int = 0) -> int:
    """Resolve a subcommand's seed: its own ``--seed``, else the top-level
    ``--seed``, else ``default``."""
    seed = getattr(args, "seed", None)
    if seed is None:
        seed = getattr(args, "root_seed", None)
    if seed is None:
        seed = default
    return seed


def _effective_jobs(args: argparse.Namespace, default: int = 1) -> int:
    """Resolve a subcommand's worker count: its own ``--jobs``, else the
    top-level ``--jobs``, else serial (``0`` means all cores)."""
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = getattr(args, "root_jobs", None)
    if jobs is None:
        jobs = default
    from repro.sweep import resolve_jobs

    return resolve_jobs(jobs)


def _effective_backend(args: argparse.Namespace):
    """Resolve a subcommand's sweep backend: its own ``--backend``, else
    the top-level ``--backend``, else ``None`` (auto: serial for jobs=1,
    work-stealing pool otherwise).  Unknown names and unavailable
    backends are reported on stderr; callers treat ``False`` as "invalid,
    exit 2"."""
    backend = getattr(args, "backend", None)
    if backend is None:
        backend = getattr(args, "root_backend", None)
    if backend is None or backend == "auto":
        return None
    from repro.sweep import BackendUnavailableError, get_backend

    try:
        get_backend(backend)  # fail fast: unknown or unavailable
    except (ValueError, BackendUnavailableError) as exc:
        print(f"error: --backend: {exc}", file=sys.stderr)
        return False
    return backend


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


#: namespace entries that are CLI plumbing, not run parameters
_MANIFEST_SKIP = frozenset(
    {"func", "command", "trace", "metrics", "ledger", "json", "root_seed",
     "root_jobs", "root_backend"}
)


def _manifest_params(args: argparse.Namespace) -> dict:
    return {
        k: v for k, v in vars(args).items()
        if k not in _MANIFEST_SKIP and not callable(v)
    }


@contextlib.contextmanager
def _observe(args: argparse.Namespace):
    """No-op unless the subcommand was given ``--trace``/``--metrics``/
    ``--ledger``.

    Otherwise install a :class:`~repro.obs.Tracer`,
    :class:`~repro.obs.MetricsRegistry` and/or
    :class:`~repro.obs.LoadLedger` around the command and, on the way
    out — even when the command failed, since a partial trace is exactly
    the diagnostic you want then — write the Chrome trace, the metrics
    dump, the ledger dump, and a run manifest next to the first artifact,
    and print the cost-attribution and binding tables.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    ledger_path = getattr(args, "ledger", None)
    if not trace_path and not metrics_path and not ledger_path:
        yield
        return
    from repro import obs

    tracer = obs.Tracer() if trace_path else None
    registry = obs.MetricsRegistry() if metrics_path else None
    ledger = obs.LoadLedger() if ledger_path else None
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs.tracing(tracer))
        if registry is not None:
            stack.enter_context(obs.metrics_scope(registry))
        if ledger is not None:
            stack.enter_context(obs.ledger_scope(ledger))
        try:
            yield
        finally:
            if tracer is not None:
                obs.write_chrome_trace(tracer, trace_path, ledger=ledger)
                print(f"wrote {trace_path} ({len(tracer.spans)} spans)")
                if tracer.find(cat="superstep"):
                    print(obs.cost_attribution_table(tracer))
            if registry is not None:
                obs.write_metrics_json(registry, metrics_path)
                print(f"wrote {metrics_path}")
            if ledger is not None:
                ledger.to_json(ledger_path)
                print(f"wrote {ledger_path} ({len(ledger)} superstep rows)")
                if len(ledger):
                    counts = ledger.binding_counts()
                    print(
                        "binding: "
                        + "  ".join(f"{k}={v}" for k, v in counts.items())
                        + f"  total charge={ledger.total_charge():g}"
                    )
            seed = _effective_seed(args) if hasattr(args, "seed") else None
            jobs = _effective_jobs(args) if hasattr(args, "jobs") else None
            manifest = obs.build_manifest(
                command=args.command,
                params=_manifest_params(args),
                seed=seed,
                jobs=jobs,
                # every machine the CLI builds uses the default penalty family
                penalty="exponential",
                trace_path=trace_path,
                metrics_path=metrics_path,
                extra={"ledger_path": ledger_path} if ledger_path else None,
            )
            mpath = obs.manifest_path(trace_path or metrics_path or ledger_path)
            obs.write_manifest(mpath, manifest)
            print(f"wrote {mpath}")


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.theory import render_table1

    print(render_table1(p=args.p, L=args.L, m=args.m))
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro import BSPg, BSPm, QSMg, QSMm
    from repro.algorithms import broadcast, one_to_all, summation

    local, global_ = MachineParams.matched_pair(p=args.p, m=args.m, L=args.L)
    machines = {
        "QSM(m)": QSMm(global_),
        "QSM(g)": QSMg(local),
        "BSP(m)": BSPm(global_),
        "BSP(g)": BSPg(local),
    }
    problems: Dict[str, Callable] = {
        "one-to-all": lambda mach: one_to_all(mach).time,
        "broadcast": lambda mach: broadcast(mach, 1).time,
        "summation": lambda mach: summation(mach, [1.0] * args.p)[0].time,
    }
    table = Table(
        ["problem"] + list(machines),
        title=f"measured model times (p = n = {args.p}, m = {args.m}, "
        f"g = {local.g:g}, L = {args.L:g})",
    )
    for name, run in problems.items():
        row = [name]
        for mach_name, mach in machines.items():
            mach.shared_memory.clear()
            row.append(run(mach))
        table.add_row(row)
    print(table.render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.scheduling import (
        bsp_g_routing_time,
        evaluate_schedule,
        grouped_schedule,
        naive_schedule,
        offline_optimal_schedule,
        unbalanced_consecutive_send,
        unbalanced_granular_send,
        unbalanced_send,
    )
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    seed = _effective_seed(args)
    makers = {
        "balanced": lambda: balanced_h_relation(args.p, max(1, args.n // args.p), seed=seed),
        "uniform": lambda: uniform_random_relation(args.p, args.n, seed=seed),
        "zipf": lambda: zipf_h_relation(args.p, args.n, alpha=args.alpha, seed=seed),
        "one-to-all": lambda: one_to_all_relation(args.p),
    }
    rel = makers[args.workload]()
    g = args.p / args.m
    schedulers = {
        "offline optimal": lambda: offline_optimal_schedule(rel, args.m),
        "unbalanced-send": lambda: unbalanced_send(rel, args.m, args.epsilon, seed=seed),
        "consecutive": lambda: unbalanced_consecutive_send(rel, args.m, args.epsilon, seed=seed),
        "granular": lambda: unbalanced_granular_send(rel, args.m, seed=seed),
        "grouped (g-emulation)": lambda: grouped_schedule(rel, args.m),
        "naive": lambda: naive_schedule(rel),
    }
    print(f"# seed = {seed}")
    table = Table(
        ["scheduler", "span", "completion", "T/OPT", "overloaded slots"],
        title=(
            f"workload={args.workload} p={args.p} n={rel.n} m={args.m} "
            f"(x̄={rel.x_bar}, ȳ={rel.y_bar}, imbalance={rel.imbalance():.1f})"
        ),
    )
    for name, make in schedulers.items():
        rep = evaluate_schedule(make(), m=args.m)
        table.add_row([name, rep.span, rep.completion_time, round(rep.ratio, 3), rep.overloaded_slots])
    print(table.render())
    print(f"\nBSP(g) comparison (Proposition 6.1): {bsp_g_routing_time(rel, g):g}")
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.dynamic import (
        AlgorithmBProtocol,
        BSPgIntervalProtocol,
        LossyAlgorithmBProtocol,
        SingleTargetAdversary,
        run_dynamic,
    )

    seed = _effective_seed(args)
    lossy = args.drop_rate > 0.0
    local, global_ = MachineParams.matched_pair(p=args.p, m=args.m, L=args.L)
    g = local.g
    columns = ["beta·g", "BSP(g) slope", "BSP(g)", "AlgB slope", "AlgB"]
    if lossy:
        columns += [f"AlgB q={args.drop_rate:g} slope", "AlgB lossy"]
    print(f"# seed = {seed}")
    table = Table(
        columns,
        title=f"single-source flood stability (p={args.p}, m={args.m}, g={g:g}, w={args.window})",
    )
    for beta_g in (0.5, 1.5, 3.0):
        beta = beta_g / g
        trace = SingleTargetAdversary(args.p, args.window, beta=beta).generate(
            args.horizon, seed=seed
        )
        res_g = run_dynamic(BSPgIntervalProtocol(local, args.window), trace)
        res_m = run_dynamic(
            AlgorithmBProtocol(global_, args.window, alpha=beta, seed=seed), trace
        )
        row = [beta_g, round(res_g.backlog_slope(), 5),
               "stable" if res_g.is_stable() else "UNSTABLE",
               round(res_m.backlog_slope(), 5),
               "stable" if res_m.is_stable() else "UNSTABLE"]
        if lossy:
            res_q = run_dynamic(
                LossyAlgorithmBProtocol(
                    global_, args.window, alpha=beta,
                    drop_rate=args.drop_rate, seed=seed,
                ),
                trace,
            )
            row += [round(res_q.backlog_slope(), 5),
                    "stable" if res_q.is_stable() else "UNSTABLE"]
        table.add_row(row)
    print(table.render())
    return 0


def _profile_workloads() -> Dict[str, Callable[[], None]]:
    """Named hot-path workloads for ``python -m repro profile``."""

    def route() -> None:
        from repro import BSPm
        from repro.scheduling import unbalanced_send
        from repro.scheduling.execute import execute_schedule
        from repro.workloads import uniform_random_relation

        rel = uniform_random_relation(256, 40_000, seed=0)
        sched = unbalanced_send(rel, 64, 0.2, seed=1)
        execute_schedule(BSPm(MachineParams(p=256, m=64, L=1)), sched)

    def qsm_phases() -> None:
        import numpy as np

        from repro import QSMm

        p, rounds, k = 256, 12, 24
        span = p * k

        def program(ctx):
            addrs = (ctx.pid * k + np.arange(k, dtype=np.int64)) % span
            values = np.arange(k, dtype=np.int64)
            for r in range(rounds):
                ctx.write_many(addrs, values)
                yield
                ctx.read_many((addrs + (r + 1) * k) % span)
                yield

        machine = QSMm(MachineParams(p=p, m=32, L=2))
        machine.use_dense_memory(span)
        machine.run(program)

    def delivery() -> None:
        from repro import BSPm
        from repro.algorithms.total_exchange import run_total_exchange

        run_total_exchange(BSPm(MachineParams(p=192, m=48, L=1)))

    def schedule() -> None:
        from repro.scheduling import evaluate_schedule, unbalanced_send
        from repro.workloads import uniform_random_relation

        rel = uniform_random_relation(1024, 1_000_000, seed=2)
        evaluate_schedule(unbalanced_send(rel, 256, 0.2, seed=3), m=256)

    def algorithms() -> None:
        # the two high-volume bench_algorithms_e2e.py profiles, downsized
        import numpy as np

        from repro import BSPm
        from repro.algorithms.qsm_on_bsp import run_qsm_program_on_bsp
        from repro.algorithms.sample_sort import sample_sort

        p, h, phases = 64, 512, 4
        span = p * h

        def hrel(ctx):
            j = np.arange(h, dtype=np.int64)
            for ph in range(phases):
                base = ctx.pid * h + ph
                if ph % 2 == 0:
                    ctx.write_many((base + j * 2) % span, (ctx.pid + j).astype(np.float64))
                else:
                    ctx.read_many((base + j * 3 + 1) % span)
                yield

        keys = np.random.default_rng(7).uniform(-1e6, 1e6, size=60_000)
        sample_sort(BSPm(MachineParams(p=p, m=16, L=2)), keys, seed=7)
        run_qsm_program_on_bsp(BSPm(MachineParams(p=p, m=16, L=2)), hrel)

    def dynamic() -> None:
        from repro.dynamic import AlgorithmBProtocol, UniformAdversary, run_dynamic

        _, global_ = MachineParams.matched_pair(p=256, m=16, L=8.0)
        trace = UniformAdversary(256, 128, alpha=8.0, beta=8.0).generate(
            100_000, seed=0
        )
        run_dynamic(AlgorithmBProtocol(global_, 128, alpha=8.0, seed=1), trace)

    def batch() -> None:
        # the batched-replay hot path: one recorded routing program priced
        # across a B=64 grid of (m, L) machines in a single pass
        from repro import BSPm
        from repro.core.batched import replay_batch
        from repro.scheduling import unbalanced_send
        from repro.scheduling.execute import compile_schedule
        from repro.workloads import uniform_random_relation

        rel = uniform_random_relation(256, 40_000, seed=0)
        sched = unbalanced_send(rel, 64, 0.2, seed=1)
        compiled = compile_schedule(sched)
        machines = [
            BSPm(MachineParams(p=256, m=m, L=L))
            for m in (16, 24, 32, 48, 64, 96, 128, 192)
            for L in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
        ]
        replay_batch(compiled, machines)

    return {
        "route": route,
        "qsm-phases": qsm_phases,
        "delivery": delivery,
        "schedule": schedule,
        "algorithms": algorithms,
        "dynamic": dynamic,
        "batch": batch,
    }


#: ``--workload`` spellings accepted for compatibility with the docs
_WORKLOAD_ALIASES = {"routing": "route", "qsm": "qsm-phases"}


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    workloads = _profile_workloads()
    name = args.workload_flag or args.workload
    if name is None:
        print(
            "error: no workload selected (pass one positionally or via "
            "--workload; \"list\" enumerates)",
            file=sys.stderr,
        )
        return 2
    name = _WORKLOAD_ALIASES.get(name, name)
    if name == "list":
        for wname in workloads:
            print(wname)
        return 0
    run = workloads[name]
    from repro.core.engine import fused_default, set_fused_default

    previous = fused_default()
    if args.fused is not None:
        set_fused_default(args.fused)
    try:
        run()  # warm-up: imports and first-call caches stay out of the profile
        profiler = cProfile.Profile()
        profiler.enable()
        run()
        profiler.disable()
    finally:
        set_fused_default(previous)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import UnknownExperimentError, list_experiments, run_experiment

    if args.name == "list":
        for name in list_experiments():
            print(name)
        return 0
    seed = _effective_seed(args)
    jobs = _effective_jobs(args)
    backend = _effective_backend(args)
    if backend is False:
        return 2
    print(f"# seed = {seed}  jobs = {jobs}"
          + (f"  backend = {backend}" if backend else ""))
    kwargs = {"seed": seed, "jobs": jobs}
    if backend is not None:
        kwargs["backend"] = backend
    if args.on_error != "raise":
        import inspect

        from repro.experiments import EXPERIMENTS
        from repro.sweep import parse_on_error

        try:
            parse_on_error(args.on_error)  # fail fast on a malformed policy
        except ValueError as exc:
            print(f"error: --on-error: {exc}", file=sys.stderr)
            return 2
        fn = EXPERIMENTS.get(args.name)
        if fn is not None and "on_error" not in inspect.signature(fn).parameters:
            print(
                f"error: experiment {args.name!r} does not run a sweep; "
                "--on-error does not apply",
                file=sys.stderr,
            )
            return 2
        kwargs["on_error"] = args.on_error
    try:
        result = run_experiment(args.name, **kwargs)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result is None:
        # mpi worker rank: it served the sweep; rank 0 prints the record
        return 0
    text = json.dumps(result, indent=2, default=float)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.json}")
    else:
        print(text)
    skipped = result.get("sweep_errors", {}).get("skipped", 0)
    if skipped:
        print(f"# {skipped} trial(s) skipped under --on-error {args.on_error}",
              file=sys.stderr)
        return 3
    return 0


def _parse_proc_fault(text: str):
    """Parse a ``pid:start[:duration]`` CLI fault spec into a tuple."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"expected pid:start[:duration], got {text!r}"
        )
    try:
        nums = [int(x) for x in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected integers in pid:start[:duration], got {text!r}"
        ) from None
    pid, start = nums[0], nums[1]
    duration = nums[2] if len(nums) == 3 else 1
    return pid, start, duration


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults import CrashSpec, FaultPlan, StallSpec, TransportError
    from repro.models.bsp_m import BSPm
    from repro.scheduling import route_reliable
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    seed = _effective_seed(args)
    if args.trials > 1:
        return _chaos_sweep(args, seed)
    if args.workload == "route-verify":
        # the docs/performance.md 40k-flit routing profile, pinned so the CI
        # smoke exercises exactly the throughput-bench configuration
        p, m, L = 256, 64, 1.0
        rel = uniform_random_relation(p, 40_000, seed=seed)
    else:
        p, m, L = args.p, args.m, args.L
        makers = {
            "balanced": lambda: balanced_h_relation(p, max(1, args.n // p), seed=seed),
            "uniform": lambda: uniform_random_relation(p, args.n, seed=seed),
            "zipf": lambda: zipf_h_relation(p, args.n, alpha=args.alpha, seed=seed),
            "one-to-all": lambda: one_to_all_relation(p),
        }
        rel = makers[args.workload]()
    machine = BSPm(MachineParams(p=p, m=m, L=L))
    plan = FaultPlan(
        seed=seed,
        drop_rate=args.drop_rate,
        duplicate_rate=args.duplicate_rate,
        reorder_rate=args.reorder_rate,
        corrupt_rate=args.corrupt_rate,
        stalls=tuple(StallSpec(pid=a, start=b, duration=c) for a, b, c in args.stall),
        crashes=tuple(CrashSpec(pid=a, start=b, duration=c) for a, b, c in args.crash),
    )
    machine.inject_faults(plan)
    print(f"# chaos {args.workload} (p={p}, n={rel.n}, m={m}, L={L:g})")
    print(f"# seed = {seed}")
    print(
        f"# plan: drop={plan.drop_rate:g} duplicate={plan.duplicate_rate:g} "
        f"reorder={plan.reorder_rate:g} corrupt={plan.corrupt_rate:g} "
        f"stalls={len(plan.stalls)} crashes={len(plan.crashes)}"
    )
    status = 0
    try:
        result = route_reliable(
            machine, rel,
            epsilon=args.epsilon, seed=seed,
            max_rounds=args.max_rounds, backoff_base=args.backoff_base,
            audit=args.audit,
        )
        report = result.to_dict()
    except TransportError as exc:
        result = exc.result
        report = result.to_dict()
        report["error"] = str(exc)
        print(f"TRANSPORT FAILED: {exc}")
        status = 1
    table = Table(["metric", "value"], title="reliable transport under chaos")
    table.add_row(["flits", result.n])
    table.add_row(["rounds", result.rounds])
    table.add_row(["delivered", result.delivered])
    table.add_row(["exactly once", str(result.exactly_once)])
    table.add_row(["lost in flight", result.dropped])
    table.add_row(["retried", result.retried])
    table.add_row(["duplicates", result.duplicates])
    table.add_row(["corrupted", result.corrupted])
    table.add_row(["backoff supersteps", result.backoff_steps])
    table.add_row(["fault-free time", round(result.fault_free_time, 3)])
    table.add_row(["protocol time", round(result.time, 3)])
    table.add_row(["resilience overhead", f"{result.overhead:.3f}x"])
    print(table.render())
    if args.json:
        report["workload"] = args.workload
        report["seed"] = seed
        report["plan"] = {
            "drop_rate": plan.drop_rate,
            "duplicate_rate": plan.duplicate_rate,
            "reorder_rate": plan.reorder_rate,
            "corrupt_rate": plan.corrupt_rate,
            "stalls": len(plan.stalls),
            "crashes": len(plan.crashes),
        }
        with open(args.json, "w") as fh:
            fh.write(json.dumps(report, indent=2, default=float) + "\n")
        print(f"wrote {args.json}")
    return status


def _chaos_sweep(args: argparse.Namespace, seed: int) -> int:
    """``chaos --trials N``: fan N independent seeded chaos runs through
    the sweep engine and print the aggregate resilience statistics."""
    import json

    from repro.faults.chaos import chaos_trial, summarize_chaos_sweep
    from repro.sweep import SweepSpec, run_sweep

    jobs = _effective_jobs(args)
    if args.workload == "route-verify":
        p, n, m, L = 256, 40_000, 64, 1.0
    else:
        p, n, m, L = args.p, args.n, args.m, args.L
    spec = SweepSpec(
        name="chaos",
        fn=chaos_trial,
        grid={args.workload: {}},
        trials=args.trials,
        common=dict(
            workload=args.workload, p=p, n=n, m=m, L=L,
            alpha=args.alpha, epsilon=args.epsilon,
            drop_rate=args.drop_rate, duplicate_rate=args.duplicate_rate,
            reorder_rate=args.reorder_rate, corrupt_rate=args.corrupt_rate,
            stalls=tuple(args.stall), crashes=tuple(args.crash),
            max_rounds=args.max_rounds, backoff_base=args.backoff_base,
            audit=args.audit,
        ),
        seed=seed,
    )
    backend = _effective_backend(args)
    if backend is False:
        return 2
    print(f"# chaos sweep {args.workload} (p={p}, n={n}, m={m}, L={L:g})")
    print(f"# seed = {seed}  jobs = {jobs}  trials = {args.trials}"
          + (f"  backend = {backend}" if backend else ""))
    try:
        sweep = run_sweep(spec, jobs=jobs, on_error=args.on_error, backend=backend)
    except ValueError as exc:
        if "on_error" not in str(exc):
            raise
        print(f"error: --on-error: {exc}", file=sys.stderr)
        return 2
    if sweep is None:
        return 0  # mpi worker rank: rank 0 prints the report
    summary = summarize_chaos_sweep(sweep.results)
    if not summary["trials"]:
        print(f"all {summary['skipped']} trial(s) skipped "
              f"under --on-error {args.on_error}", file=sys.stderr)
        return 3
    table = Table(["metric", "value"], title="reliable transport under chaos (sweep)")
    table.add_row(["trials", summary["trials"]])
    if summary.get("skipped"):
        table.add_row(["skipped trials", summary["skipped"]])
    table.add_row(["transport failures", summary["failures"]])
    table.add_row(["exactly-once rate", f"{summary['exactly_once_rate']:.3f}"])
    table.add_row(["delivered (total)", summary["delivered_total"]])
    table.add_row(["lost in flight (total)", summary["dropped_total"]])
    table.add_row(["retried (total)", summary["retried_total"]])
    table.add_row(["rounds mean / max",
                   f"{summary['rounds']['mean']:.2f} / {summary['rounds']['max']}"])
    table.add_row(["overhead mean / p95 / max",
                   f"{summary['overhead']['mean']:.3f} / "
                   f"{summary['overhead']['p95']:.3f} / {summary['overhead']['max']:.3f}x"])
    tel = sweep.telemetry()
    table.add_row(["sweep elapsed", f"{tel['elapsed_s']:.2f}s"])
    table.add_row(["worker utilization", f"{tel['utilization']:.2f}"])
    print(table.render())
    if args.json:
        record = {
            "workload": args.workload, "seed": seed,
            "summary": summary, "telemetry": tel, "trials": sweep.results,
        }
        with open(args.json, "w") as fh:
            fh.write(json.dumps(record, indent=2, default=float) + "\n")
        print(f"wrote {args.json}")
    if summary["failures"]:
        return 1
    return 3 if summary.get("skipped") else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs import compare_files

    comparison = compare_files(
        args.baseline, args.candidate, tolerance=args.tolerance
    )
    if args.json is not None:
        text = json.dumps(comparison.to_dict(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text)
            print(f"wrote {args.json}")
    else:
        print(comparison.render(all_rows=args.all))
    return 1 if comparison.regressions else 0


#: ``repro ledger`` model spellings → (class name, uses the global (m) or
#: the local (g) half of the matched parameter pair)
_LEDGER_MODELS = {
    "bsp-m": ("BSPm", True),
    "bsp-g": ("BSPg", False),
    "qsm-m": ("QSMm", True),
    "qsm-g": ("QSMg", False),
}


def _cmd_ledger(args: argparse.Namespace) -> int:
    """``repro ledger`` — run one paper program under the load ledger and
    print which restriction binds at every superstep barrier."""
    import json

    import repro
    from repro.obs import LoadLedger, ledger_scope, ledger_table

    if args.from_file:
        with open(args.from_file) as fh:
            dump = json.load(fh)
        print(ledger_table(dump, top=args.top))
        summary = dump.get("summary") or {}
        if summary:
            counts = summary.get("binding", {})
            print("binding: " + "  ".join(f"{k}={v}" for k, v in counts.items()))
        return 0

    if args.program is None:
        print("error: pass a program to run, or --from FILE to summarize "
              "an existing dump", file=sys.stderr)
        return 2
    seed = _effective_seed(args)
    local, global_ = MachineParams.matched_pair(p=args.p, m=args.m, L=args.L)
    cls_name, wants_global = _LEDGER_MODELS[args.model]
    machine = getattr(repro, cls_name)(global_ if wants_global else local)

    def run_program() -> None:
        from repro.algorithms import broadcast, one_to_all, summation

        if args.program == "one-to-all":
            one_to_all(machine)
        elif args.program == "broadcast":
            broadcast(machine, 1)
        elif args.program == "summation":
            summation(machine, [1.0] * args.p)
        else:  # route
            from repro.scheduling import unbalanced_send
            from repro.scheduling.execute import execute_schedule
            from repro.workloads import uniform_random_relation

            rel = uniform_random_relation(args.p, args.n, seed=seed)
            sched = unbalanced_send(rel, args.m, args.epsilon, seed=seed)
            execute_schedule(machine, sched)

    ledger = LoadLedger()
    with ledger_scope(ledger):
        run_program()
    print(
        f"# {args.program} on {cls_name} "
        f"(p={args.p}, m={args.m}, g={local.g:g}, L={args.L:g}, seed={seed})"
    )
    print(ledger_table(ledger, top=args.top))
    counts = ledger.binding_counts()
    by = ledger.charge_by_binding()
    print(
        "binding: "
        + "  ".join(f"{k}={counts[k]} ({by[k]:g})" for k in counts)
        + f"  total charge={ledger.total_charge():g}"
    )
    if args.json:
        ledger.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top`` — live view of a daemon or a sweep telemetry file."""
    from repro.obs.top import make_source, run_top

    try:
        source = make_source(
            url=args.url, uds=args.uds, telemetry=args.telemetry
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return run_top(source, interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache {stats,clear,path}`` — the memo cache and its
    persistent disk store (see docs/serving.md)."""
    import json

    from repro.store import default_store_path, summarize_store, wipe_store
    from repro.sweep import cache_stats, clear_cache

    path = args.dir if args.dir else default_store_path()
    if args.action == "path":
        print(path)
        return 0
    if args.action == "clear":
        removed = wipe_store(path)
        clear_cache()
        if args.json:
            print(json.dumps({"path": path, "entries_removed": removed}))
        else:
            print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {path}")
        return 0
    # stats: the in-memory tier of THIS process plus the shared on-disk
    # footprint.  summarize_store() only reads — it never opens the store,
    # so a tag mismatch is reported, not acted on.
    mem = cache_stats()
    disk = summarize_store(path)
    if args.json:
        print(json.dumps({
            "memory": {
                "hits": mem.hits,
                "misses": mem.misses,
                "hit_rate": mem.hit_rate,
                "entries": mem.entries,
                "disk_hits": mem.disk_hits,
            },
            "disk": disk,
        }, indent=2))
        return 0
    table = Table(["metric", "value"], title="memo cache")
    table.add_row(["memory hits / misses", f"{mem.hits} / {mem.misses}"])
    table.add_row(["memory entries", mem.entries])
    table.add_row(["disk hits (this process)", mem.disk_hits])
    table.add_row(["store path", disk["path"]])
    table.add_row(["store exists", str(disk["exists"])])
    table.add_row(["store entries", disk["entries"]])
    table.add_row(["store bytes", disk["bytes"]])
    tag = disk["tag"]
    stale = tag is not None and tag != disk["current_tag"]
    table.add_row(["store tag", f"{tag}{' (STALE: will invalidate on open)' if stale else ''}"])
    print(table.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — run the simulation daemon until SIGTERM/SIGINT
    (graceful drain) or a ``POST /v1/drain``.  See docs/serving.md."""
    import json as _json

    from repro.serve import AdmissionConfig, ExecutorConfig, ReproServer
    from repro.serve.chaos import plan_from_env
    from repro.store import default_store_path
    from repro.store.disk import DiskStore

    chaos = plan_from_env()
    store = None
    if not args.no_store:
        store_dir = args.store_dir or default_store_path()
        store = DiskStore(
            store_dir, io_fault=chaos.io_fault if chaos.disk_full_rate else None
        )
    try:
        admission = AdmissionConfig(
            budget_m=args.budget_m,
            epsilon=args.epsilon,
            max_queue=args.max_queue,
            oversized_factor=args.oversized_factor,
            max_batch=args.max_batch,
            seed=_effective_seed(args),
        )
        executor = ExecutorConfig(
            workers=args.workers,
            max_attempts=args.max_attempts,
            quarantine_after=args.quarantine_after,
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = ReproServer(
        host=args.host,
        port=args.port,
        admission=admission,
        executor=executor,
        store=store,
        chaos=chaos,
        uds=args.uds,
    )
    server.install_signal_handlers()
    server.start()
    print(f"repro serve listening on {server.url} (engine={args.engine})",
          flush=True)
    if store is not None:
        print(f"persistent store: {store.root}", flush=True)
    if not chaos.is_null:
        print(f"chaos plan active: {chaos}", flush=True)
    server.serve_until_drained()
    snapshot = server.metrics.snapshot()
    if args.metrics_dump:
        with open(args.metrics_dump, "w") as fh:
            fh.write(_json.dumps(snapshot, indent=2, default=float) + "\n")
        print(f"wrote {args.metrics_dump}", flush=True)
    print("drained; bye", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (subcommands: table1, measure,
    schedule, dynamic)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Experiment harness for the SPAA'97 bandwidth-models reproduction.",
    )
    parser.add_argument(
        "--seed",
        dest="root_seed",
        type=int,
        default=None,
        help="default seed for every randomized subcommand (a subcommand's "
        "own --seed wins); the effective seed is echoed in the output",
    )
    parser.add_argument(
        "--jobs",
        dest="root_jobs",
        type=int,
        default=None,
        help="default worker-process count for sweep-capable subcommands "
        "(a subcommand's own --jobs wins; 0 = all cores; output is "
        "bit-identical at any job count)",
    )
    parser.add_argument(
        "--backend",
        dest="root_backend",
        default=None,
        metavar="NAME",
        help="default sweep execution backend for sweep-capable subcommands "
        "(a subcommand's own --backend wins): serial, pool-steal, or mpi "
        "(needs the repro[mpi] extra and an mpirun launch); default auto — "
        "serial for jobs=1, the work-stealing pool otherwise",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="print the analytic Table 1")
    t1.add_argument("--p", type=int, default=4096)
    t1.add_argument("--m", type=int, default=256)
    t1.add_argument("--L", type=float, default=4.0)
    t1.set_defaults(func=_cmd_table1)

    me = sub.add_parser("measure", help="measured Table 1 on all four models")
    me.add_argument("--p", type=int, default=256)
    me.add_argument("--m", type=int, default=16)
    me.add_argument("--L", type=float, default=8.0)
    _add_obs_args(me)
    me.set_defaults(func=_cmd_measure)

    sc = sub.add_parser("schedule", help="compare the Section 6 senders on a workload")
    sc.add_argument("--workload", choices=["balanced", "uniform", "zipf", "one-to-all"], default="zipf")
    sc.add_argument("--p", type=int, default=1024)
    sc.add_argument("--n", type=int, default=100_000)
    sc.add_argument("--m", type=int, default=64)
    sc.add_argument("--alpha", type=float, default=1.2)
    sc.add_argument("--epsilon", type=float, default=0.15)
    sc.add_argument("--seed", type=int, default=None)
    sc.set_defaults(func=_cmd_schedule)

    dy = sub.add_parser("dynamic", help="Theorem 6.5 vs 6.7 stability experiment")
    dy.add_argument("--p", type=int, default=256)
    dy.add_argument("--m", type=int, default=16)
    dy.add_argument("--L", type=float, default=8.0)
    dy.add_argument("--window", type=int, default=128)
    dy.add_argument("--horizon", type=int, default=20_000)
    dy.add_argument("--seed", type=int, default=None)
    dy.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        help="per-traversal message-loss probability; > 0 adds the "
        "LossyAlgorithmB stability-under-loss columns",
    )
    dy.set_defaults(func=_cmd_dynamic)

    pr = sub.add_parser(
        "profile",
        help="cProfile a hot-path workload and print the top functions",
    )
    pr.add_argument(
        "workload",
        nargs="?",
        default=None,
        choices=["route", "qsm-phases", "delivery", "schedule",
                 "algorithms", "dynamic", "batch", "list"],
        help='workload to profile ("list" to enumerate)',
    )
    pr.add_argument(
        "--workload",
        dest="workload_flag",
        default=None,
        choices=["routing", "qsm", "algorithms", "dynamic", "batch"],
        help="workload selector covering the vectorized hot paths "
        "(routing = route, qsm = qsm-phases, algorithms = the "
        "bench_algorithms_e2e profiles, dynamic = a 100k-interval "
        "run_dynamic horizon, batch = a B=64 batched replay of one "
        "compiled routing program); wins over the positional",
    )
    pr.add_argument(
        "--top", type=_positive_int, default=20,
        help="rows of the cumulative-time table (must be positive)",
    )
    pr.add_argument(
        "--fused",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the fused superstep path on (--fused) or off "
        "(--no-fused) for the profiled workload; default follows the "
        "engine (fused unless REPRO_FUSED=0)",
    )
    _add_obs_args(pr)
    pr.set_defaults(func=_cmd_profile)

    ex = sub.add_parser(
        "experiment",
        help="run a registered experiment and print/save its JSON record",
    )
    ex.add_argument("name", help='"list" to enumerate, or an experiment name')
    ex.add_argument("--seed", type=int, default=None)
    ex.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the experiment's trial fan-out "
        "(0 = all cores; default serial)",
    )
    _add_backend_arg(ex)
    ex.add_argument("--json", default=None, help="write the record to this file")
    _add_on_error_arg(ex)
    _add_obs_args(ex)
    ex.set_defaults(func=_cmd_experiment)

    ch = sub.add_parser(
        "chaos",
        help="route a workload through the fault injector with the "
        "reliable transport and report the resilience overhead",
    )
    ch.add_argument(
        "workload",
        choices=["route-verify", "balanced", "uniform", "zipf", "one-to-all"],
        help='"route-verify" pins the docs/performance.md 40k-flit routing '
        "profile (p=256, m=64, L=1); the others honour --p/--n/--m/--L",
    )
    ch.add_argument("--p", type=int, default=256)
    ch.add_argument("--n", type=int, default=20_000)
    ch.add_argument("--m", type=int, default=64)
    ch.add_argument("--L", type=float, default=1.0)
    ch.add_argument("--alpha", type=float, default=1.2, help="zipf skew")
    ch.add_argument("--epsilon", type=float, default=0.15)
    ch.add_argument("--seed", type=int, default=None)
    ch.add_argument("--drop-rate", type=float, default=0.05)
    ch.add_argument("--duplicate-rate", type=float, default=0.0)
    ch.add_argument("--reorder-rate", type=float, default=0.0)
    ch.add_argument("--corrupt-rate", type=float, default=0.0)
    ch.add_argument(
        "--stall",
        type=_parse_proc_fault,
        action="append",
        default=[],
        metavar="PID:START[:DUR]",
        help="stall a processor for DUR supersteps (repeatable)",
    )
    ch.add_argument(
        "--crash",
        type=_parse_proc_fault,
        action="append",
        default=[],
        metavar="PID:START[:DUR]",
        help="crash a processor for DUR supersteps (repeatable)",
    )
    ch.add_argument("--max-rounds", type=int, default=64)
    ch.add_argument("--backoff-base", type=int, default=1)
    ch.add_argument(
        "--trials", type=int, default=1,
        help="> 1 sweeps that many independently seeded chaos runs and "
        "reports aggregate statistics",
    )
    ch.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for --trials > 1 (0 = all cores)",
    )
    _add_backend_arg(ch)
    ch.add_argument(
        "--audit",
        action="store_true",
        help="run every superstep through the invariant auditor",
    )
    ch.add_argument("--json", default=None, help="write the report to this file")
    _add_on_error_arg(ch)
    _add_obs_args(ch)
    ch.set_defaults(func=_cmd_chaos)

    ca = sub.add_parser(
        "cache",
        help="inspect or clear the memo cache and its persistent disk store",
    )
    ca.add_argument(
        "action",
        choices=["stats", "clear", "path"],
        help="stats: counters + on-disk footprint; clear: wipe the disk "
        "store (and this process's in-memory entries); path: print the "
        "store directory",
    )
    ca.add_argument(
        "--dir", default=None, metavar="PATH",
        help="store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/store)",
    )
    ca.add_argument("--json", action="store_true", help="emit JSON")
    ca.set_defaults(func=_cmd_cache)

    sv = sub.add_parser(
        "serve",
        help="run the simulation daemon (JSON over HTTP; graceful drain "
        "on SIGTERM)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=8377,
        help="listen port (0 = ephemeral; the chosen port is printed)",
    )
    sv.add_argument(
        "--budget-m", type=int, default=4096,
        help="admission bandwidth budget m, in flits per slot of the "
        "Unbalanced-Send round schedule",
    )
    sv.add_argument(
        "--epsilon", type=float, default=0.2,
        help="window slack of the admission draw (W = (1+eps)·total/m)",
    )
    sv.add_argument(
        "--max-queue", type=int, default=64,
        help="pending-request bound; beyond it submissions shed with "
        "E_QUEUE_FULL (HTTP 429)",
    )
    sv.add_argument(
        "--oversized-factor", type=int, default=64,
        help="shed requests costing more than FACTOR × budget-m flits "
        "with E_OVERSIZED (HTTP 413)",
    )
    sv.add_argument(
        "--max-batch", type=int, default=16,
        help="requests scheduled per admission round",
    )
    sv.add_argument(
        "--workers", type=int, default=4, help="executor worker threads"
    )
    sv.add_argument(
        "--engine", choices=("thread", "process"), default="thread",
        help="compute engine: 'thread' runs handlers on the executor "
        "threads (default); 'process' ships scenario/experiment/sweep "
        "compute to a persistent process pool for real parallelism",
    )
    sv.add_argument(
        "--uds", default=None, metavar="PATH",
        help="listen on a Unix-domain socket at PATH instead of TCP "
        "(host/port are ignored; clients use ServeClient(uds=PATH))",
    )
    sv.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per submission before E_CRASHED",
    )
    sv.add_argument(
        "--quarantine-after", type=int, default=3,
        help="cumulative failures of one request fingerprint before it is "
        "quarantined (E_QUARANTINED)",
    )
    sv.add_argument(
        "--store-dir", default=None, metavar="PATH",
        help="persistent response/memo store directory (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro/store)",
    )
    sv.add_argument(
        "--no-store", action="store_true",
        help="serve without the persistent cache (every request recomputes)",
    )
    sv.add_argument(
        "--metrics-dump", default=None, metavar="PATH",
        help="on drain, write the serve.* metrics snapshot as JSON "
        "(repro compare consumes it)",
    )
    sv.add_argument("--seed", type=int, default=None)
    sv.set_defaults(func=_cmd_serve)

    cp = sub.add_parser(
        "compare",
        help="diff two benchmark/telemetry JSON records and flag regressions",
    )
    cp.add_argument(
        "baseline", help="committed reference record (e.g. BENCH_engine.json)"
    )
    cp.add_argument("candidate", help="freshly produced record to vet")
    cp.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative regression tolerance for gated metrics (default 0.05; "
        "model-time keys are always exact)",
    )
    cp.add_argument(
        "--all", action="store_true",
        help="print every compared key, not only regressions and drift",
    )
    cp.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the machine-readable comparison instead of the table "
        "(to PATH, or stdout when PATH is omitted); exit codes unchanged",
    )
    cp.set_defaults(func=_cmd_compare)

    lg = sub.add_parser(
        "ledger",
        help="run a paper program under the per-superstep load ledger and "
        "print which restriction (local m / global g) binds at each barrier",
    )
    lg.add_argument(
        "program",
        nargs="?",
        default=None,
        choices=["one-to-all", "broadcast", "summation", "route"],
        help="paper program to run (route honours --n/--epsilon); "
        "optional when summarizing a dump via --from",
    )
    lg.add_argument(
        "--model", choices=sorted(_LEDGER_MODELS), default="bsp-m",
        help="machine model; -m variants take the globally-limited half of "
        "the matched parameter pair, -g variants the locally-limited half",
    )
    lg.add_argument("--p", type=int, default=64)
    lg.add_argument("--m", type=int, default=8)
    lg.add_argument("--L", type=float, default=4.0)
    lg.add_argument("--n", type=int, default=4096, help="route workload flits")
    lg.add_argument("--epsilon", type=float, default=0.15)
    lg.add_argument("--seed", type=int, default=None)
    lg.add_argument(
        "--top", type=_positive_int, default=None, metavar="N",
        help="show only the N highest-charge supersteps",
    )
    lg.add_argument("--json", default=None, metavar="PATH",
                    help="write the columnar ledger dump to PATH")
    lg.add_argument(
        "--from", dest="from_file", default=None, metavar="FILE",
        help="summarize an existing ledger dump (written by --json or the "
        "--ledger observability flag) instead of running a program",
    )
    lg.set_defaults(func=_cmd_ledger)

    tp = sub.add_parser(
        "top",
        help="live terminal view of a serve daemon or sweep telemetry file",
    )
    tp.add_argument("--url", default=None, help="daemon base URL (TCP)")
    tp.add_argument("--uds", default=None, metavar="PATH",
                    help="daemon Unix-domain socket path")
    tp.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="tail a sweep telemetry JSON instead of a daemon",
    )
    tp.add_argument("--interval", type=float, default=1.0,
                    help="refresh interval in seconds")
    tp.add_argument(
        "--once", action="store_true",
        help="print a single frame to stdout and exit (no curses)",
    )
    tp.set_defaults(func=_cmd_top)

    return parser


def _add_backend_arg(sp: argparse.ArgumentParser) -> None:
    """Attach the sweep backend selector (see repro.sweep.backends)."""
    sp.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="sweep execution backend: serial, pool-steal, or mpi (needs "
        "the repro[mpi] extra and an mpirun launch); default auto — serial "
        "for jobs=1, the work-stealing pool otherwise.  Output is "
        "bit-identical on every backend",
    )


def _add_on_error_arg(sp: argparse.ArgumentParser) -> None:
    """Attach the sweep error policy (see repro.sweep.run_sweep)."""
    sp.add_argument(
        "--on-error",
        default="raise",
        metavar="POLICY",
        help='failing-trial policy: "raise" (abort, the default), "skip" '
        '(record + continue; exit code 3 when any trial was skipped), or '
        '"retry:N" (N extra attempts, then skip)',
    )


def _add_obs_args(sp: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags (see docs/observability.md)."""
    sp.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON (load at https://ui.perfetto.dev) "
        "plus a run manifest, and print the cost-attribution table",
    )
    sp.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics registry as columnar JSON "
        "(plus a run manifest)",
    )
    sp.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="record the per-superstep load ledger (which restriction "
        "binds at each barrier) and write its columnar JSON dump; with "
        "--trace the ledger is also embedded as a Perfetto counter track",
    )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # REPRO_PERSISTENT_CACHE=1 backs the memo cache with the shared disk
    # store for this invocation (the serve daemon installs its own store
    # explicitly and ignores the env var)
    from repro.store import maybe_enable_from_env

    maybe_enable_from_env()
    with _observe(args):
        return args.func(args)
