"""Section 6.2: dynamic unbalanced routing under adversarial arrivals."""

from repro.dynamic.adversary import (
    ArrivalTrace,
    Adversary,
    SingleTargetAdversary,
    UniformAdversary,
    BurstyAdversary,
    RotatingTargetAdversary,
    VariableLengthAdversary,
    check_compliance,
)
from repro.dynamic.protocols import (
    Protocol,
    BSPgIntervalProtocol,
    AlgorithmBProtocol,
    LossyAlgorithmBProtocol,
    ImmediateProtocol,
)
from repro.dynamic.simulation import BatchRecord, DynamicResult, run_dynamic
from repro.dynamic.queueing import (
    s0_service_moments,
    mg1_mean_queue_at_departure,
    mg1_stable,
    required_u,
    expected_time_in_system,
    ZETA4,
)

__all__ = [
    "ArrivalTrace",
    "Adversary",
    "SingleTargetAdversary",
    "UniformAdversary",
    "BurstyAdversary",
    "RotatingTargetAdversary",
    "VariableLengthAdversary",
    "check_compliance",
    "Protocol",
    "BSPgIntervalProtocol",
    "AlgorithmBProtocol",
    "LossyAlgorithmBProtocol",
    "ImmediateProtocol",
    "BatchRecord",
    "DynamicResult",
    "run_dynamic",
    "s0_service_moments",
    "mg1_mean_queue_at_departure",
    "mg1_stable",
    "required_u",
    "expected_time_in_system",
    "ZETA4",
]
