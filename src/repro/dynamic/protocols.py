"""Dynamic routing protocols (Theorems 6.5 and 6.7).

Both protocols batch the timeline into fixed intervals and serve each
interval's arrivals as one static routing problem, FIFO:

* :class:`BSPgIntervalProtocol` — Theorem 6.5's upper-bound half: intervals
  of ``max(g ceil(w/g), L)``; a batch is an h-relation served in
  ``max(g·max(x̄, ȳ), L)``.  Stable iff ``beta <= 1/g`` — the matching
  adversary (:class:`~repro.dynamic.adversary.SingleTargetAdversary` with
  ``beta > 1/g``) sinks it.

* :class:`AlgorithmBProtocol` — Theorem 6.7's Algorithm B on the BSP(m):
  intervals of ``w``; the batch from interval ``i`` is scheduled by a
  static sender (Unbalanced-Send by default) with ``n = ceil(alpha w)``
  *assumed known* (the adversary's budget), starting at
  ``max(t1, t2)`` = max(interval end, previous batch finished); the
  realized service time is the schedule's BSP(m) cost under the exponential
  penalty — including the rare overloaded runs, which is exactly what the
  M/G/1 analysis of Claim 6.8 absorbs.  Stable up to ``alpha ≈ m/a`` and
  ``beta ≈ 1/b`` in the theorem's notation (``a = 1+eps``, ``b = 1`` for
  Unbalanced-Send).
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.core.params import MachineParams
from repro.dynamic.adversary import ArrivalTrace
from repro.scheduling.analysis import evaluate_schedule
from repro.scheduling.schedule import expand_per_flit
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_prob
from repro.workloads.relations import HRelation

__all__ = [
    "Protocol",
    "BSPgIntervalProtocol",
    "AlgorithmBProtocol",
    "LossyAlgorithmBProtocol",
    "ImmediateProtocol",
]


def _batch_relation(p: int, batch: ArrivalTrace) -> HRelation:
    length = (
        batch.length
        if batch.length is not None
        else np.ones(batch.n, dtype=np.int64)
    )
    return HRelation(p=p, src=batch.src, dest=batch.dest, length=length)


class Protocol:
    """A batching protocol: fixed interval length + a service-time model."""

    def __init__(self, params: MachineParams, w: int) -> None:
        self.params = params
        self.w = w

    @property
    def interval(self) -> int:
        """Batch interval length in steps."""
        raise NotImplementedError

    def service_time(self, batch: ArrivalTrace) -> float:
        """Time to route one batch once it starts."""
        raise NotImplementedError


class BSPgIntervalProtocol(Protocol):
    """Theorem 6.5's BSP(g) protocol: route each interval's batch as a
    single h-relation costing ``max(g·max(x̄, ȳ), L)``."""

    @property
    def interval(self) -> int:
        g, L = self.params.g, self.params.L
        return int(max(g * math.ceil(self.w / g), L))

    def service_time(self, batch: ArrivalTrace) -> float:
        if batch.n == 0:
            return 0.0
        rel = _batch_relation(self.params.p, batch)
        return max(self.params.g * max(rel.x_bar, rel.y_bar), self.params.L)


class AlgorithmBProtocol(Protocol):
    """Theorem 6.7's Algorithm B on the BSP(m)."""

    def __init__(
        self,
        params: MachineParams,
        w: int,
        alpha: float,
        epsilon: float = 0.25,
        penalty: PenaltyFunction = EXPONENTIAL,
        seed: SeedLike = None,
        sender: Callable = unbalanced_send,
    ) -> None:
        super().__init__(params, w)
        params.require_m()
        self.alpha = alpha
        self.epsilon = epsilon
        self.penalty = penalty
        self.sender = sender
        self._rng = as_generator(seed)

    @property
    def interval(self) -> int:
        return int(max(self.w, self.params.L))

    def stability_frontier(self, r: float = 0.01) -> Tuple[float, float]:
        """Theorem 6.7's admissible rates ``(alpha_max, beta_max)`` for this
        protocol instance.

        With a sender completing in ``max(a·n/m, b·x̄, b·ȳ)`` w.h.p.
        (Unbalanced-Send: ``a = 1 + eps``, ``b = 1``) and slack
        ``u = floor(1.21 r w) + 1``, the theorem admits
        ``alpha <= m/a − m·u/(w·a)`` and ``beta <= 1/b − u/(w·b)``.
        """
        from repro.dynamic.queueing import required_u

        m = self.params.require_m()
        a = 1.0 + self.epsilon
        b = 1.0
        u = required_u(self.w, r)
        alpha_max = m / a - m * u / (self.w * a)
        beta_max = 1.0 / b - u / (self.w * b)
        return max(0.0, alpha_max), max(0.0, beta_max)

    def service_time(self, batch: ArrivalTrace) -> float:
        if batch.n == 0:
            return 0.0
        m = self.params.require_m()
        rel = _batch_relation(self.params.p, batch)
        # n is the adversary's interval budget — known a priori, so tau = 0.
        n_known = max(rel.n, int(math.ceil(self.alpha * self.w)))
        sched = self.sender(rel, m, self.epsilon, seed=self._rng, n=n_known)
        report = evaluate_schedule(
            sched, m=m, L=self.params.L, penalty=self.penalty
        )
        return report.superstep_cost


class LossyAlgorithmBProtocol(AlgorithmBProtocol):
    """Algorithm B over a lossy network: the stability-under-loss variant.

    Each batch is served with the reliable-transport discipline of
    :mod:`repro.faults.transport`: every flit is (re)scheduled by the
    static sender until delivered *and acknowledged*, with acks travelling
    through the same lossy network and an exponential backoff
    (``backoff_base · 2^round`` idle supersteps at ``L`` each) between
    retry rounds.  Each flit is lost independently with probability
    ``drop_rate`` per traversal, so a flit survives a round with
    probability ``(1 − drop_rate)²`` (data and ack must both arrive).

    The realized service time therefore inflates by roughly
    ``1/(1−q)² + ack traffic``; feeding the protocol to
    :func:`~repro.dynamic.simulation.run_dynamic` shows how far loss
    pushes Theorem 6.7's stability frontier in: the backlog stays bounded
    while the *effective* arrival rate ``alpha / (1−q)²`` remains inside
    the frontier, and diverges once retries push it past ``≈ m/a``.

    With ``drop_rate = 0`` the service time is exactly
    :class:`AlgorithmBProtocol`'s (same draws from the same seed).
    """

    def __init__(
        self,
        params: MachineParams,
        w: int,
        alpha: float,
        drop_rate: float = 0.0,
        epsilon: float = 0.25,
        penalty: PenaltyFunction = EXPONENTIAL,
        seed: SeedLike = None,
        sender: Callable = unbalanced_send,
        max_rounds: int = 64,
        backoff_base: int = 1,
    ) -> None:
        super().__init__(params, w, alpha, epsilon, penalty, seed, sender)
        check_prob("drop_rate", drop_rate)
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if backoff_base < 1:
            raise ValueError(f"backoff_base must be >= 1, got {backoff_base}")
        self.drop_rate = drop_rate
        self.max_rounds = max_rounds
        self.backoff_base = backoff_base

    def service_time(self, batch: ArrivalTrace) -> float:
        if batch.n == 0:
            return 0.0
        if self.drop_rate <= 0.0:
            return super().service_time(batch)
        m = self.params.require_m()
        p = self.params.p
        rel = _batch_relation(p, batch)
        src = expand_per_flit(rel.src, rel.length)
        dest = expand_per_flit(rel.dest, rel.length)
        ones = np.ones(src.size, dtype=np.int64)
        n_known = max(rel.n, int(math.ceil(self.alpha * self.w)))
        q = self.drop_rate
        total = 0.0
        pending = np.arange(src.size, dtype=np.int64)
        for r in range(self.max_rounds):
            unit = ones[: pending.size]
            sub = HRelation(p=p, src=src[pending], dest=dest[pending], length=unit)
            # round 0 is the a-priori-known budget; retries are fresh traffic
            sched = self.sender(
                sub, m, self.epsilon, seed=self._rng,
                n=n_known if r == 0 else None,
            )
            total += evaluate_schedule(
                sched, m=m, L=self.params.L, penalty=self.penalty
            ).superstep_cost
            arrived = self._rng.random(pending.size) >= q
            acked = arrived & (self._rng.random(pending.size) >= q)
            delivered = pending[arrived]
            if delivered.size:
                # ack superstep: reverse relation through the same discipline
                ack = HRelation(
                    p=p, src=dest[delivered], dest=src[delivered],
                    length=ones[: delivered.size],
                )
                ack_sched = self.sender(ack, m, self.epsilon, seed=self._rng)
                total += evaluate_schedule(
                    ack_sched, m=m, L=self.params.L, penalty=self.penalty
                ).superstep_cost
            pending = pending[~acked]
            if not pending.size:
                return total
            total += self.backoff_base * (2**r) * self.params.L
        # retry budget exhausted: the straggler flits are still pending, so
        # keep the server busy for one more full-relation service as a
        # pessimistic bound rather than silently under-charging
        return total + super().service_time(batch)


class ImmediateProtocol(Protocol):
    """The §3 "send immediately" strawman on the BSP(m).

    The paper contrasts the multiple-channel model with its own: "consider
    the algorithm where every processor attempts to send a message at every
    time step until it is successful.  In the multiple channel model, if
    more than m processors have messages to send, this algorithm never
    terminates.  In our model, the algorithm is successful after one
    (possibly very slow) step."  This protocol is that algorithm: every
    arrival is injected the moment it appears, with no staggering.  Each
    wall-clock step ``t`` with ``m_t`` injections elapses ``f_m(m_t)``
    model time — so the system always drains (our model's guarantee), but
    bursts cost the exponential penalty that Algorithm B's batching is
    designed to avoid.

    The protocol is expressed in the batching framework with interval 1:
    a "batch" is one step's arrivals and its service time is that single
    injection burst's penalty charge.
    """

    def __init__(
        self,
        params: MachineParams,
        penalty: PenaltyFunction = EXPONENTIAL,
    ) -> None:
        super().__init__(params, w=1)
        params.require_m()
        self.penalty = penalty

    @property
    def interval(self) -> int:
        return 1

    def service_time(self, batch: ArrivalTrace) -> float:
        if batch.n == 0:
            return 0.0
        m = self.params.require_m()
        flits = batch.flits
        return float(max(self.penalty.scalar(flits, m), 1.0))
