"""Adversarial Queuing Theory adversaries (Section 6.2).

An adversary injects point-to-point messages over an infinite time line,
subject to the paper's restrictions: for every window of ``L >= w``
consecutive steps it may inject at most ``ceil(alpha * L)`` messages in
total (*global arrival rate* ``alpha``), at most ``ceil(beta * L)`` from
any one source, and at most ``ceil(beta * L)`` to any one destination
(*local arrival rate* ``beta``).  The adversary is non-adaptive: it may
know the algorithm but not its coin flips.

Implemented adversaries:

* :class:`SingleTargetAdversary` — the Theorem 6.5 witness: it hammers one
  source at rate ``beta``; any locally-limited machine with ``beta > 1/g``
  drowns, while a globally-limited machine shrugs (``beta <= 1`` is enough
  there as long as ``alpha`` respects the aggregate bound ``m/a``).
* :class:`UniformAdversary` — memoryless background traffic at rate
  ``alpha`` with random endpoints (caps enforced by construction).
* :class:`BurstyAdversary` — the worst bulk pattern: the whole window
  budget ``ceil(alpha w)`` lands in the first step of each window, spread
  over sources/destinations up to the ``beta`` caps.

:func:`check_compliance` verifies a trace against the restrictions (over
all windows of size ``w``, ``2w``, ``4w``, ... — sufficient for the
step-function budgets these adversaries use).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_nonnegative

__all__ = [
    "ArrivalTrace",
    "Adversary",
    "SingleTargetAdversary",
    "UniformAdversary",
    "BurstyAdversary",
    "RotatingTargetAdversary",
    "VariableLengthAdversary",
    "check_compliance",
]


@dataclass
class ArrivalTrace:
    """Messages injected over ``[0, horizon)``: parallel arrays of
    injection step, source and destination; ``length`` defaults to all-ones
    (the paper's unit-message setting) but supports the variable-length
    extension (flits per message)."""

    p: int
    horizon: int
    t: np.ndarray
    src: np.ndarray
    dest: np.ndarray
    length: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.t = np.asarray(self.t, dtype=np.int64)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dest = np.asarray(self.dest, dtype=np.int64)
        if self.length is None:
            self.length = np.ones(self.t.size, dtype=np.int64)
        else:
            self.length = np.asarray(self.length, dtype=np.int64)
        if not (self.t.shape == self.src.shape == self.dest.shape == self.length.shape):
            raise ValueError("t, src, dest, length must have identical shapes")
        if self.t.size:
            if self.t.min() < 0 or self.t.max() >= self.horizon:
                raise ValueError("arrival times out of range")
            if self.length.min() < 1:
                raise ValueError("message lengths must be >= 1")
            order = np.argsort(self.t, kind="stable")
            self.t, self.src, self.dest, self.length = (
                self.t[order], self.src[order], self.dest[order], self.length[order]
            )

    @property
    def n(self) -> int:
        return int(self.t.size)

    @property
    def flits(self) -> int:
        """Total volume in flits."""
        return int(self.length.sum()) if self.length is not None else 0

    def window(self, start: int, end: int) -> "ArrivalTrace":
        """Messages with ``start <= t < end``.

        ``t`` is kept sorted by ``__post_init__``, so the window is a
        contiguous slice located by binary search — O(lg n + k) rather than
        an O(n) mask (``run_dynamic`` calls this once per interval).
        """
        lo, hi = np.searchsorted(self.t, (start, end), side="left")
        return ArrivalTrace(
            p=self.p,
            horizon=self.horizon,
            t=self.t[lo:hi],
            src=self.src[lo:hi],
            dest=self.dest[lo:hi],
            length=self.length[lo:hi] if self.length is not None else None,
        )


class Adversary:
    """Base class: configured with rates, produces an :class:`ArrivalTrace`."""

    def __init__(self, p: int, w: int, alpha: float, beta: float) -> None:
        check_positive("p", p)
        check_positive("w", w)
        check_nonnegative("alpha", alpha)
        check_nonnegative("beta", beta)
        if beta > alpha:
            raise ValueError(f"local rate beta={beta} cannot exceed global alpha={alpha}")
        self.p, self.w, self.alpha, self.beta = p, w, alpha, beta

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        raise NotImplementedError


class SingleTargetAdversary(Adversary):
    """All traffic leaves one source at rate ``beta`` (Theorem 6.5)."""

    def __init__(self, p: int, w: int, beta: float, source: int = 0) -> None:
        super().__init__(p, w, alpha=beta, beta=beta)
        if not (0 <= source < p):
            raise ValueError(f"source {source} out of range")
        self.source = source

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        # One message every 1/beta steps (beta <= 1): arrival times are the
        # integer parts of k / beta, destinations round-robin over the other
        # processors (respecting the per-destination cap since p >= 2).
        if self.beta <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return ArrivalTrace(self.p, horizon, empty, empty.copy(), empty.copy())
        count = int(math.floor(self.beta * horizon))
        t = np.minimum((np.arange(count) / self.beta).astype(np.int64), horizon - 1)
        # At most ceil(beta * 1) = 1 per step needs beta <= 1.
        if self.beta > 1.0:
            raise ValueError("SingleTargetAdversary supports beta <= 1")
        src = np.full(count, self.source, dtype=np.int64)
        others = np.array([i for i in range(self.p) if i != self.source] or [self.source])
        dest = others[np.arange(count) % others.size]
        return ArrivalTrace(self.p, horizon, t, src, dest)


class UniformAdversary(Adversary):
    """``ceil(alpha * w)`` messages per window, spread one per step at the
    window's start, endpoints uniform (independent per message)."""

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        rng = as_generator(seed)
        ts, srcs, dests = [], [], []
        # Cumulative targeting: exactly floor(alpha * t) injections by time
        # t, uniformly spread — then any window [a, b) receives
        # floor(alpha b) - floor(alpha a) <= ceil(alpha (b-a)) messages, so
        # *every* sliding window of every length is within budget.
        total = int(math.floor(self.alpha * horizon))
        all_steps = (
            (np.arange(total, dtype=np.float64) / self.alpha).astype(np.int64)
            if self.alpha > 0
            else np.zeros(0, dtype=np.int64)
        )
        all_steps = np.minimum(all_steps, horizon - 1)
        for w_start in range(0, horizon, self.w):
            in_window = (all_steps >= w_start) & (all_steps < w_start + self.w)
            steps = all_steps[in_window]
            k = steps.size
            src = rng.integers(0, self.p, size=k)
            dest = rng.integers(0, self.p - 1, size=k) if self.p > 1 else np.zeros(k, dtype=np.int64)
            if self.p > 1:
                dest = np.where(dest >= src, dest + 1, dest)
            cap = int(math.ceil(self.beta * self.w))
            src = self._enforce_cap(src, cap, rng)
            dest = self._enforce_cap(dest, cap, rng)
            ts.append(steps)
            srcs.append(src)
            dests.append(dest)
        t = np.concatenate(ts) if ts else np.zeros(0, dtype=np.int64)
        return ArrivalTrace(
            self.p,
            horizon,
            t,
            np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64),
            np.concatenate(dests) if dests else np.zeros(0, dtype=np.int64),
        )

    def _enforce_cap(self, ids: np.ndarray, cap: int, rng) -> np.ndarray:
        """Reassign surplus endpoints so no id exceeds ``cap`` per window."""
        ids = ids.copy()
        counts = np.bincount(ids, minlength=self.p)
        while np.any(counts > cap):
            hot = int(np.argmax(counts))
            surplus_idx = np.nonzero(ids == hot)[0][cap:]
            cold = int(np.argmin(counts))
            ids[surplus_idx] = cold
            counts = np.bincount(ids, minlength=self.p)
        return ids


class BurstyAdversary(Adversary):
    """The whole window budget arrives in the first steps of each window,
    packed onto as few sources as the ``beta`` cap allows — the maximally
    unbalanced compliant pattern."""

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        per_window = int(math.ceil(self.alpha * self.w))
        per_src = max(1, int(math.ceil(self.beta * self.w)))
        ts, srcs, dests = [], [], []
        for w_start in range(0, horizon, self.w):
            k = min(per_window, (horizon - w_start))
            # sources: fill source 0 up to its cap, then source 1, ...
            src = (np.arange(k) // per_src) % self.p
            # one message per step from each source, bursting from step 0
            step_in_src = np.arange(k) % per_src
            steps = w_start + np.minimum(step_in_src, self.w - 1)
            dest = (src + 1 + (np.arange(k) % (self.p - 1))) % self.p if self.p > 1 else src
            ts.append(steps)
            srcs.append(src)
            dests.append(dest)
        t = np.concatenate(ts) if ts else np.zeros(0, dtype=np.int64)
        return ArrivalTrace(
            self.p,
            horizon,
            t,
            np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64),
            np.concatenate(dests) if dests else np.zeros(0, dtype=np.int64),
        )


class RotatingTargetAdversary(Adversary):
    """Floods one source at rate ``beta`` like
    :class:`SingleTargetAdversary`, but rotates the flooded *source* every
    ``rotation`` windows — defeating any protocol that tries to learn and
    special-case the hot processor, while remaining AQT-compliant (each
    window still has a single rate-``beta`` source)."""

    def __init__(
        self, p: int, w: int, beta: float, rotation: int = 4
    ) -> None:
        super().__init__(p, w, alpha=beta, beta=beta)
        check_positive("rotation", rotation)
        if beta > 1.0:
            raise ValueError("RotatingTargetAdversary supports beta <= 1")
        self.rotation = rotation

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        rng = as_generator(seed)
        if self.beta <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return ArrivalTrace(self.p, horizon, empty, empty.copy(), empty.copy())
        count = int(math.floor(self.beta * horizon))
        t = np.minimum((np.arange(count) / self.beta).astype(np.int64), horizon - 1)
        period = self.rotation * self.w
        epoch = t // max(1, period)
        sources = rng.permutation(self.p)
        src = sources[epoch % self.p]
        dest = (src + 1 + (np.arange(count) % max(1, self.p - 1))) % self.p
        return ArrivalTrace(self.p, horizon, t, src.astype(np.int64), dest.astype(np.int64))


class VariableLengthAdversary(Adversary):
    """Wrap any adversary with iid geometric message lengths (mean
    ``mean_length``) — the variable-length extension of §6.1 taken to the
    dynamic setting.  Rates stay message-denominated (the AQT restrictions
    of the paper count messages); the flit volume is what the long-message
    sender must absorb."""

    def __init__(self, inner: Adversary, mean_length: float = 4.0) -> None:
        super().__init__(inner.p, inner.w, inner.alpha, inner.beta)
        check_positive("mean_length", mean_length)
        self.inner = inner
        self.mean_length = mean_length

    def generate(self, horizon: int, seed: SeedLike = None) -> ArrivalTrace:
        rng = as_generator(seed)
        base = self.inner.generate(horizon, seed=rng)
        lengths = np.maximum(
            1, rng.geometric(min(1.0, 1.0 / self.mean_length), size=base.n)
        ).astype(np.int64)
        return ArrivalTrace(
            p=base.p, horizon=base.horizon, t=base.t, src=base.src,
            dest=base.dest, length=lengths,
        )


def check_compliance(
    trace: ArrivalTrace, w: int, alpha: float, beta: float
) -> Tuple[bool, str]:
    """Check the AQT restrictions over sliding windows of size ``w, 2w, 4w,
    ...`` up to the horizon.  Returns ``(ok, reason)``.

    All window counts come from binary searches over sorted event times:
    totals search ``trace.t`` directly; per-source / per-destination counts
    search each endpoint's own (sorted) event-time segment, produced by one
    stable argsort per endpoint column.  Every window of every size is
    still checked — only the per-window rescans are gone, so the check is
    O((n + p·W) lg n) per size instead of O(W·n).
    """
    sizes = []
    size = w
    while size <= max(trace.horizon, w):
        sizes.append(size)
        size *= 2
    step = max(1, w // 2)
    t = trace.t
    # Group event times by endpoint once: a stable argsort of the endpoint
    # column keeps each group internally sorted by time (t is sorted), so
    # any window count for endpoint i is two searchsorteds on its segment.
    n_ids = trace.p
    if t.size:
        n_ids = max(n_ids, int(trace.src.max()) + 1, int(trace.dest.max()) + 1)
    t_by_src = t[np.argsort(trace.src, kind="stable")]
    t_by_dest = t[np.argsort(trace.dest, kind="stable")]
    src_off = np.concatenate(
        [[0], np.cumsum(np.bincount(trace.src, minlength=n_ids))]
    )
    dest_off = np.concatenate(
        [[0], np.cumsum(np.bincount(trace.dest, minlength=n_ids))]
    )

    def window_counts(times: np.ndarray, off: np.ndarray,
                      starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        counts = np.zeros((n_ids, starts.size), dtype=np.int64)
        for i in range(n_ids):
            seg = times[off[i]:off[i + 1]]
            if seg.size:
                counts[i] = np.searchsorted(seg, ends) - np.searchsorted(seg, starts)
        return counts

    for L in sizes:
        budget = math.ceil(alpha * L)
        local = math.ceil(beta * L)
        starts = np.arange(0, max(1, trace.horizon - L + 1), step, dtype=np.int64)
        ends = np.minimum(starts + L, trace.horizon)
        totals = np.searchsorted(t, ends) - np.searchsorted(t, starts)
        sc = window_counts(t_by_src, src_off, starts, ends)
        dc = window_counts(t_by_dest, dest_off, starts, ends)
        bad = (totals > budget) | (sc.max(axis=0) > local) | (dc.max(axis=0) > local)
        if bad.any():
            # Report the first violating window, checks in the original
            # order (total, then source cap, then destination cap).
            j = int(np.argmax(bad))
            start, end = int(starts[j]), int(ends[j])
            total = int(totals[j])
            if total > budget:
                return False, f"{total} messages in window [{start},{end}) > {budget}"
            scj, dcj = sc[:, j], dc[:, j]
            if scj.max() > local:
                return False, (
                    f"source {int(np.argmax(scj))} injects {int(scj.max())} "
                    f"in window [{start},{end}) > {local}"
                )
            return False, (
                f"dest {int(np.argmax(dcj))} receives {int(dcj.max())} "
                f"in window [{start},{end}) > {local}"
            )
    return True, "ok"
