"""M/G/1 analysis behind Theorem 6.7 / Claim 6.8.

The proof reduces Algorithm B to a FIFO queue: one arrival per ``w`` steps,
service at most ``w - u`` with probability ``1 - r``, and tail
``Pr[S > k(w-u)] <= r / k^4``.  The dominating system ``S''`` is an M/G/1
queue with Bernoulli(``r``) arrivals per step and service drawn as
``k·w/u`` with probability ``1/k^4 - 1/(k+1)^4`` — whose moments are zeta
values:

.. math::

    E[S''] = \\frac{w}{u} \\sum_{k \\ge 1} k \\left(\\frac{1}{k^4} -
             \\frac{1}{(k+1)^4}\\right)
           = \\frac{w}{u} \\sum_{k \\ge 1} \\frac{1}{k^4}
           = \\zeta(4) \\frac{w}{u} \\approx 1.0823 \\frac{w}{u}

(by Abel summation) — comfortably below the paper's quoted bound
``1.21 w/u`` (the paper bounds the series by ``sum 1/k^3 < 1.21``).
Stability needs ``r · E[S''] < 1``, i.e. ``u >= floor(1.21 r w) + 1``; the
expected time in system follows from Pollaczek–Khinchine.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.util.validation import check_positive, check_prob

__all__ = [
    "s0_service_moments",
    "mg1_mean_queue_at_departure",
    "mg1_stable",
    "required_u",
    "expected_time_in_system",
    "ZETA4",
]

#: Riemann zeta(4) = pi^4/90 — the exact first-moment constant of S''_0;
#: the paper's "1.21" is the looser zeta(3) bound on the same series.
ZETA4 = 1.0823232337111382


def s0_service_moments(w: float, u: float, kmax: int = 100_000) -> Tuple[float, float]:
    """First and second moments of the dominating service distribution
    ``S''_0`` (value ``k w/u`` w.p. ``1/k^4 - 1/(k+1)^4``).

    Returns ``(E[S], E[S^2])``.  The series converge like ``1/k^3`` and
    ``1/k^2``; ``kmax`` terms give ~1e-10 accuracy for the first moment.
    """
    check_positive("w", w)
    check_positive("u", u)
    scale = w / u
    m1 = 0.0
    m2 = 0.0
    for k in range(1, kmax + 1):
        pk = 1.0 / k**4 - 1.0 / (k + 1) ** 4
        m1 += k * pk
        m2 += k * k * pk
    return scale * m1, scale * scale * m2


def mg1_mean_queue_at_departure(r: float, mu1: float, mu2: float) -> float:
    """Average queue size at customer departure instants for an M/G/1 queue
    (arrival rate ``r``, service moments ``mu1``, ``mu2``):
    ``r mu1 + r^2 mu2 / (2 (1 - r mu1))`` — the paper's cited form."""
    check_prob("r", r)
    rho = r * mu1
    if rho >= 1.0:
        return math.inf
    return rho + (r * r * mu2) / (2.0 * (1.0 - rho))


def mg1_stable(r: float, mu1: float) -> bool:
    """M/G/1 stability: ``r · E[S] < 1``."""
    return r * mu1 < 1.0


def required_u(w: float, r: float) -> int:
    """The paper's slack requirement ``u >= floor(1.21 r w) + 1`` that makes
    the dominating queue stable."""
    check_positive("w", w)
    check_prob("r", r)
    return int(math.floor(1.21 * r * w)) + 1


def expected_time_in_system(w: float, u: float, r: float) -> float:
    """Claim 6.8's bound on the expected time an arrival spends in system:
    ``2.42 w^2/u + (2.42 w^2 r u - 0.18 w^3 r^2) / (2 u^2 - 2.42 w r u)``
    — which is ``O(w^2 / u)``.  Infinite when the queue is unstable."""
    check_positive("w", w)
    check_positive("u", u)
    check_prob("r", r)
    denom = 2.0 * u * u - 2.42 * w * r * u
    if denom <= 0:
        return math.inf
    return 2.42 * w * w / u + (2.42 * w * w * r * u - 0.18 * w**3 * r * r) / denom
