"""Infinite-time-line simulation of a batching protocol under an adversary.

The simulator plays an :class:`~repro.dynamic.adversary.ArrivalTrace`
against a :class:`~repro.dynamic.protocols.Protocol`: arrivals accumulate,
the protocol serves interval batches FIFO, and we record per-batch waiting
times plus the backlog (undelivered messages) sampled at every interval
boundary.  Stability is judged the way the paper defines it — bounded
expected backlog — operationalized as the slope of the backlog over the
second half of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dynamic.adversary import ArrivalTrace
from repro.dynamic.protocols import Protocol

__all__ = ["BatchRecord", "DynamicResult", "run_dynamic"]


@dataclass
class BatchRecord:
    """One served interval batch."""

    index: int
    n: int
    ready_at: float  # end of the arrival interval (t1 in the paper)
    start: float  # max(t1, previous finish) (t2 handling)
    finish: float

    @property
    def service(self) -> float:
        return self.finish - self.start

    @property
    def sojourn(self) -> float:
        """Time from interval end to completion — the paper's service time
        of an arrival in the equivalent FIFO system."""
        return self.finish - self.ready_at


@dataclass
class DynamicResult:
    """Outcome of a dynamic run."""

    horizon: int
    interval: int
    batches: List[BatchRecord]
    backlog_times: np.ndarray
    backlog: np.ndarray

    @property
    def max_backlog(self) -> int:
        return int(self.backlog.max()) if self.backlog.size else 0

    @property
    def final_backlog(self) -> int:
        return int(self.backlog[-1]) if self.backlog.size else 0

    @property
    def mean_sojourn(self) -> float:
        done = [b.sojourn for b in self.batches if b.n > 0]
        return float(np.mean(done)) if done else 0.0

    def backlog_slope(self) -> float:
        """Least-squares slope of backlog vs. time over the run's second
        half — ~0 for stable systems, ~(arrival - service) rate for
        unstable ones."""
        if self.backlog.size < 4:
            return 0.0
        half = self.backlog.size // 2
        t = self.backlog_times[half:].astype(np.float64)
        b = self.backlog[half:].astype(np.float64)
        t = t - t.mean()
        denom = float(np.dot(t, t))
        if denom == 0:
            return 0.0
        return float(np.dot(t, b - b.mean()) / denom)

    def is_stable(self, slope_tol: float = 1e-3) -> bool:
        """Backlog not growing (slope below ``slope_tol`` messages/step)."""
        return self.backlog_slope() <= slope_tol

    def to_dict(self) -> dict:
        """JSON-ready summary (series included as plain lists)."""
        return {
            "horizon": self.horizon,
            "interval": self.interval,
            "n_batches": len(self.batches),
            "max_backlog": self.max_backlog,
            "final_backlog": self.final_backlog,
            "mean_sojourn": self.mean_sojourn,
            "backlog_slope": self.backlog_slope(),
            "stable": self.is_stable(),
            "backlog_times": [float(t) for t in self.backlog_times],
            "backlog": [int(b) for b in self.backlog],
        }

    def render_timeline(self, width: int = 50, rows: int = 12) -> str:
        """ASCII backlog-over-time sketch."""
        if not self.backlog.size:
            return "(no samples)"
        step = max(1, self.backlog.size // rows)
        peak = max(1, int(self.backlog.max()))
        lines = [
            f"backlog over time (interval={self.interval}, "
            f"slope={self.backlog_slope():+.4f}/step, "
            f"{'stable' if self.is_stable() else 'UNSTABLE'})"
        ]
        for i in range(0, self.backlog.size, step):
            t = int(self.backlog_times[i])
            b = int(self.backlog[i])
            bar = "#" * int(round(width * b / peak))
            lines.append(f"t={t:>9} | {b:>8} {bar}")
        return "\n".join(lines)


def run_dynamic(protocol: Protocol, trace: ArrivalTrace) -> DynamicResult:
    """Serve ``trace`` with ``protocol`` and measure backlog over time.

    Interval ``i`` covers steps ``[i*I, (i+1)*I)``; its batch becomes ready
    at ``(i+1)*I`` and starts at ``max(ready, previous finish)`` — the
    paper's Algorithm B schedule.  Backlog at time ``t`` counts messages
    that have arrived by ``t`` but belong to batches not yet finished.
    """
    interval = protocol.interval
    horizon = trace.horizon
    n_intervals = max(1, -(-horizon // interval))

    # Interval boundaries resolved against the (sorted) arrival times once,
    # so each interval's batch is a contiguous slice instead of an O(n)
    # mask — empty intervals never materialize a window at all.
    edges = np.minimum(
        np.arange(n_intervals + 1, dtype=np.int64) * interval, horizon
    )
    bounds = np.searchsorted(trace.t, edges, side="left")

    def batch_slice(lo: int, hi: int) -> ArrivalTrace:
        # The slice is already sorted and in-range, so skip __post_init__'s
        # validation/sort — at interval 1 that re-validation is the whole
        # simulation cost.  Protocols treat batches as read-only.
        out = ArrivalTrace.__new__(ArrivalTrace)
        out.p, out.horizon = trace.p, trace.horizon
        out.t, out.src, out.dest = trace.t[lo:hi], trace.src[lo:hi], trace.dest[lo:hi]
        out.length = trace.length[lo:hi] if trace.length is not None else None
        return out

    batches: List[BatchRecord] = []
    finish_prev = 0.0
    for i in range(n_intervals):
        end_t = min((i + 1) * interval, horizon)
        n = int(bounds[i + 1] - bounds[i])
        ready = float(end_t)
        start = max(ready, finish_prev)
        # service_time is only invoked for non-empty batches (it may consume
        # protocol RNG state, so the call sequence must not change).
        service = (
            protocol.service_time(batch_slice(bounds[i], bounds[i + 1])) if n else 0.0
        )
        finish = start + service
        batches.append(
            BatchRecord(index=i, n=n, ready_at=ready, start=start, finish=finish)
        )
        finish_prev = finish

    # Backlog sampled at interval boundaries strictly within the horizon —
    # sampling after the last batch drains would mask instability (an
    # unstable system also empties eventually once arrivals stop).
    # Batch finish times are non-decreasing (start = max(ready, previous
    # finish)), so "messages served by t" is a prefix sum of batch sizes
    # indexed by binary search — one pass instead of a per-sample rescan.
    sample_times = np.arange(1, n_intervals + 1, dtype=np.float64) * interval
    arrivals_csum = np.searchsorted(trace.t, sample_times, side="right")
    finishes = np.array([b.finish for b in batches], dtype=np.float64)
    served_csum = np.concatenate(
        [[0], np.cumsum([b.n for b in batches], dtype=np.int64)]
    )
    served = served_csum[np.searchsorted(finishes, sample_times, side="right")]
    backlog = (arrivals_csum - served).astype(np.int64)
    return DynamicResult(
        horizon=horizon,
        interval=interval,
        batches=batches,
        backlog_times=sample_times,
        backlog=backlog,
    )
