"""Trace and metrics exporters: Chrome ``trace_event`` JSON, columnar
metrics dumps, and the terminal cost-attribution table.

Chrome trace layout
-------------------
:func:`write_chrome_trace` emits the JSON Object Format understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Spans map to
``"X"`` complete events; the two clocks become two *processes*:

* **pid 1 — model time**: spans with a model duration (``run``,
  ``superstep N``, the per-processor straggler spans, transport rounds).
  One model-time unit renders as one microsecond, so durations read
  directly as model time.  Each span ``track`` ("machine", "proc 0", …)
  is a thread, giving one Perfetto track per processor.
* **pid 2 — wall clock**: simulator-side phases (freeze/price/deliver)
  and sweep/trial spans, in real microseconds since the first span.

Span ``args`` (CostBreakdown components, fault/retry counters) appear in
the Perfetto detail pane when a slice is selected.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer
from repro.util.reporting import Table, format_float

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "cost_attribution_table",
]

#: model-time units per exported microsecond (1:1 keeps durations legible)
MODEL_UNITS_PER_US = 1.0

_MODEL_PID = 1
_WALL_PID = 2


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


def _track_tids(spans: Sequence[Span]) -> Dict[str, int]:
    """Stable track → tid mapping: 'machine' first, 'proc N' numerically,
    everything else in first-seen order."""
    tracks = []
    seen = set()
    for s in spans:
        if s.track not in seen:
            seen.add(s.track)
            tracks.append(s.track)

    def key(track: str):
        if track == "machine":
            return (0, 0, track)
        if track.startswith("proc "):
            try:
                return (1, int(track.split()[1]), track)
            except ValueError:
                pass
        return (2, 0, track)

    return {track: tid for tid, track in enumerate(sorted(tracks, key=key), start=1)}


def _ledger_counter_events(ledger, tid: int) -> List[Dict[str, Any]]:
    """Perfetto counter tracks ("C" events) from a load ledger: the
    per-superstep load and restriction-utilization series on the model
    clock, stepping at each superstep boundary."""
    cols = ledger.columns
    events: List[Dict[str, Any]] = []
    end = 0.0
    for i in range(len(cols["step"])):
        ts = float(cols["model_start"][i]) / MODEL_UNITS_PER_US
        end = (cols["model_start"][i] + cols["charge"][i]) / MODEL_UNITS_PER_US
        events.append(
            {"ph": "C", "pid": _MODEL_PID, "tid": tid, "name": "ledger load",
             "ts": ts,
             "args": {"h": float(cols["h"][i]), "volume": float(cols["volume"][i])}}
        )
        events.append(
            {"ph": "C", "pid": _MODEL_PID, "tid": tid, "name": "ledger utilization",
             "ts": ts,
             "args": {"util_local": float(cols["util_local"][i]),
                      "util_global": float(cols["util_global"][i])}}
        )
    if events:
        # close the step functions so the last superstep has a width
        events.append({"ph": "C", "pid": _MODEL_PID, "tid": tid,
                       "name": "ledger load", "ts": end,
                       "args": {"h": 0.0, "volume": 0.0}})
        events.append({"ph": "C", "pid": _MODEL_PID, "tid": tid,
                       "name": "ledger utilization", "ts": end,
                       "args": {"util_local": 0.0, "util_global": 0.0}})
    return events


def chrome_trace(tracer: Tracer, ledger=None) -> Dict[str, Any]:
    """The tracer's spans as a Chrome ``trace_event`` JSON object.

    With ``ledger`` (a :class:`~repro.obs.ledger.LoadLedger`), the dump
    also carries Perfetto counter tracks — ``ledger load`` (max
    per-processor load ``h`` and total volume) and ``ledger utilization``
    (how close the local/global restriction came to binding) — aligned
    with the superstep spans on the model-time axis.
    """
    spans = tracer.spans
    tids = _track_tids(spans)
    wall_base = min(
        (s.wall_start for s in spans if s.wall_start is not None), default=0.0
    )
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _MODEL_PID, "name": "process_name",
         "args": {"name": "model time (1 unit = 1us)"}},
        {"ph": "M", "pid": _WALL_PID, "name": "process_name",
         "args": {"name": "simulator wall clock"}},
    ]
    for pid in (_MODEL_PID, _WALL_PID):
        for track, tid in tids.items():
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": track}}
            )
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
                 "args": {"sort_index": tid}}
            )
    for s in spans:
        args = {k: _json_safe(v) for k, v in s.args.items()}
        if s.model_dur is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": _MODEL_PID,
                    "tid": tids[s.track],
                    "name": s.name,
                    "cat": s.cat or "span",
                    "ts": (s.model_start or 0.0) / MODEL_UNITS_PER_US,
                    "dur": s.model_dur / MODEL_UNITS_PER_US,
                    "args": args,
                }
            )
        if s.wall_dur is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": _WALL_PID,
                    "tid": tids[s.track],
                    "name": s.name,
                    "cat": s.cat or "span",
                    "ts": ((s.wall_start or wall_base) - wall_base) * 1e6,
                    "dur": s.wall_dur * 1e6,
                    "args": args,
                }
            )
    if ledger is not None and len(ledger):
        counter_tid = max(tids.values(), default=0) + 1
        events.append(
            {"ph": "M", "pid": _MODEL_PID, "tid": counter_tid,
             "name": "thread_name", "args": {"name": "bandwidth ledger"}}
        )
        events.extend(_ledger_counter_events(ledger, counter_tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, ledger=None) -> None:
    """Write :func:`chrome_trace` to ``path`` (open in Perfetto)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, ledger=ledger), fh, indent=1)
        fh.write("\n")


def write_metrics_json(registry: MetricsRegistry, path: str) -> None:
    """Write the registry's columnar dump to ``path``."""
    with open(path, "w") as fh:
        json.dump(registry.to_dict(), fh, indent=2, default=float)
        fh.write("\n")


# ---------------------------------------------------------------------------
# Terminal cost attribution
# ---------------------------------------------------------------------------

_COMPONENTS = ("work", "local_band", "global_band", "latency", "contention")


def _rows_from_records(records) -> List[Dict[str, Any]]:
    rows = []
    for rec in records:
        b = rec.breakdown
        row: Dict[str, Any] = {"superstep": rec.index, "cost": rec.cost}
        for c in _COMPONENTS:
            row[c] = getattr(b, c, 0.0) if b is not None else 0.0
        row["dominant"] = b.dominant() if b is not None else "?"
        rows.append(row)
    return rows


def _rows_from_tracer(tracer: Tracer) -> List[Dict[str, Any]]:
    rows = []
    for s in tracer.find(cat="superstep"):
        row: Dict[str, Any] = {
            "superstep": int(s.name.split()[-1]) if s.name.split()[-1].isdigit() else s.index,
            "cost": s.model_dur or 0.0,
        }
        for c in _COMPONENTS:
            row[c] = float(s.args.get(c, 0.0))
        row["dominant"] = s.args.get("dominant", "?")
        rows.append(row)
    return rows


def cost_attribution_table(
    source: Union[Tracer, Sequence, Any], top: Optional[int] = 10
) -> str:
    """Render "where did the model time go" for a run (or traced session).

    ``source`` is a :class:`Tracer`, a :class:`~repro.core.engine.RunResult`
    (anything with ``.records``) or a plain record sequence.  Output: the
    ``top`` most expensive supersteps with their CostBreakdown components,
    then the share of total time each dominant component accounts for.
    """
    if isinstance(source, Tracer):
        rows = _rows_from_tracer(source)
    else:
        records = getattr(source, "records", source)
        rows = _rows_from_records(records)
    total = sum(r["cost"] for r in rows) or 1.0
    ranked = sorted(rows, key=lambda r: (-r["cost"], r["superstep"]))
    if top is not None:
        ranked = ranked[:top]

    table = Table(
        ["superstep", "cost", "% of run"] + list(_COMPONENTS) + ["dominant"],
        title=f"cost attribution — {len(rows)} supersteps, total model time "
        f"{format_float(total if rows else 0.0)}",
    )
    for r in ranked:
        table.add_row(
            [r["superstep"], format_float(r["cost"]), f"{100.0 * r['cost'] / total:.1f}%"]
            + [format_float(r[c]) for c in _COMPONENTS]
            + [r["dominant"]]
        )
    by_dominant: Dict[str, float] = {}
    for r in rows:
        by_dominant[r["dominant"]] = by_dominant.get(r["dominant"], 0.0) + r["cost"]
    summary = Table(["dominant component", "model time", "share"],
                    title="dominant-component totals")
    for name, t in sorted(by_dominant.items(), key=lambda kv: -kv[1]):
        summary.add_row([name, format_float(t), f"{100.0 * t / total:.1f}%"])
    return table.render() + "\n\n" + summary.render()
