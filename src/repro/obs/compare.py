"""BENCH-file regression comparator: ``python -m repro compare A.json B.json``.

The repo commits baseline records (``BENCH_engine.json``,
``BENCH_sweep.json``) but until now had no way to diff a fresh run against
them.  :func:`compare_bench` flattens both JSON records to dotted numeric
leaves and classifies each shared key by *direction*:

``exact``
    Model-time keys (``model_time``, ``*_model_time``) — deterministic by
    construction, so **any** drift beyond float noise is a regression.
``higher``
    Throughput-like keys (``per_s``, ``speedup``, ``utilization``,
    ``hit_rate``, ``throughput``): candidate may not fall more than
    ``tolerance`` below baseline.
``lower``
    Wall-clock-like keys (``elapsed``, ``seconds``, ``_s``, ``wall``,
    ``overhead``): candidate may not rise more than ``tolerance`` above
    baseline.
``info``
    Everything else (parameters, counts): drift is reported but never
    gates.

Keys missing from the candidate are regressions (a benchmark stopped
reporting something); keys new in the candidate are informational.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.util.reporting import Table, format_float

__all__ = ["ComparisonRow", "BenchComparison", "compare_bench", "compare_files"]

#: relative float-noise floor for ``exact`` keys (JSON round-trips are
#: lossless for binary64, so this only forgives representation quirks)
EXACT_RTOL = 1e-9

_HIGHER_TOKENS = (
    "per_s", "speedup", "utilization", "hit_rate", "throughput", "amortization",
)
_LOWER_TOKENS = ("elapsed", "seconds", "wall", "overhead")


def _flatten(obj: Any, prefix: str = "", out: Dict[str, float] = None) -> Dict[str, float]:
    if out is None:
        out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            _flatten(v, f"{prefix}.{k}" if prefix else str(k), out)
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            _flatten(v, f"{prefix}[{i}]", out)
    elif isinstance(obj, bool):
        out[prefix] = float(obj)
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def classify(key: str) -> str:
    """Direction class of a flattened key (see module docstring)."""
    low = key.lower()
    if "model_time" in low:
        return "exact"
    if any(tok in low for tok in _HIGHER_TOKENS):
        return "higher"
    # "_s" counts as a seconds suffix only on a path-segment boundary
    # ("elapsed_s", "busy_s.mean"), never mid-word ("identical_to_serial")
    if any(tok in low for tok in _LOWER_TOKENS) or low.endswith("_s") or "_s." in low:
        return "lower"
    return "info"


@dataclass
class ComparisonRow:
    key: str
    direction: str
    base: float = float("nan")
    cand: float = float("nan")
    delta_rel: float = float("nan")
    status: str = "ok"  # ok | regression | drift | missing | new


@dataclass
class BenchComparison:
    baseline: str
    candidate: str
    tolerance: float
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, all_rows: bool = False) -> str:
        """Terminal table: regressions and drift always, ``ok`` rows only
        when ``all_rows``."""
        shown = [r for r in self.rows if all_rows or r.status != "ok"]
        table = Table(
            ["key", "direction", "baseline", "candidate", "delta", "status"],
            title=f"{self.baseline} vs {self.candidate} (tolerance {self.tolerance:g})",
        )
        for r in shown:
            delta = "—" if r.delta_rel != r.delta_rel else f"{100.0 * r.delta_rel:+.2f}%"
            table.add_row(
                [r.key, r.direction, format_float(r.base), format_float(r.cand),
                 delta, r.status]
            )
        checked = sum(1 for r in self.rows if r.direction != "info")
        verdict = (
            f"{len(self.regressions)} regression(s) across {checked} gated keys"
            if not self.ok
            else f"no regressions across {checked} gated keys"
        )
        if not shown:
            return f"{verdict} ({len(self.rows)} keys compared, all within tolerance)"
        return table.render() + "\n" + verdict

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (``repro compare --json``); NaNs become
        ``None`` so the output is strict JSON."""

        def _num(x: float):
            return None if x != x else x

        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "gated_keys": sum(1 for r in self.rows if r.direction != "info"),
            "regressions": len(self.regressions),
            "rows": [
                {
                    "key": r.key,
                    "direction": r.direction,
                    "baseline": _num(r.base),
                    "candidate": _num(r.cand),
                    "delta_rel": _num(r.delta_rel),
                    "status": r.status,
                }
                for r in self.rows
            ],
        }


def compare_bench(
    base: Dict[str, Any],
    cand: Dict[str, Any],
    *,
    tolerance: float = 0.05,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> BenchComparison:
    """Compare two BENCH-style dicts; see the module docstring for rules."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    flat_base = _flatten(base)
    flat_cand = _flatten(cand)
    comparison = BenchComparison(baseline_name, candidate_name, tolerance)
    for key in sorted(set(flat_base) | set(flat_cand)):
        direction = classify(key)
        row = ComparisonRow(key=key, direction=direction)
        comparison.rows.append(row)
        if key not in flat_cand:
            row.base = flat_base[key]
            row.status = "missing" if direction != "info" else "drift"
            continue
        if key not in flat_base:
            row.cand = flat_cand[key]
            row.status = "new"
            continue
        b, c = flat_base[key], flat_cand[key]
        row.base, row.cand = b, c
        scale = max(abs(b), 1e-300)
        row.delta_rel = (c - b) / scale
        if direction == "exact":
            row.status = "ok" if abs(row.delta_rel) <= EXACT_RTOL else "regression"
        elif direction == "higher":
            row.status = "regression" if row.delta_rel < -tolerance else "ok"
        elif direction == "lower":
            row.status = "regression" if row.delta_rel > tolerance else "ok"
        else:
            row.status = "ok" if abs(row.delta_rel) <= tolerance else "drift"
    return comparison


def compare_files(
    baseline_path: str, candidate_path: str, *, tolerance: float = 0.05
) -> BenchComparison:
    """Load two BENCH JSON files and compare them."""
    with open(baseline_path) as fh:
        base = json.load(fh)
    with open(candidate_path) as fh:
        cand = json.load(fh)
    return compare_bench(
        base,
        cand,
        tolerance=tolerance,
        baseline_name=baseline_path,
        candidate_name=candidate_path,
    )
