"""Unified observability: tracing, metrics, exporters, manifests, and the
bench-regression comparator.

The paper's argument is about *where time goes* — work vs. bandwidth vs.
latency vs. contention under local (``g·h``) vs. global (``f_m(m_t)``)
charging — and this package makes every layer of the reproduction answer
that question for a concrete run:

* :mod:`repro.obs.tracer` — hierarchical spans (``run > superstep >
  {freeze, price, deliver}``, ``sweep > trial > run``, transport retry
  rounds) carrying :class:`~repro.core.events.CostBreakdown` components
  and fault/retry counters; **zero overhead unless installed** (the
  default :func:`active_tracer` is ``None`` and instrumented code checks
  once per run).
* :mod:`repro.obs.metrics` — process-local counters / gauges /
  fixed-bucket histograms, mergeable across sweep workers so ``jobs=N``
  aggregates bit-identically to ``jobs=1``.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto; one track per processor on a model-time axis), columnar
  metrics dumps, and the terminal cost-attribution table.
* :mod:`repro.obs.ledger` — the per-superstep bandwidth **load ledger**:
  which restriction (local ``g·h`` vs. global ``f_m(m_t)``) bound each
  superstep's charge, recorded at the engine barrier under the same
  zero-overhead contract as the tracer.
* :mod:`repro.obs.manifest` — per-run provenance (params, seed
  expression, git SHA, penalty family, cache hit rate, artifact paths).
* :mod:`repro.obs.compare` — the ``python -m repro compare`` BENCH-file
  regression comparator.
* :mod:`repro.obs.prom` — Prometheus text exposition rendered from a
  :class:`MetricsRegistry` dump (the serve daemon's
  ``/v1/metrics?format=prom``).
* :mod:`repro.obs.top` — the ``python -m repro top`` live terminal view
  of a running serve daemon or a sweep telemetry file.

CLI: ``--trace PATH`` / ``--metrics PATH`` / ``--ledger PATH`` on
``experiment``, ``chaos`` and ``profile``; ``python -m repro ledger`` /
``python -m repro top``.  See docs/observability.md.
"""

from repro.obs.compare import BenchComparison, compare_bench, compare_files
from repro.obs.export import (
    chrome_trace,
    cost_attribution_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.ledger import (
    LedgerView,
    LoadLedger,
    active_ledger,
    binding_of,
    install_ledger,
    ledger_scope,
    ledger_table,
    uninstall_ledger,
)
from repro.obs.manifest import build_manifest, manifest_path, write_manifest
from repro.obs.metrics import (
    MetricsRegistry,
    active_metrics,
    install_metrics,
    metrics_scope,
    uninstall_metrics,
)
from repro.obs.prom import prometheus_exposition
from repro.obs.tracer import (
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "MetricsRegistry",
    "active_metrics",
    "install_metrics",
    "uninstall_metrics",
    "metrics_scope",
    "LoadLedger",
    "LedgerView",
    "active_ledger",
    "install_ledger",
    "uninstall_ledger",
    "ledger_scope",
    "ledger_table",
    "binding_of",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "cost_attribution_table",
    "prometheus_exposition",
    "build_manifest",
    "manifest_path",
    "write_manifest",
    "BenchComparison",
    "compare_bench",
    "compare_files",
]
