"""Run manifests: the provenance record that makes a number replayable.

Every ``--trace``/``--metrics`` CLI run writes a small JSON manifest next
to its artifacts (``<artifact>.manifest.json``) recording the command, its
parameters, the effective seed expression, the git SHA of the tree that
produced it, the penalty family in force, the memo-cache hit rate, and the
artifact paths.  A BENCH number plus its manifest is a complete recipe:
check out the SHA, rerun the command with the recorded seed.
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Any, Dict, Optional

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "current_git_sha",
    "build_manifest",
    "manifest_path",
    "write_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The working tree's HEAD SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def build_manifest(
    *,
    command: str,
    params: Optional[Dict[str, Any]] = None,
    seed: Any = None,
    jobs: Optional[int] = None,
    penalty: Optional[str] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict.

    ``seed`` may be an int or a ``describe_seed`` expression string; the
    memo-cache hit/miss totals are read from :mod:`repro.sweep.cache` at
    call time (process-wide counters — for a CLI run, the run itself).
    """
    from repro.sweep.cache import cache_stats

    stats = cache_stats()
    total = stats.hits + stats.misses
    manifest: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "git_sha": current_git_sha(),
        "command": command,
        "params": _json_safe(params or {}),
        "seed": _json_safe(seed),
        "jobs": jobs,
        "penalty_family": penalty,
        "cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hits / total if total else 0.0,
        },
        "trace_path": trace_path,
        "metrics_path": metrics_path,
    }
    if extra:
        manifest.update(_json_safe(extra))
    return manifest


def manifest_path(artifact_path: str) -> str:
    """Where the manifest for an artifact lives."""
    return artifact_path + ".manifest.json"


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Write a :func:`build_manifest` dict to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, default=repr)
        fh.write("\n")
