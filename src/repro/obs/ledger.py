"""Per-superstep bandwidth **load ledger** — which restriction bound?

The paper's thesis is a comparison of *restriction families*: a locally
limited machine charges each processor's traffic against ``g`` (cost
``g·h``), a globally limited one charges the whole machine's traffic
against ``m`` (cost ``f_m(m_t)``).  The :class:`~repro.core.events.
CostBreakdown` on every priced superstep already says which component won
— but only run aggregates survived until now.  The :class:`LoadLedger`
records, **inside the engine barrier**, one columnar row per superstep:

``step / run``
    superstep index and run ordinal (several runs may share one ledger —
    e.g. the reliable transport's data/ack supersteps).
``sent / read / written``
    total flit counts by channel, plus per-processor detail columns when
    ``p`` is small enough (``PROC_DETAIL_LIMIT``).
``h / volume / work``
    the pricing inputs: max per-processor load, total traffic volume
    ``n``, and the work term ``w``.
``charge`` and the five component columns
    the priced cost and its :class:`~repro.core.events.CostBreakdown`
    components — ``sum(charge) == RunResult.time`` *exactly*, by
    construction (rows are copied from the priced record, never
    recomputed).
``util_local / util_global``
    how close each restriction came to binding: component / charge
    (1.0 = that restriction determined the superstep's cost).
``binding``
    ``"local"`` when ``local_band`` dominated the charge, ``"global"``
    when ``global_band`` did, ``"neither"`` when work, latency, or
    contention won.
``model_start``
    cumulative charge before this row — the same model-time axis the
    tracer uses, so ledger rows align with superstep spans and export as
    a Perfetto counter track (:func:`repro.obs.export.chrome_trace`).

Contract: identical to :class:`~repro.obs.tracer.Tracer` — a module
global that defaults to ``None``, read once per :meth:`Machine.run`; the
disabled path costs one global read per run and model times are
bit-identical with the ledger on or off (it *records* priced costs, it
never participates in pricing).  Dumps merge in task order across sweep
backends (:meth:`LoadLedger.merge_dump`), so ``jobs=N`` ledgers are
bit-identical to ``jobs=1``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "PROC_DETAIL_LIMIT",
    "BINDINGS",
    "LoadLedger",
    "LedgerView",
    "binding_of",
    "ledger_table",
    "active_ledger",
    "install_ledger",
    "uninstall_ledger",
    "ledger_scope",
]

#: Ledger-dump schema (bumped when the JSON layout changes).
LEDGER_SCHEMA_VERSION = 1

#: Per-processor detail columns are kept only up to this processor count —
#: past it the matrices dominate the run they describe (the scalar
#: columns are always recorded).
PROC_DETAIL_LIMIT = 1024

#: The three binding verdicts, in reporting order.
BINDINGS = ("local", "global", "neither")

#: CostBreakdown components copied onto every row, declaration order.
_COMPONENTS = ("work", "local_band", "global_band", "latency", "contention")

#: Scalar columns of a ledger dump, in export order.
_SCALAR_COLUMNS = (
    "run", "step", "sent", "read", "written", "h", "volume",
    "work", "local_band", "global_band", "latency", "contention",
    "charge", "util_local", "util_global", "binding", "model_start",
)

#: Per-processor detail columns (lists of length-``p`` int lists).
_PROC_COLUMNS = ("sent_by_proc", "recv_by_proc", "read_by_proc", "write_by_proc")


def binding_of(breakdown) -> str:
    """Map a :class:`~repro.core.events.CostBreakdown` to its restriction
    family: the paper's local limit, its global limit, or neither."""
    if breakdown is None:
        return "neither"
    dominant = breakdown.dominant()
    if dominant == "local_band":
        return "local"
    if dominant == "global_band":
        return "global"
    return "neither"


class LoadLedger:
    """Columnar per-superstep load rows, recorded at the engine barrier.

    ``per_proc`` keeps the per-processor detail matrices (up to
    ``PROC_DETAIL_LIMIT`` processors); the scalar columns are always
    recorded.  All columns are plain Python lists (append-heavy); the
    NumPy views are built on demand by :meth:`column`.
    """

    def __init__(self, per_proc: bool = True) -> None:
        self.per_proc = per_proc
        self.columns: Dict[str, list] = {name: [] for name in _SCALAR_COLUMNS}
        self.proc_columns: Dict[str, list] = {name: [] for name in _PROC_COLUMNS}
        #: run metadata rows: {"run", "machine", "p", "g", "m", "L", "start"}
        self.runs: List[Dict[str, Any]] = []
        self.model_clock: float = 0.0

    def __len__(self) -> int:
        return len(self.columns["step"])

    # -- recording (engine-facing) --------------------------------------
    def begin_run(self, machine: str, params) -> int:
        """Mark the start of a run; returns the first row index of the run
        (the engine hands it to :meth:`view` for ``RunResult.ledger``)."""
        start = len(self)
        g, m, L = params.g, params.m, params.L
        self.runs.append({
            "run": len(self.runs),
            "machine": machine,
            "p": int(params.p),
            "g": None if g is None else float(g),
            "m": None if m is None else int(m),
            "L": None if L is None else float(L),
            "start": start,
        })
        return start

    def record(self, record, p: int) -> None:
        """Append one row from an already-priced superstep record.

        Called from the barrier observer after ``_price`` populated
        ``record.cost`` / ``record.breakdown`` / ``record.stats``; all
        values are copied out (arena-backed batches are reused between
        supersteps, so nothing here may alias them).
        """
        cols = self.columns
        b = record.breakdown
        stats = record.stats or {}
        charge = float(record.cost)
        sent = int(record.total_flits)
        read = int(record.n_reads)
        written = int(record.n_writes)
        cols["run"].append(len(self.runs) - 1 if self.runs else 0)
        cols["step"].append(int(record.index))
        cols["sent"].append(sent)
        cols["read"].append(read)
        cols["written"].append(written)
        cols["h"].append(float(stats.get("h", 0.0)))
        cols["volume"].append(float(stats.get("n", sent + read + written)))
        cols["work"].append(float(getattr(b, "work", 0.0)) if b is not None
                            else float(stats.get("w", 0.0)))
        for comp in _COMPONENTS[1:]:
            cols[comp].append(float(getattr(b, comp, 0.0)) if b is not None else 0.0)
        cols["charge"].append(charge)
        local = cols["local_band"][-1]
        global_ = cols["global_band"][-1]
        cols["util_local"].append(local / charge if charge > 0.0 else 0.0)
        cols["util_global"].append(global_ / charge if charge > 0.0 else 0.0)
        cols["binding"].append(binding_of(b))
        cols["model_start"].append(self.model_clock)
        self.model_clock += charge
        if self.per_proc and p <= PROC_DETAIL_LIMIT:
            pc = self.proc_columns
            pc["sent_by_proc"].append(record.sends_by_proc(p).tolist())
            pc["recv_by_proc"].append(record.recvs_by_proc(p).tolist())
            rb, wb = record.read_batch, record.write_batch
            pc["read_by_proc"].append(
                np.bincount(rb.pid, minlength=p).tolist() if rb.n else [0] * p
            )
            pc["write_by_proc"].append(
                np.bincount(wb.pid, minlength=p).tolist() if wb.n else [0] * p
            )
        elif self.per_proc:
            for name in _PROC_COLUMNS:
                self.proc_columns[name].append(None)

    def view(self, start: int, stop: Optional[int] = None) -> "LedgerView":
        """A read-only window over rows ``start..stop`` (one run's rows)."""
        return LedgerView(self, start, len(self) if stop is None else stop)

    # -- queries ---------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One scalar column as an array (``binding`` as an object array)."""
        values = self.columns[name]
        if name == "binding":
            return np.asarray(values, dtype=object)
        return np.asarray(values, dtype=np.float64)

    def binding_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in BINDINGS}
        for verdict in self.columns["binding"]:
            counts[verdict] += 1
        return counts

    def charge_by_binding(self) -> Dict[str, float]:
        """Model time attributed to each restriction family (row order —
        the sum is exactly the total charge)."""
        totals = {name: 0.0 for name in BINDINGS}
        for verdict, charge in zip(self.columns["binding"], self.columns["charge"]):
            totals[verdict] += charge
        return totals

    def total_charge(self) -> float:
        return float(sum(self.columns["charge"]))

    def summary(self) -> Dict[str, Any]:
        """The aggregate block (telemetry ``ledger`` entry, ``repro top``).

        Every value is a row-ordered sum/max over the columns, so merged
        ledgers summarize bit-identically at any job count.
        """
        cols = self.columns
        n = len(self)
        return {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "supersteps": n,
            "runs": len(self.runs),
            "charge": self.total_charge(),
            "charge_by_binding": self.charge_by_binding(),
            "binding": self.binding_counts(),
            "flits": {
                "sent": int(sum(cols["sent"])),
                "read": int(sum(cols["read"])),
                "written": int(sum(cols["written"])),
            },
            "max_h": float(max(cols["h"], default=0.0)),
            "util_local_mean": (sum(cols["util_local"]) / n) if n else 0.0,
            "util_global_mean": (sum(cols["util_global"]) / n) if n else 0.0,
        }

    # -- export / merge ---------------------------------------------------
    def to_dict(self, per_proc: bool = True) -> Dict[str, Any]:
        """JSON-ready columnar dump (``merge_dump`` consumes it)."""
        out: Dict[str, Any] = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "runs": [dict(r) for r in self.runs],
            "columns": {name: list(self.columns[name]) for name in _SCALAR_COLUMNS},
            "summary": self.summary(),
        }
        if per_proc and self.per_proc:
            out["proc_columns"] = {
                name: list(self.proc_columns[name]) for name in _PROC_COLUMNS
            }
        return out

    def merge_dump(self, dump: Dict[str, Any]) -> None:
        """Fold another ledger's :meth:`to_dict` into this one, in call
        order — the sweep runner merges worker dumps in task order, which
        is what keeps ``jobs=N`` ledgers bit-identical to ``jobs=1``.
        """
        base_run = len(self.runs)
        for run in dump.get("runs", []):
            row = dict(run)
            row["run"] = base_run + int(row.get("run", 0))
            row["start"] = len(self) + int(row.get("start", 0))
            self.runs.append(row)
        cols = dump.get("columns", {})
        n = len(cols.get("step", []))
        for name in _SCALAR_COLUMNS:
            incoming = cols.get(name)
            if incoming is None:
                incoming = [0] * n
            if name == "run":
                incoming = [base_run + int(r) for r in incoming]
            elif name == "model_start":
                # re-base onto this ledger's model-time axis
                incoming = [self.model_clock + float(v) for v in incoming]
            self.columns[name].extend(incoming)
        self.model_clock += float(sum(cols.get("charge", [])))
        if self.per_proc:
            proc = dump.get("proc_columns")
            for name in _PROC_COLUMNS:
                if proc is not None and name in proc:
                    self.proc_columns[name].extend(proc[name])
                else:
                    self.proc_columns[name].extend([None] * n)

    def to_json(self, path: str, per_proc: bool = True) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(per_proc=per_proc), fh, indent=1, default=float)
            fh.write("\n")


class LedgerView:
    """A read-only window over one run's rows of a :class:`LoadLedger`
    (what ``RunResult.ledger`` exposes)."""

    __slots__ = ("ledger", "start", "stop")

    def __init__(self, ledger: LoadLedger, start: int, stop: int) -> None:
        self.ledger = ledger
        self.start = start
        self.stop = stop

    def __len__(self) -> int:
        return self.stop - self.start

    def column(self, name: str) -> list:
        return self.ledger.columns[name][self.start:self.stop]

    def proc_column(self, name: str) -> list:
        return self.ledger.proc_columns[name][self.start:self.stop]

    @property
    def bindings(self) -> List[str]:
        return self.column("binding")

    @property
    def charges(self) -> List[float]:
        return self.column("charge")

    def total_charge(self) -> float:
        return float(sum(self.charges))

    def binding_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in BINDINGS}
        for verdict in self.bindings:
            counts[verdict] += 1
        return counts

    def charge_by_binding(self) -> Dict[str, float]:
        totals = {name: 0.0 for name in BINDINGS}
        for verdict, charge in zip(self.bindings, self.charges):
            totals[verdict] += charge
        return totals


def ledger_table(source, top: Optional[int] = None) -> str:
    """Terminal per-superstep table for a :class:`LoadLedger` (or a
    :class:`LedgerView`, or a :meth:`LoadLedger.to_dict` dump)."""
    from repro.util.reporting import Table, format_float

    if isinstance(source, dict):
        cols = source.get("columns", {})
        rows = list(zip(
            cols.get("run", []), cols.get("step", []), cols.get("h", []),
            cols.get("volume", []), cols.get("work", []),
            cols.get("local_band", []), cols.get("global_band", []),
            cols.get("charge", []), cols.get("util_local", []),
            cols.get("util_global", []), cols.get("binding", []),
        ))
        total = float(sum(cols.get("charge", [])))
        counts: Dict[str, float] = {}
        charges: Dict[str, float] = {}
        for verdict, charge in zip(cols.get("binding", []), cols.get("charge", [])):
            counts[verdict] = counts.get(verdict, 0) + 1
            charges[verdict] = charges.get(verdict, 0.0) + charge
    else:
        view = source.view(0) if isinstance(source, LoadLedger) else source
        rows = list(zip(
            view.column("run"), view.column("step"), view.column("h"),
            view.column("volume"), view.column("work"),
            view.column("local_band"), view.column("global_band"),
            view.column("charge"), view.column("util_local"),
            view.column("util_global"), view.column("binding"),
        ))
        total = view.total_charge()
        counts = dict(view.binding_counts())
        charges = view.charge_by_binding()

    table = Table(
        ["run", "step", "h", "volume", "work", "local g·h", "global f(m)",
         "charge", "util_l", "util_g", "binding"],
        title=f"load ledger — {len(rows)} supersteps, total charge "
        f"{format_float(total)}",
    )
    shown = rows if top is None else sorted(rows, key=lambda r: -r[7])[:top]
    for run, step, h, vol, work, local, global_, charge, ul, ug, verdict in shown:
        table.add_row([
            int(run), int(step), format_float(h), format_float(vol),
            format_float(work), format_float(local), format_float(global_),
            format_float(charge), f"{ul:.2f}", f"{ug:.2f}", verdict,
        ])
    summary = Table(["binding", "supersteps", "model time", "share"],
                    title="which restriction bound")
    denom = total or 1.0
    for name in BINDINGS:
        if counts.get(name):
            summary.add_row([
                name, int(counts[name]), format_float(charges.get(name, 0.0)),
                f"{100.0 * charges.get(name, 0.0) / denom:.1f}%",
            ])
    return table.render() + "\n\n" + summary.render()


# -- the process-global hook (None = ledger disabled, the default) ---------
_ACTIVE: Optional[LoadLedger] = None


def active_ledger() -> Optional[LoadLedger]:
    """The installed ledger, or ``None`` (the zero-overhead default)."""
    return _ACTIVE


def install_ledger(ledger: Optional[LoadLedger] = None) -> LoadLedger:
    """Install (and return) a ledger; subsequent runs record load rows."""
    global _ACTIVE
    _ACTIVE = ledger if ledger is not None else LoadLedger()
    return _ACTIVE


def uninstall_ledger() -> Optional[LoadLedger]:
    """Remove the active ledger (returning it) — back to the no-op default."""
    global _ACTIVE
    ledger, _ACTIVE = _ACTIVE, None
    return ledger


@contextmanager
def ledger_scope(ledger: Optional[LoadLedger] = None) -> Iterator[LoadLedger]:
    """Scope a ledger installation; restores the previous one on exit."""
    global _ACTIVE
    previous = _ACTIVE
    installed = install_ledger(ledger)
    try:
        yield installed
    finally:
        _ACTIVE = previous
