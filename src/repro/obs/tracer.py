"""Hierarchical span tracer — zero overhead unless explicitly installed.

The engine barrier, the scheduler bridge, the reliable transport and the
sweep runner all ask :func:`active_tracer` once per run (a module-global
read that returns ``None`` by default) and emit spans only when a
:class:`Tracer` has been installed — so the disabled path costs one
module-global read per run plus a handful of ``is not None`` checks per
superstep (guarded to stay within the engine-throughput budget pinned by
``benchmarks/bench_obs_overhead.py``), and model times are bit-identical
with tracing on or off (spans *record* model time, they never participate
in pricing).

Span model
----------
Spans are flat records with a parent index, forming the trees::

    run > superstep N > {freeze, price, deliver}   (engine)
    sweep > trial > run                            (sweep runner)
    round R > run                                  (reliable transport)

Each span carries **two clocks**:

* ``model_start`` / ``model_dur`` — the paper's deterministic model time.
  The tracer owns a cumulative :attr:`Tracer.model_clock` so successive
  runs (e.g. the transport's data/ack supersteps) lay out sequentially on
  one model-time axis.
* ``wall_start`` / ``wall_dur`` — ``time.perf_counter`` seconds, for the
  simulator's own phases (freeze/price/deliver) where model time does not
  apply.

``args`` holds the :class:`~repro.core.events.CostBreakdown` components,
fault/retry counters, and any other attributes — these become Chrome
``trace_event`` args in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "export_spans",
    "splice_spans",
]


class Span:
    """One traced interval; flat storage, tree structure via ``parent``."""

    __slots__ = (
        "index",
        "parent",
        "name",
        "cat",
        "track",
        "wall_start",
        "wall_dur",
        "model_start",
        "model_dur",
        "args",
    )

    def __init__(
        self,
        index: int,
        parent: Optional[int],
        name: str,
        cat: str,
        track: str,
        wall_start: Optional[float] = None,
        wall_dur: Optional[float] = None,
        model_start: Optional[float] = None,
        model_dur: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.index = index
        self.parent = parent
        self.name = name
        self.cat = cat
        self.track = track
        self.wall_start = wall_start
        self.wall_dur = wall_dur
        self.model_start = model_start
        self.model_dur = model_dur
        self.args = args if args is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        clock = (
            f"model {self.model_start}+{self.model_dur}"
            if self.model_dur is not None
            else f"wall {self.wall_dur}"
        )
        return f"Span({self.name!r}, cat={self.cat!r}, {clock})"


class Tracer:
    """Collects :class:`Span` records from every instrumented layer.

    ``begin``/``end`` maintain a stack so nested emitters (sweep > trial >
    run > superstep) agree on parentage without passing spans around;
    :meth:`add` records an already-complete span (the per-superstep and
    per-processor fast path).  ``model_clock`` is the cumulative model-time
    axis shared by every run traced into this tracer.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.model_clock: float = 0.0
        self._stack: List[int] = []

    # -- stack-scoped spans ---------------------------------------------
    def begin(self, name: str, cat: str = "", track: str = "main", **args: Any) -> Span:
        span = Span(
            index=len(self.spans),
            parent=self._stack[-1] if self._stack else None,
            name=name,
            cat=cat,
            track=track,
            wall_start=time.perf_counter(),
            args=dict(args) if args else {},
        )
        self.spans.append(span)
        self._stack.append(span.index)
        return span

    def end(self, span: Span, model_dur: Optional[float] = None, **args: Any) -> Span:
        """Close ``span`` (tolerating children left open by an exception)."""
        span.wall_dur = time.perf_counter() - span.wall_start
        if model_dur is not None:
            span.model_dur = model_dur
        if args:
            span.args.update(args)
        while self._stack:
            top = self._stack.pop()
            if top == span.index:
                break
        return span

    @contextmanager
    def span(self, name: str, cat: str = "", track: str = "main", **args: Any) -> Iterator[Span]:
        s = self.begin(name, cat, track, **args)
        try:
            yield s
        finally:
            self.end(s)

    # -- complete spans (no stack interaction beyond parent lookup) ------
    def add(
        self,
        name: str,
        cat: str = "",
        track: str = "main",
        *,
        parent: Optional[Span] = None,
        wall_start: Optional[float] = None,
        wall_dur: Optional[float] = None,
        model_start: Optional[float] = None,
        model_dur: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        span = Span(
            index=len(self.spans),
            parent=parent.index if parent is not None else (self._stack[-1] if self._stack else None),
            name=name,
            cat=cat,
            track=track,
            wall_start=wall_start,
            wall_dur=wall_dur,
            model_start=model_start,
            model_dur=model_dur,
            args=args if args is not None else {},
        )
        self.spans.append(span)
        return span

    # -- queries ----------------------------------------------------------
    def find(self, cat: Optional[str] = None, name: Optional[str] = None) -> List[Span]:
        """Spans matching a category and/or exact name, record order."""
        out = self.spans
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        if name is not None:
            out = [s for s in out if s.name == name]
        return list(out)

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def __len__(self) -> int:
        return len(self.spans)


# -- worker-span shipping (sweep backends, serve process engine) -----------

def export_spans(tracer: Tracer) -> Dict[str, Any]:
    """A picklable dump of a scratch tracer's spans for shipping from a
    worker process back to the parent (:func:`splice_spans` re-attaches
    them).  Spans become plain tuples; clocks stay worker-relative — the
    parent re-bases both axes when splicing."""
    return {
        "spans": [
            (s.parent, s.name, s.cat, s.track, s.wall_start, s.wall_dur,
             s.model_start, s.model_dur, s.args)
            for s in tracer.spans
        ],
        "model_clock": tracer.model_clock,
    }


def splice_spans(
    tracer: Tracer,
    dump: Dict[str, Any],
    parent: Optional[Span] = None,
    wall_offset: float = 0.0,
    model_offset: Optional[float] = None,
) -> List[Span]:
    """Graft an :func:`export_spans` dump into ``tracer`` under ``parent``.

    Worker-relative wall clocks are shifted by ``wall_offset`` (seconds on
    the parent's ``perf_counter`` axis); model clocks are re-based to
    ``model_offset`` (default: the parent tracer's current
    ``model_clock``, which then advances by the dump's total model time so
    successive trials lay out sequentially, exactly as a serial run
    would).  Returns the new spans in dump order.
    """
    if model_offset is None:
        model_offset = tracer.model_clock
    base = len(tracer.spans)
    parent_index = parent.index if parent is not None else None
    out: List[Span] = []
    for rel_parent, name, cat, track, ws, wd, ms, md, args in dump.get("spans", ()):
        span = Span(
            index=len(tracer.spans),
            parent=base + rel_parent if rel_parent is not None else parent_index,
            name=name,
            cat=cat,
            track=track,
            wall_start=None if ws is None else ws + wall_offset,
            wall_dur=wd,
            model_start=None if ms is None else ms + model_offset,
            model_dur=md,
            args=dict(args) if args else {},
        )
        tracer.spans.append(span)
        out.append(span)
    tracer.model_clock = model_offset + float(dump.get("model_clock", 0.0))
    return out


# -- the process-global hook (None = tracing disabled, the default) -------
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (the zero-overhead default)."""
    return _ACTIVE


def install_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) a tracer; subsequent runs emit spans into it."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def uninstall_tracer() -> Optional[Tracer]:
    """Remove the active tracer (returning it) — runs go back to no-op."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope a tracer installation; restores the previous one on exit."""
    global _ACTIVE
    previous = _ACTIVE
    installed = install_tracer(tracer)
    try:
        yield installed
    finally:
        _ACTIVE = previous
