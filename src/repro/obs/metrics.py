"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.  Like
the tracer (:mod:`repro.obs.tracer`), nothing is recorded unless a
registry is installed via :func:`install_metrics` / :func:`metrics_scope`
— the default :func:`active_metrics` is ``None`` and instrumented code
guards on that once per run.

The registry is **mergeable**: :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.delta` let a sweep worker report only what its
trials added, and :meth:`MetricsRegistry.merge` folds those deltas into
the parent in task order — counters and histogram buckets are sums (order
independent) and gauges are last-write-wins (task order), so ``jobs=N``
aggregates bit-identically to ``jobs=1``.

Histograms use *fixed* bucket bounds chosen at creation (default: decade
bounds suited to model-time costs).  Fixed bounds are what makes two
histograms from different processes mergeable by plain elementwise
addition of counts.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "install_metrics",
    "uninstall_metrics",
    "metrics_scope",
    "DEFAULT_BUCKETS",
]

#: Metrics-dump schema (bumped when the JSON layout changes).
METRICS_SCHEMA_VERSION = 1

#: Decade bounds covering model-time costs from O(1) supersteps to the
#: multi-million-slot schedules of the scheduling layer.
DEFAULT_BUCKETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)


class Counter:
    """Monotonic float counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound histogram: ``len(bounds)+1`` buckets, the last open.

    Bucket ``i`` counts observations ``v <= bounds[i]``; the final bucket
    counts everything above the largest bound.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: List[float] = sorted(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot-delta-merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ----------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        return h

    # -- export -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Columnar JSON-ready dump of every instrument."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self._histograms.items())},
        }

    # -- worker-side deltas / parent-side merge ---------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Opaque state capture, to diff against after running trials."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "histograms": {k: list(h.counts) for k, h in self._histograms.items()},
            "hist_sums": {k: (h.total, h.count) for k, h in self._histograms.items()},
        }

    def delta(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """What was recorded since ``before`` (a :meth:`snapshot`), as a
        picklable dump suitable for :meth:`merge`.  Gauges carry their
        current value (last-write-wins under task-ordered merging)."""
        counters = {}
        for k, c in self._counters.items():
            d = c.value - before["counters"].get(k, 0.0)
            if d:
                counters[k] = d
        histograms = {}
        for k, h in self._histograms.items():
            prev = before["histograms"].get(k, [0] * len(h.counts))
            counts = [a - b for a, b in zip(h.counts, prev)]
            if any(counts):
                p_total, p_count = before["hist_sums"].get(k, (0.0, 0))
                histograms[k] = {
                    "bounds": list(h.bounds),
                    "counts": counts,
                    "sum": h.total - p_total,
                    "count": h.count - p_count,
                }
        return {
            "counters": counters,
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": histograms,
        }

    def merge(self, dump: Dict[str, Any]) -> None:
        """Fold a :meth:`delta` (or another registry's dump) into this one."""
        for k, v in dump.get("counters", {}).items():
            self.counter(k).inc(v)
        for k, v in dump.get("gauges", {}).items():
            self.gauge(k).set(v)
        for k, spec in dump.get("histograms", {}).items():
            h = self.histogram(k, spec["bounds"])
            if h.bounds != [float(b) for b in spec["bounds"]]:
                raise ValueError(
                    f"histogram {k!r} bucket bounds differ; fixed bounds are "
                    "required for cross-process merging"
                )
            for i, c in enumerate(spec["counts"]):
                h.counts[i] += c
            h.total += spec["sum"]
            h.count += spec["count"]


# -- the process-global hook (None = metrics disabled, the default) -------
_ACTIVE: Optional[MetricsRegistry] = None


def active_metrics() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` (the zero-overhead default)."""
    return _ACTIVE


def install_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a registry; instrumented code records into it."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def uninstall_metrics() -> Optional[MetricsRegistry]:
    """Remove the active registry (returning it) — back to the no-op default."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


@contextmanager
def metrics_scope(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope a registry installation; restores the previous one on exit."""
    global _ACTIVE
    previous = _ACTIVE
    installed = install_metrics(registry)
    try:
        yield installed
    finally:
        _ACTIVE = previous
