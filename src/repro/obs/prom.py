"""Prometheus text exposition (format 0.0.4) from a metrics dump.

The serve daemon's ``GET /v1/metrics?format=prom`` renders its
:class:`~repro.obs.metrics.MetricsRegistry` snapshot through
:func:`prometheus_exposition` so a stock Prometheus/Grafana stack can
scrape a running daemon with zero extra dependencies.  Mapping:

* counters → ``TYPE counter`` with a ``_total`` name suffix;
* gauges → ``TYPE gauge``;
* histograms → ``TYPE histogram`` with *cumulative* ``le`` buckets (the
  registry stores non-cumulative bucket counts), a ``+Inf`` bucket, and
  the ``_sum`` / ``_count`` series Prometheus expects.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and other punctuation become
underscores, so ``serve.requests.accepted`` scrapes as
``serve_requests_accepted_total``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

from repro.obs.metrics import MetricsRegistry

__all__ = ["PROM_CONTENT_TYPE", "prometheus_exposition"]

#: Content-Type for the text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: Union[int, float]) -> str:
    f = float(value)
    if f != f:  # NaN
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_exposition(source: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """Render a registry (or its :meth:`~repro.obs.metrics.MetricsRegistry.
    to_dict` dump) as Prometheus text exposition, ending with a newline."""
    dump = source.to_dict() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for name in sorted(dump.get("counters", {})):
        value = dump["counters"][name]
        pname = _sanitize(name)
        if not pname.endswith("_total"):
            pname += "_total"
        lines.append(f"# HELP {pname} Counter {name!r} from the repro metrics registry.")
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(value)}")
    for name in sorted(dump.get("gauges", {})):
        value = dump["gauges"][name]
        pname = _sanitize(name)
        lines.append(f"# HELP {pname} Gauge {name!r} from the repro metrics registry.")
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(value)}")
    for name in sorted(dump.get("histograms", {})):
        hist = dump["histograms"][name]
        pname = _sanitize(name)
        lines.append(
            f"# HELP {pname} Histogram {name!r} from the repro metrics registry."
        )
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        bounds = list(hist.get("bounds", ()))
        counts = list(hist.get("counts", ()))
        for bound, count in zip(bounds, counts):
            cumulative += int(count)
            lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        total = int(hist.get("count", sum(int(c) for c in counts)))
        lines.append(f'{pname}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{pname}_sum {_fmt(hist.get('sum', 0.0))}")
        lines.append(f"{pname}_count {total}")
    return "\n".join(lines) + "\n"
