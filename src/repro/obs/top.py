"""``python -m repro top`` — a live terminal view of the serving/sweep
stack, stdlib-curses only.

Two attachment modes:

* **daemon** (``--url http://host:port`` or ``--uds /path.sock``):
  :class:`DaemonSource` polls ``/v1/healthz`` + ``/v1/metrics`` and rides
  the ``/v1/events`` long-poll for admission-round events — window size
  against the bandwidth budget ``m``, overloaded slots, queue depth,
  cache hits, shed/retry counters.  Read-only: it submits nothing, so
  attaching to a live daemon never perturbs results.
* **telemetry file** (``--telemetry sweep.json``): :class:`FileSource`
  tails a :meth:`repro.sweep.SweepResult.to_json` dump (re-reading on
  change), rendering utilization, per-worker busy/steal columns, error
  counters, and the ledger block when the sweep recorded one.

The rendering core is :func:`render_frame` — a pure function from a
frame dict to text lines — so tests (and ``--once``, which prints a
single frame to stdout and exits) never need a terminal.  The curses
loop only handles keys (``q`` quits) and repaints.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "DaemonSource",
    "FileSource",
    "render_frame",
    "run_top",
]

#: recent admission rounds kept for the in-frame history columns
ROUND_HISTORY = 12

_BAR = "█"


def _bar(value: float, limit: float, width: int = 20) -> str:
    """A bounded horizontal bar; overflow is marked with ``+``."""
    if limit <= 0:
        return ""
    frac = value / limit
    filled = int(min(1.0, frac) * width)
    bar = _BAR * filled + "·" * (width - filled)
    return bar + ("+" if frac > 1.0 else " ")


def _fmt_count(value: Any) -> str:
    try:
        f = float(value)
    except (TypeError, ValueError):
        return str(value)
    if f == int(f):
        return str(int(f))
    return f"{f:.3g}"


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


class DaemonSource:
    """Frames from a running daemon: healthz + metrics polls, plus the
    ``/v1/events`` cursor for admission rounds."""

    def __init__(self, client) -> None:
        self.client = client
        self.cursor = 0
        self.rounds: List[Dict[str, Any]] = []
        self.budget_m: Optional[int] = None
        self.last_error: Optional[str] = None

    def _refresh_budget(self) -> None:
        if self.budget_m is None:
            try:
                self.budget_m = int(self.client.stats()["admission"]["budget_m"])
            except Exception:  # noqa: BLE001 - stats is advisory
                self.budget_m = None

    def frame(self, poll_s: float = 0.0) -> Dict[str, Any]:
        try:
            health = self.client.healthz()
            metrics = self.client.metrics()
            events, self.cursor = self.client.events(
                since=self.cursor, timeout=poll_s
            )
            self.last_error = None
        except Exception as exc:  # noqa: BLE001 - shown in the frame
            self.last_error = f"{type(exc).__name__}: {exc}"
            return {
                "source": self.describe(),
                "status": "unreachable",
                "error": self.last_error,
            }
        self._refresh_budget()
        for e in events:
            if e.get("kind") == "round":
                self.rounds.append(e)
        self.rounds = self.rounds[-ROUND_HISTORY:]
        counters = dict(metrics.get("counters", {}))
        return {
            "source": self.describe(),
            "status": health.get("status", "?"),
            "queue_depth": health.get("queue_depth", 0),
            "in_flight": health.get("in_flight", 0),
            "outstanding": health.get("outstanding", 0),
            "budget_m": self.budget_m,
            "counters": counters,
            "rounds": list(self.rounds),
        }

    def describe(self) -> str:
        if getattr(self.client, "uds", None):
            return f"daemon uds:{self.client.uds}"
        return f"daemon {self.client.url}"


class FileSource:
    """Frames from a sweep telemetry JSON file, re-read when it changes."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._mtime: Optional[float] = None
        self._data: Optional[Dict[str, Any]] = None
        self.last_error: Optional[str] = None

    def frame(self, poll_s: float = 0.0) -> Dict[str, Any]:
        try:
            mtime = os.path.getmtime(self.path)
            if self._data is None or mtime != self._mtime:
                with open(self.path) as fh:
                    self._data = json.load(fh)
                self._mtime = mtime
            self.last_error = None
        except (OSError, json.JSONDecodeError) as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            return {
                "source": f"file {self.path}",
                "status": "unreadable",
                "error": self.last_error,
            }
        d = self._data
        backend = d.get("backend") or {}
        return {
            "source": f"file {self.path}",
            "status": d.get("name", "sweep"),
            "trials": d.get("trials"),
            "elapsed_s": d.get("elapsed_s"),
            "utilization": d.get("utilization"),
            "jobs": d.get("jobs"),
            "counters": {
                "cache.hits": (d.get("cache") or {}).get("hits", 0),
                "cache.misses": (d.get("cache") or {}).get("misses", 0),
                "errors.skipped": (d.get("errors") or {}).get("skipped", 0),
                "errors.retries": (d.get("errors") or {}).get("retries", 0),
            },
            "backend": backend,
            "workers": backend.get("busy_s_per_worker") or {},
            "steals": backend.get("steals", 0),
            "worker_deaths": backend.get("worker_deaths", 0),
            "ledger": d.get("ledger"),
        }


# ---------------------------------------------------------------------------
# rendering (pure)
# ---------------------------------------------------------------------------


def _render_daemon(frame: Dict[str, Any], lines: List[str]) -> None:
    lines.append(
        f"  queue {frame.get('queue_depth', 0):>4}   in-flight "
        f"{frame.get('in_flight', 0):>3}   outstanding "
        f"{frame.get('outstanding', 0):>3}"
    )
    budget = frame.get("budget_m")
    rounds = frame.get("rounds") or []
    if rounds:
        lines.append("")
        header = "  round   window"
        if budget:
            header += f" (vs m={budget})"
        header += "  over  queue  reqs  cache"
        lines.append(header)
        for e in rounds:
            window = e.get("window", 0)
            bar = _bar(float(window), float(budget), 16) if budget else ""
            lines.append(
                f"  #{e.get('seq', 0):<5} {window:>6}  {bar} "
                f"{e.get('overloaded_slots', 0):>4}  {e.get('queue_depth', 0):>5}"
                f"  {e.get('requests', 0):>4}  {e.get('cache_hits', 0):>5}"
            )
    counters = frame.get("counters") or {}
    interesting = [
        ("ok", "serve.requests.ok"),
        ("failed", "serve.requests.failed"),
        ("submitted", "serve.requests.submitted"),
        ("retries", "serve.retry.attempts"),
        ("crashes", "serve.worker.crashes"),
        ("cache hit", "serve.cache.hits"),
        ("cache miss", "serve.cache.misses"),
    ]
    shed = {
        k.split("serve.shed.", 1)[1]: v
        for k, v in counters.items()
        if k.startswith("serve.shed.") and v
    }
    lines.append("")
    lines.append(
        "  " + "   ".join(
            f"{label} {_fmt_count(counters.get(key, 0))}"
            for label, key in interesting
        )
    )
    if shed:
        lines.append(
            "  shed: " + "  ".join(
                f"{k}={_fmt_count(v)}" for k, v in sorted(shed.items())
            )
        )


def _render_sweep(frame: Dict[str, Any], lines: List[str]) -> None:
    util = frame.get("utilization")
    lines.append(
        f"  trials {frame.get('trials', '?')}   jobs {frame.get('jobs', '?')}"
        f"   elapsed {frame.get('elapsed_s', 0.0):.3f}s"
        + (f"   utilization {util:.2f} {_bar(util, 1.0, 16)}" if util is not None else "")
    )
    workers = frame.get("workers") or {}
    if workers:
        busiest = max(workers.values()) or 1.0
        lines.append("")
        lines.append(f"  worker        busy_s          steals={frame.get('steals', 0)}"
                     f"  deaths={frame.get('worker_deaths', 0)}")
        for pid, busy in sorted(workers.items(), key=lambda kv: str(kv[0])):
            lines.append(
                f"  {str(pid):>8}  {float(busy):>8.3f}  {_bar(float(busy), busiest, 16)}"
            )
    counters = frame.get("counters") or {}
    lines.append("")
    lines.append(
        "  " + "   ".join(f"{k} {_fmt_count(v)}" for k, v in sorted(counters.items()))
    )
    ledger = frame.get("ledger")
    if ledger:
        by = ledger.get("charge_by_binding") or {}
        total = ledger.get("charge") or 0.0
        lines.append("")
        lines.append(
            f"  ledger: {ledger.get('supersteps', 0)} supersteps, "
            f"total charge {total:g}, max h {ledger.get('max_h', 0):g}"
        )
        for name in ("local", "global", "neither"):
            charge = float(by.get(name, 0.0))
            share = charge / total if total else 0.0
            lines.append(
                f"    {name:>7}  {charge:>10g}  {_bar(charge, total or 1.0, 16)} "
                f"{share * 100:5.1f}%"
            )
        lines.append(
            f"    util_local mean {ledger.get('util_local_mean', 0.0):.2f}"
            f"   util_global mean {ledger.get('util_global_mean', 0.0):.2f}"
        )


def render_frame(frame: Dict[str, Any], width: int = 80) -> List[str]:
    """Pure: one frame dict → display lines (no curses, no I/O)."""
    lines: List[str] = []
    stamp = time.strftime("%H:%M:%S")
    lines.append(f"repro top — {frame.get('source', '?')}  "
                 f"[{frame.get('status', '?')}]  {stamp}")
    lines.append("─" * min(width, 72))
    if frame.get("error"):
        lines.append(f"  {frame['error']}")
        lines.append("  (retrying…)")
        return lines
    if "rounds" in frame or "queue_depth" in frame:
        _render_daemon(frame, lines)
    else:
        _render_sweep(frame, lines)
    return [line[:width] for line in lines]


# ---------------------------------------------------------------------------
# the loop
# ---------------------------------------------------------------------------


def make_source(
    url: Optional[str] = None,
    uds: Optional[str] = None,
    telemetry: Optional[str] = None,
):
    """Build the frame source the CLI flags describe (exactly one)."""
    chosen = [x for x in (url, uds, telemetry) if x]
    if len(chosen) != 1:
        raise ValueError("pass exactly one of --url, --uds, --telemetry")
    if telemetry is not None:
        return FileSource(telemetry)
    from repro.serve.client import ServeClient

    client = ServeClient(url) if url is not None else ServeClient(uds=uds)
    return DaemonSource(client)


def run_top(
    source,
    interval: float = 1.0,
    once: bool = False,
    max_frames: Optional[int] = None,
) -> int:
    """Drive the top loop.  ``once`` renders a single frame to stdout
    (no curses — usable in pipes and tests); otherwise a curses screen
    repaints every ``interval`` seconds until ``q``.  ``max_frames``
    bounds the curses loop (tests/timeboxing)."""
    if once:
        for line in render_frame(source.frame(poll_s=0.0)):
            print(line)
        return 0

    import curses

    def loop(stdscr) -> None:
        curses.curs_set(0)
        stdscr.nodelay(True)
        stdscr.timeout(int(interval * 1000))
        frames = 0
        while True:
            frame = source.frame(poll_s=min(interval, 5.0))
            height, width = stdscr.getmaxyx()
            stdscr.erase()
            for y, line in enumerate(render_frame(frame, width=width - 1)):
                if y >= height - 1:
                    break
                stdscr.addstr(y, 0, line)
            stdscr.refresh()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return
            try:
                key = stdscr.getch()
            except curses.error:  # pragma: no cover - terminal quirk
                key = -1
            if key in (ord("q"), ord("Q")):
                return

    curses.wrapper(loop)
    return 0
