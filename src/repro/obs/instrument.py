"""Span/metric construction for the engine barrier — the slow-path half.

The engine keeps its hot loop free of observability logic: when (and only
when) a tracer or registry is active it imports this module once per run
and calls :func:`make_superstep_observer`, whose closure does all span and
counter construction.  Nothing here is imported when observability is
disabled, and nothing here feeds back into pricing — model time is read
from the already-priced :class:`~repro.core.events.SuperstepRecord`.

Per-superstep output (tracer active):

* one ``superstep N`` span on the ``machine`` track — model clock
  positioned, carrying the full :class:`~repro.core.events.CostBreakdown`
  plus the pricing stats (incl. ``fault_*`` counters) as args;
* wall-clock child spans on the ``engine`` track: three phase spans
  ``freeze`` / ``price`` / ``deliver`` on the legacy gather path
  (``price`` covers pricing, ``deliver`` covers fault injection +
  delivery + audit), or a single ``fused_superstep`` span covering the
  whole barrier on the fused arena path (the phases are one pass there;
  the superstep span's :class:`~repro.core.events.CostBreakdown` args
  reconcile identically in both modes);
* one span per *active* processor on its own ``proc N`` track, whose model
  duration is that processor's local bound ``max(work, sent, recvs)`` —
  the straggler view that makes imbalance visible in Perfetto.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = ["make_superstep_observer", "PROC_TRACK_LIMIT"]

#: Per-processor spans are emitted only up to this processor count — past
#: it a trace viewer is unusable anyway and the span volume dominates.
PROC_TRACK_LIMIT = 1024

#: Pricing-stat keys copied onto superstep spans when present.
_STAT_KEYS = (
    "h",
    "w",
    "n",
    "c_m",
    "span",
    "overloaded_slots",
    "max_slot_load",
    "kappa",
    "c_m_paper",
    "fault_injected",
    "fault_delivered",
    "fault_dropped",
    "fault_duplicated",
    "fault_corrupted",
    "fault_reordered",
)


def _superstep_args(record) -> dict:
    b = record.breakdown
    args = {
        "cost": record.cost,
        "messages": record.n_messages,
        "flits": record.total_flits,
    }
    if b is not None:
        args.update(
            work=b.work,
            local_band=b.local_band,
            global_band=b.global_band,
            latency=b.latency,
            contention=b.contention,
            dominant=b.dominant(),
        )
    stats = record.stats or {}
    for key in _STAT_KEYS:
        if key in stats:
            args[key] = stats[key]
    return args


def make_superstep_observer(
    tracer: Optional[Tracer],
    metrics: Optional[MetricsRegistry],
    machine,
    p: int,
    run_span: Optional[Span],
    fused: bool = False,
    ledger=None,
) -> Callable:
    """Build the per-superstep callback the engine invokes at each barrier.

    The callback signature is ``observe(record, t_freeze, t_price,
    t_deliver, t_end)`` where the ``t_*`` values are ``perf_counter``
    stamps at each phase boundary (freeze = record assembly start).
    With ``fused=True`` the three phase spans collapse into one
    ``fused_superstep`` span spanning the whole barrier.  ``ledger`` is
    an optional :class:`~repro.obs.ledger.LoadLedger` recording one load
    row per superstep from the already-priced record.
    """
    emit_procs = tracer is not None and p <= PROC_TRACK_LIMIT

    def observe(record, t_freeze: float, t_price: float, t_deliver: float, t_end: float) -> None:
        if tracer is not None:
            model_start = tracer.model_clock
            ss = tracer.add(
                f"superstep {record.index}",
                cat="superstep",
                track="machine",
                parent=run_span,
                wall_start=t_freeze,
                wall_dur=t_end - t_freeze,
                model_start=model_start,
                model_dur=record.cost,
                args=_superstep_args(record),
            )
            if fused:
                tracer.add("fused_superstep", cat="phase", track="engine",
                           parent=ss, wall_start=t_freeze,
                           wall_dur=t_end - t_freeze)
            else:
                tracer.add("freeze", cat="phase", track="engine", parent=ss,
                           wall_start=t_freeze, wall_dur=t_price - t_freeze)
                tracer.add("price", cat="phase", track="engine", parent=ss,
                           wall_start=t_price, wall_dur=t_deliver - t_price)
                tracer.add("deliver", cat="phase", track="engine", parent=ss,
                           wall_start=t_deliver, wall_dur=t_end - t_deliver)
            if emit_procs:
                sends = record.sends_by_proc(p)
                recvs = record.recvs_by_proc(p)
                work = record.work
                for pid in range(p):
                    w = float(work[pid]) if pid < len(work) else 0.0
                    s, r = int(sends[pid]), int(recvs[pid])
                    local = max(w, float(s), float(r))
                    if local <= 0.0:
                        continue  # idle processor: no span, keep traces lean
                    tracer.add(
                        f"s{record.index}",
                        cat="proc",
                        track=f"proc {pid}",
                        parent=ss,
                        model_start=model_start,
                        model_dur=local,
                        args={"work": w, "sent": s, "recv": r},
                    )
            tracer.model_clock = model_start + record.cost
        if ledger is not None:
            ledger.record(record, p)
        if metrics is not None:
            metrics.counter("engine.supersteps").inc()
            metrics.counter("engine.messages").inc(record.n_messages)
            metrics.counter("engine.flits").inc(record.total_flits)
            metrics.counter("engine.reads").inc(record.n_reads)
            metrics.counter("engine.writes").inc(record.n_writes)
            metrics.counter("engine.model_time").inc(record.cost)
            metrics.histogram("engine.superstep_cost").observe(record.cost)

    return observe
