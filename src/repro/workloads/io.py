"""Saving and loading workloads — reproducible experiment inputs.

An :class:`~repro.workloads.relations.HRelation` round-trips through a
single ``.npz`` file, so expensive generated workloads (or externally
captured communication traces) can be pinned and shared between runs.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.workloads.relations import HRelation

__all__ = ["save_relation", "load_relation"]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 1


def save_relation(path: PathLike, rel: HRelation) -> None:
    """Write a relation to ``path`` (``.npz``; compressed)."""
    np.savez_compressed(
        path,
        version=np.asarray([_FORMAT_VERSION]),
        p=np.asarray([rel.p]),
        src=rel.src,
        dest=rel.dest,
        length=rel.length,
    )


def load_relation(path: PathLike) -> HRelation:
    """Read a relation written by :func:`save_relation`.

    Validates the format version and re-runs the :class:`HRelation`
    invariant checks, so a corrupted or hand-edited file fails loudly.
    """
    with np.load(path) as data:
        missing = {"version", "p", "src", "dest", "length"} - set(data.files)
        if missing:
            raise ValueError(f"not a relation file (missing {sorted(missing)})")
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported relation file version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        return HRelation(
            p=int(data["p"][0]),
            src=data["src"],
            dest=data["dest"],
            length=data["length"],
        )
