"""Application-shaped workloads.

Section 3 lists the classical consumers of total-exchange-style routing —
matrix transposition, 2-D FFT, HPF array remapping — and Section 6 the
irregular producers of skew (joins, nested parallelism, nearly-sorted
inputs).  This module generates the corresponding h-relations so examples
and benchmarks can speak the application's language instead of raw message
counts.
"""

from __future__ import annotations

import numpy as np

from repro.util.intmath import ceil_div
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = [
    "matrix_transpose_relation",
    "block_remap_relation",
    "task_spawn_relation",
    "relation_to_trace",
]


def matrix_transpose_relation(p: int, rows: int, cols: int) -> HRelation:
    """Transposing a ``rows x cols`` matrix block-row-distributed over ``p``
    processors (processor ``i`` owns rows ``[i·rows/p, (i+1)·rows/p)``; the
    transpose wants block-rows of the transposed matrix, i.e. block-columns
    of the original).  Entry ``(r, c)`` moves from ``owner_row(r)`` to
    ``owner_row(c)`` — aggregated into one message per (source, destination,
    block) with length = the number of entries moving between that pair.

    This is the balanced total exchange in disguise: every pair exchanges
    ``~rows·cols/p²`` entries, so locally- and globally-limited machines
    tie — the classic regular workload against which the paper's skewed
    ones contrast.
    """
    check_positive("p", p)
    check_positive("rows", rows)
    check_positive("cols", cols)
    row_block = ceil_div(rows, p)
    col_block = ceil_div(cols, p)
    srcs, dests, lens = [], [], []
    for i in range(p):  # owner of original rows
        r_lo, r_hi = i * row_block, min((i + 1) * row_block, rows)
        if r_lo >= r_hi:
            continue
        for j in range(p):  # owner of transposed rows = original columns
            c_lo, c_hi = j * col_block, min((j + 1) * col_block, cols)
            if c_lo >= c_hi or i == j:
                continue
            count = (r_hi - r_lo) * (c_hi - c_lo)
            if count > 0:
                srcs.append(i)
                dests.append(j)
                lens.append(count)
    return HRelation(
        p=p,
        src=np.asarray(srcs, dtype=np.int64),
        dest=np.asarray(dests, dtype=np.int64),
        length=np.asarray(lens, dtype=np.int64),
    )


def block_remap_relation(p: int, n_elements: int, from_block: int, to_block: int) -> HRelation:
    """HPF-style array remapping: an ``n_elements`` array distributed
    cyclically with block size ``from_block`` is redistributed to block
    size ``to_block``.  Produces one message per (source, destination) pair
    with the number of elements that change owners — regular but not
    uniform, the remapping pattern the paper's Section 3 cites."""
    check_positive("p", p)
    check_positive("n_elements", n_elements)
    check_positive("from_block", from_block)
    check_positive("to_block", to_block)
    idx = np.arange(n_elements, dtype=np.int64)
    src = (idx // from_block) % p
    dest = (idx // to_block) % p
    move = src != dest
    if not move.any():
        z = np.zeros(0, dtype=np.int64)
        return HRelation(p=p, src=z, dest=z.copy(), length=z.copy())
    pair = src[move] * p + dest[move]
    counts = np.bincount(pair, minlength=p * p)
    nz = np.nonzero(counts)[0]
    return HRelation(
        p=p,
        src=(nz // p).astype(np.int64),
        dest=(nz % p).astype(np.int64),
        length=counts[nz].astype(np.int64),
    )


def task_spawn_relation(
    p: int,
    tasks_per_proc: int = 100,
    spawn_prob: float = 0.1,
    burst: int = 50,
    seed: SeedLike = None,
) -> HRelation:
    """Nested-parallelism skew (Section 6: "skew in the number of new tasks
    spawned"): every processor runs ``tasks_per_proc`` tasks; each task
    spawns a burst of ``burst`` child tasks with probability
    ``spawn_prob``, shipped to random processors for load balancing.  A few
    lucky processors spawn far more than the average — send skew with a
    binomial tail."""
    check_positive("p", p)
    check_positive("tasks_per_proc", tasks_per_proc)
    check_positive("burst", burst)
    rng = as_generator(seed)
    spawns = rng.binomial(tasks_per_proc, spawn_prob, size=p) * burst
    return HRelation.from_counts(spawns, dest_rng=rng)


def relation_to_trace(rel, horizon: int, seed: SeedLike = None):
    """Spread a static h-relation's messages uniformly over ``[0, horizon)``
    as a dynamic :class:`~repro.dynamic.adversary.ArrivalTrace` — glue for
    replaying Section-4 workloads through the Section-6.2 protocols."""
    from repro.dynamic.adversary import ArrivalTrace

    check_positive("horizon", horizon)
    rng = as_generator(seed)
    nm = rel.n_messages
    t = np.sort(rng.integers(0, horizon, size=nm)).astype(np.int64)
    order = rng.permutation(nm)
    return ArrivalTrace(
        p=rel.p,
        horizon=horizon,
        t=t,
        src=rel.src[order],
        dest=rel.dest[order],
        length=rel.length[order],
    )
