"""Workload generators: unbalanced h-relations and arrival traces.

Section 6 motivates skew with "irregular applications": skewed inputs,
data already local, joins producing uneven intermediate results, nested
parallelism spawning uneven task counts.  The generators here produce the
corresponding communication patterns, all as :class:`HRelation` instances.
"""

from repro.workloads.applications import (
    matrix_transpose_relation,
    block_remap_relation,
    task_spawn_relation,
    relation_to_trace,
)
from repro.workloads.io import save_relation, load_relation
from repro.workloads.relations import (
    HRelation,
    balanced_h_relation,
    permutation_relation,
    one_to_all_relation,
    all_to_one_relation,
    total_exchange_relation,
    uniform_random_relation,
    zipf_h_relation,
    geometric_h_relation,
    two_class_relation,
    variable_length_relation,
)

__all__ = [
    "HRelation",
    "balanced_h_relation",
    "permutation_relation",
    "one_to_all_relation",
    "all_to_one_relation",
    "total_exchange_relation",
    "uniform_random_relation",
    "zipf_h_relation",
    "geometric_h_relation",
    "two_class_relation",
    "variable_length_relation",
    "matrix_transpose_relation",
    "block_remap_relation",
    "task_spawn_relation",
    "relation_to_trace",
    "save_relation",
    "load_relation",
]
