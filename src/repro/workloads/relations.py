"""Unbalanced h-relation workloads.

An *h-relation* is a set of point-to-point messages in which no processor
sends or receives more than ``h`` flits.  The paper's central objects are
**unbalanced** h-relations — the total volume ``n`` can be far below ``p*h``
— because that is exactly where globally-limited models beat locally-limited
ones (the BSP(g) pays ``g*h`` while the BSP(m) pays ``max(n/m, h)``).

:class:`HRelation` stores messages in structure-of-arrays form (NumPy
``src`` / ``dest`` / ``length``) so the schedulers and evaluators can stay
vectorized at millions of messages, per the HPC guides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive, check_nonnegative

__all__ = [
    "HRelation",
    "balanced_h_relation",
    "permutation_relation",
    "one_to_all_relation",
    "all_to_one_relation",
    "total_exchange_relation",
    "uniform_random_relation",
    "zipf_h_relation",
    "geometric_h_relation",
    "two_class_relation",
    "variable_length_relation",
]


@dataclass
class HRelation:
    """A set of point-to-point messages on a ``p``-processor machine.

    Attributes
    ----------
    p:
        Number of processors.
    src, dest:
        Integer arrays (same length, one entry per message).
    length:
        Flit counts per message (``>= 1``); unit lengths for the fixed-size
        message setting.
    """

    p: int
    src: np.ndarray
    dest: np.ndarray
    length: np.ndarray

    def __post_init__(self) -> None:
        check_positive("p", self.p)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dest = np.asarray(self.dest, dtype=np.int64)
        self.length = np.asarray(self.length, dtype=np.int64)
        if not (self.src.shape == self.dest.shape == self.length.shape):
            raise ValueError("src, dest and length must have identical shapes")
        if self.src.size:
            if self.src.min() < 0 or self.src.max() >= self.p:
                raise ValueError("src indices out of range")
            if self.dest.min() < 0 or self.dest.max() >= self.p:
                raise ValueError("dest indices out of range")
            if self.length.min() < 1:
                raise ValueError("message lengths must be >= 1")

    # ------------------------------------------------------------------
    @property
    def n_messages(self) -> int:
        """Number of messages."""
        return int(self.src.size)

    @property
    def n(self) -> int:
        """Total volume in flits (the paper's ``n``)."""
        return int(self.length.sum())

    @property
    def sizes(self) -> np.ndarray:
        """Per-source flit totals ``x_i`` (length ``p``)."""
        return np.bincount(self.src, weights=self.length, minlength=self.p).astype(
            np.int64
        )

    @property
    def recv_sizes(self) -> np.ndarray:
        """Per-destination flit totals ``y_i`` (length ``p``)."""
        return np.bincount(self.dest, weights=self.length, minlength=self.p).astype(
            np.int64
        )

    @property
    def x_bar(self) -> int:
        """Maximum flits sent by any processor (paper's ``x̄``)."""
        return int(self.sizes.max()) if self.p else 0

    @property
    def y_bar(self) -> int:
        """Maximum flits received by any processor (paper's ``ȳ``)."""
        return int(self.recv_sizes.max()) if self.p else 0

    @property
    def h(self) -> int:
        """The h of the h-relation: ``max(x̄, ȳ)``."""
        return max(self.x_bar, self.y_bar)

    @property
    def max_length(self) -> int:
        """Longest single message (paper's ``ℓ̂``)."""
        return int(self.length.max()) if self.length.size else 0

    @property
    def mean_length(self) -> float:
        """Average message length (paper's ``ℓ̄``)."""
        return float(self.length.mean()) if self.length.size else 0.0

    def imbalance(self) -> float:
        """Skew measure ``x̄ / (n/p)`` — 1 for perfectly balanced sends; the
        globally-limited advantage kicks in once this exceeds ``g``."""
        if self.n == 0:
            return 1.0
        return self.x_bar / (self.n / self.p)

    def bsp_g_lower_bound(self, g: float, L: float = 0.0) -> float:
        """Proposition 6.1 lower bound ``g * (x̄ + ȳ) + L`` — actually
        ``Θ(g(x̄+ȳ)+L)``; we return the additive form used as the baseline."""
        return g * (self.x_bar + self.y_bar) + L

    def bsp_m_lower_bound(self, m: int) -> float:
        """The global-bandwidth lower bound ``max(n/m, x̄, ȳ)``."""
        check_positive("m", m)
        return max(self.n / m, self.x_bar, self.y_bar)

    def fingerprint(self) -> str:
        """Stable content hash of the message set (hex digest).

        Two relations with identical ``(p, src, dest, length)`` share a
        fingerprint in any process — the key the sweep engine's memo cache
        uses to share offline-optimal schedules across grid points.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(str(self.p).encode())
        for arr in (self.src, self.dest, self.length):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def concat(self, other: "HRelation") -> "HRelation":
        """Union of two message sets on the same machine."""
        if other.p != self.p:
            raise ValueError("cannot concat relations with different p")
        return HRelation(
            p=self.p,
            src=np.concatenate([self.src, other.src]),
            dest=np.concatenate([self.dest, other.dest]),
            length=np.concatenate([self.length, other.length]),
        )

    @staticmethod
    def from_counts(counts: np.ndarray, dest_rng: SeedLike = None) -> "HRelation":
        """Build a unit-length relation where processor ``i`` sends
        ``counts[i]`` messages to uniformly random other processors."""
        counts = np.asarray(counts, dtype=np.int64)
        p = counts.size
        check_positive("p", p)
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        rng = as_generator(dest_rng)
        src = np.repeat(np.arange(p, dtype=np.int64), counts)
        n = int(counts.sum())
        if p > 1:
            dest = rng.integers(0, p - 1, size=n)
            dest = np.where(dest >= src, dest + 1, dest)  # exclude self-sends
        else:
            dest = np.zeros(n, dtype=np.int64)
        return HRelation(p=p, src=src, dest=dest.astype(np.int64), length=np.ones(n, dtype=np.int64))


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def balanced_h_relation(p: int, h: int, seed: SeedLike = None) -> HRelation:
    """Every processor sends exactly ``h`` unit messages; destinations are
    ``h`` independent random permutations, so every processor also receives
    exactly ``h`` — the classical balanced h-relation where BSP(g) is
    optimal and the global model has no advantage."""
    check_positive("p", p)
    check_nonnegative("h", h)
    rng = as_generator(seed)
    srcs = []
    dests = []
    for _ in range(h):
        perm = rng.permutation(p)
        srcs.append(np.arange(p, dtype=np.int64))
        dests.append(perm.astype(np.int64))
    if not srcs:
        empty = np.zeros(0, dtype=np.int64)
        return HRelation(p=p, src=empty, dest=empty.copy(), length=empty.copy())
    src = np.concatenate(srcs)
    dest = np.concatenate(dests)
    return HRelation(p=p, src=src, dest=dest, length=np.ones(src.size, dtype=np.int64))


def permutation_relation(p: int, seed: SeedLike = None) -> HRelation:
    """A 1-relation: each processor sends one unit message along a uniformly
    random permutation."""
    return balanced_h_relation(p, 1, seed)


def one_to_all_relation(p: int, length: int = 1, root: int = 0) -> HRelation:
    """One-to-all personalized communication (paper Section 1's motivating
    example): the root sends a distinct message to each other processor.
    Maximally send-unbalanced: ``x̄ = n = (p-1)*length``."""
    check_positive("p", p)
    check_positive("length", length)
    dest = np.array([i for i in range(p) if i != root], dtype=np.int64)
    src = np.full(dest.size, root, dtype=np.int64)
    return HRelation(p=p, src=src, dest=dest, length=np.full(dest.size, length, dtype=np.int64))


def all_to_one_relation(p: int, length: int = 1, root: int = 0) -> HRelation:
    """Every processor sends one message to the root — maximally
    receive-unbalanced (``ȳ = n``)."""
    rel = one_to_all_relation(p, length, root)
    return HRelation(p=p, src=rel.dest, dest=rel.src, length=rel.length)


def total_exchange_relation(
    p: int,
    length: int = 1,
    seed: SeedLike = None,
    max_length: Optional[int] = None,
) -> HRelation:
    """Total exchange (all-to-all personalized): one message per ordered
    pair.  With ``max_length`` set, lengths are uniform on
    ``[1, max_length]`` — the *unbalanced total-exchange* ("chatting")
    problem of Bhatt et al. discussed in Section 3."""
    check_positive("p", p)
    src, dest = np.meshgrid(np.arange(p), np.arange(p), indexing="ij")
    mask = src != dest
    src = src[mask].astype(np.int64)
    dest = dest[mask].astype(np.int64)
    if max_length is not None:
        rng = as_generator(seed)
        lengths = rng.integers(1, max_length + 1, size=src.size).astype(np.int64)
    else:
        lengths = np.full(src.size, length, dtype=np.int64)
    return HRelation(p=p, src=src, dest=dest, length=lengths)


def uniform_random_relation(p: int, n: int, seed: SeedLike = None) -> HRelation:
    """``n`` unit messages with independent uniform sources and (distinct)
    destinations — the mildly-unbalanced baseline (x̄ ≈ n/p + O(sqrt))."""
    check_positive("p", p)
    check_nonnegative("n", n)
    rng = as_generator(seed)
    src = rng.integers(0, p, size=n).astype(np.int64)
    if p > 1:
        dest = rng.integers(0, p - 1, size=n)
        dest = np.where(dest >= src, dest + 1, dest).astype(np.int64)
    else:
        dest = np.zeros(n, dtype=np.int64)
    return HRelation(p=p, src=src, dest=dest, length=np.ones(n, dtype=np.int64))


def zipf_h_relation(p: int, n: int, alpha: float = 1.2, seed: SeedLike = None) -> HRelation:
    """``n`` unit messages whose *sources* follow a Zipf(``alpha``) law over
    processors — the "skew in the inputs" scenario of Section 6.  A few
    processors send most of the traffic, so ``x̄ >> n/p`` and the
    locally-limited lower bound ``g*x̄`` far exceeds ``n/m``."""
    check_positive("p", p)
    check_nonnegative("n", n)
    check_positive("alpha", alpha)
    rng = as_generator(seed)
    weights = 1.0 / np.arange(1, p + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    counts = rng.multinomial(n, weights)
    # Shuffle which processor gets which rank so the heavy sender is random.
    counts = counts[rng.permutation(p)]
    return HRelation.from_counts(counts, dest_rng=rng)


def geometric_h_relation(p: int, base_count: int, ratio: float = 0.5, seed: SeedLike = None) -> HRelation:
    """Processor ranked ``k`` sends ``ceil(base_count * ratio**k)`` unit
    messages — exponentially decaying skew ("nearly-sorted list" style)."""
    check_positive("p", p)
    check_nonnegative("base_count", base_count)
    if not (0 < ratio <= 1):
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    rng = as_generator(seed)
    ranks = np.arange(p, dtype=np.float64)
    counts = np.ceil(base_count * ratio**ranks).astype(np.int64)
    counts = np.maximum(counts, 0)
    counts = counts[rng.permutation(p)]
    return HRelation.from_counts(counts, dest_rng=rng)


def two_class_relation(
    p: int,
    heavy_fraction: float,
    heavy_count: int,
    light_count: int = 1,
    seed: SeedLike = None,
) -> HRelation:
    """A ``heavy_fraction`` of processors send ``heavy_count`` unit messages
    each, the rest send ``light_count`` — the stylized two-class imbalance
    used to position the crossover ``h = g * n/p`` of Section 1."""
    check_positive("p", p)
    if not (0 <= heavy_fraction <= 1):
        raise ValueError(f"heavy_fraction must be in [0,1], got {heavy_fraction}")
    check_nonnegative("heavy_count", heavy_count)
    check_nonnegative("light_count", light_count)
    rng = as_generator(seed)
    n_heavy = int(round(heavy_fraction * p))
    counts = np.full(p, light_count, dtype=np.int64)
    heavy_ids = rng.choice(p, size=n_heavy, replace=False)
    counts[heavy_ids] = heavy_count
    return HRelation.from_counts(counts, dest_rng=rng)


def variable_length_relation(
    p: int,
    n_messages: int,
    mean_length: float = 8.0,
    dist: str = "geometric",
    max_length: Optional[int] = None,
    seed: SeedLike = None,
) -> HRelation:
    """Random-source relation with variable message lengths, for the
    long-message senders of Section 6.1.

    ``dist`` selects the length law: ``"geometric"`` (memoryless, mean
    ``mean_length``), ``"uniform"`` (on ``[1, 2*mean_length - 1]``) or
    ``"pareto"`` (heavy-tailed, shape 2).  Lengths are clipped to
    ``max_length`` when given.
    """
    check_positive("p", p)
    check_nonnegative("n_messages", n_messages)
    check_positive("mean_length", mean_length)
    rng = as_generator(seed)
    if dist == "geometric":
        lengths = rng.geometric(min(1.0, 1.0 / mean_length), size=n_messages)
    elif dist == "uniform":
        hi = max(1, int(round(2 * mean_length - 1)))
        lengths = rng.integers(1, hi + 1, size=n_messages)
    elif dist == "pareto":
        lengths = np.ceil((rng.pareto(2.0, size=n_messages) + 1) * mean_length / 2).astype(np.int64)
    else:
        raise ValueError(f"unknown length distribution {dist!r}")
    lengths = np.maximum(1, lengths.astype(np.int64))
    if max_length is not None:
        lengths = np.minimum(lengths, max_length)
    src = rng.integers(0, p, size=n_messages).astype(np.int64)
    if p > 1:
        dest = rng.integers(0, p - 1, size=n_messages)
        dest = np.where(dest >= src, dest + 1, dest).astype(np.int64)
    else:
        dest = np.zeros(n_messages, dtype=np.int64)
    return HRelation(p=p, src=src, dest=dest, length=lengths)
