"""repro — reproduction of *Modeling Parallel Bandwidth: Local vs. Global
Restrictions* (Adler, Gibbons, Matias, Ramachandran; SPAA 1997).

The package provides:

* simulators for the paper's four bandwidth-limited models — BSP(g), BSP(m),
  QSM(g), QSM(m) — plus the self-scheduling BSP(m) metric and the PRAM /
  PRAM(m) substrates (:mod:`repro.models`);
* the basic algorithms of Table 1 (:mod:`repro.algorithms`);
* the randomized unbalanced-h-relation schedulers of Section 6
  (:mod:`repro.scheduling`);
* the dynamic adversarial-queuing machinery of Section 6.2
  (:mod:`repro.dynamic`);
* the concurrent-read results of Section 5 (:mod:`repro.concurrent_read`);
* executable closed-form bounds for every Table-1 cell and theorem
  (:mod:`repro.theory`);
* workload generators (:mod:`repro.workloads`);
* fault injection, run watchdogs, and an exactly-once reliable transport
  priced against the bandwidth limit (:mod:`repro.faults`).

Quickstart::

    from repro import MachineParams, BSPm, BSPg
    from repro.workloads import zipf_h_relation
    from repro.scheduling import unbalanced_send, evaluate_schedule

    local, global_ = MachineParams.matched_pair(p=1024, m=64, L=16)
    rel = zipf_h_relation(p=1024, n=100_000, alpha=1.2, seed=0)
    sched = unbalanced_send(rel.sizes, m=64, epsilon=0.1, seed=1)
    report = evaluate_schedule(sched, rel, global_)
    print(report.completion_time, report.optimal_time)
"""

from repro.core import (
    MachineParams,
    PenaltyFunction,
    LinearPenalty,
    ExponentialPenalty,
    PolynomialPenalty,
    CapacityPenalty,
    LINEAR,
    EXPONENTIAL,
    Machine,
    RunResult,
    ModelViolation,
    ProgramError,
    RunAborted,
    Message,
)
from repro.models import (
    BSPg,
    BSPm,
    SelfSchedulingBSPm,
    QSMg,
    QSMm,
    PRAM,
    PRAMm,
    ConcurrencyRule,
    LogP,
    TwoLevelBSP,
)

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "PenaltyFunction",
    "LinearPenalty",
    "ExponentialPenalty",
    "PolynomialPenalty",
    "CapacityPenalty",
    "LINEAR",
    "EXPONENTIAL",
    "Machine",
    "RunResult",
    "ModelViolation",
    "ProgramError",
    "RunAborted",
    "Message",
    "BSPg",
    "BSPm",
    "SelfSchedulingBSPm",
    "QSMg",
    "QSMm",
    "PRAM",
    "PRAMm",
    "ConcurrencyRule",
    "LogP",
    "TwoLevelBSP",
    "__version__",
]
