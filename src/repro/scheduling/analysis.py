"""Vectorized schedule evaluation under the BSP(m) cost metric.

This is the fast path of the library: given a :class:`Schedule` it computes
the per-slot injection histogram with one ``bincount`` and prices it under
any penalty family, producing a :class:`ScheduleReport` with the quantities
Theorems 6.2–6.4 bound:

* ``comm_time`` — elapsed communication time: every slot in the schedule's
  span takes at least one time unit, overloaded slots take ``f_m(m_t)``
  (see the timing note in :mod:`repro.core.engine`);
* ``superstep_cost`` — ``max(h, comm_time, L)``, the BSP(m) superstep charge;
* ``completion_time`` — ``superstep_cost + tau`` where ``tau`` is the cost
  of computing/broadcasting ``n`` (0 when ``n`` is known a priori);
* ``optimal_time`` — the offline bound ``max(n/m, x̄, ȳ, L)``;
* ``ratio`` — completion over optimal: the empirical ``(1 + eps)`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.core.params import MachineParams
from repro.scheduling.schedule import Schedule
from repro.util.validation import check_nonnegative, check_positive
from repro.workloads.relations import HRelation

__all__ = ["ScheduleReport", "evaluate_schedule", "bsp_g_routing_time"]


@dataclass
class ScheduleReport:
    """Priced outcome of one schedule on a BSP(m)."""

    algorithm: str
    n: int
    m: int
    x_bar: int
    y_bar: int
    span: int
    comm_time: float
    c_m_paper: float
    overloaded_slots: int
    max_slot_load: int
    superstep_cost: float
    tau: float
    completion_time: float
    optimal_time: float

    @property
    def ratio(self) -> float:
        """Completion time over the offline optimum (>= 1 up to ties)."""
        if self.optimal_time == 0:
            return 1.0
        return self.completion_time / self.optimal_time

    @property
    def overloaded(self) -> bool:
        """True when any slot exceeded the aggregate bandwidth."""
        return self.overloaded_slots > 0

    def to_dict(self) -> dict:
        """JSON-ready record (for experiment logs / CI tracking)."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "x_bar": self.x_bar,
            "y_bar": self.y_bar,
            "span": self.span,
            "comm_time": self.comm_time,
            "c_m_paper": self.c_m_paper,
            "overloaded_slots": self.overloaded_slots,
            "max_slot_load": self.max_slot_load,
            "superstep_cost": self.superstep_cost,
            "tau": self.tau,
            "completion_time": self.completion_time,
            "optimal_time": self.optimal_time,
            "ratio": self.ratio,
        }

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        over = (
            f"{self.overloaded_slots} overloaded slots (max load "
            f"{self.max_slot_load} > m={self.m})"
            if self.overloaded
            else "no overloaded slots"
        )
        return (
            f"{self.algorithm}: {self.n} flits through m={self.m} in "
            f"{self.completion_time:g} time "
            f"({self.ratio:.3f}x the offline optimum {self.optimal_time:g}); "
            f"span {self.span}, x̄={self.x_bar}, ȳ={self.y_bar}, {over}"
            + (f", tau={self.tau:g}" if self.tau else "")
        )


def evaluate_schedule(
    sched: Schedule,
    rel_or_params: "HRelation | MachineParams | None" = None,
    *,
    m: Optional[int] = None,
    L: float = 0.0,
    penalty: PenaltyFunction = EXPONENTIAL,
    tau: float = 0.0,
) -> ScheduleReport:
    """Price ``sched`` on a BSP(m).

    ``m`` and ``L`` come from an explicit :class:`MachineParams` (second
    positional argument, for symmetry with the quickstart) or the keyword
    arguments.  ``tau`` adds the prefix-sum/broadcast cost when the
    scheduler had to compute ``n`` (use
    :func:`repro.scheduling.prefix_broadcast.tau_bound` or a measured
    value).
    """
    params: Optional[MachineParams] = None
    if isinstance(rel_or_params, MachineParams):
        params = rel_or_params
    elif isinstance(rel_or_params, HRelation):
        # Accepted for quickstart symmetry; the schedule already carries it.
        if rel_or_params is not sched.rel and rel_or_params.n != sched.rel.n:
            raise ValueError("relation does not match the schedule's relation")
    if params is not None:
        m = params.require_m() if m is None else m
        L = params.L if L == 0.0 else L
    if m is None:
        raise ValueError("aggregate bandwidth m must be given (or via params)")
    check_positive("m", m)
    check_nonnegative("tau", tau)

    rel = sched.rel
    counts = sched.slot_counts()
    span = sched.span
    if counts.size:
        charges = penalty(counts, m)
        overload_mask = counts > m
        comm = float(span) + float(np.sum(charges[overload_mask] - 1.0))
        c_m_paper = float(np.sum(charges))
        overloaded = int(np.sum(overload_mask))
        max_load = int(counts.max())
    else:
        comm = c_m_paper = 0.0
        overloaded = 0
        max_load = 0

    h = max(rel.x_bar, rel.y_bar)
    superstep_cost = max(float(h), comm, float(L))
    completion = superstep_cost + tau
    optimal = max(rel.n / m, float(rel.x_bar), float(rel.y_bar), float(L))
    return ScheduleReport(
        algorithm=sched.algorithm,
        n=rel.n,
        m=int(m),
        x_bar=rel.x_bar,
        y_bar=rel.y_bar,
        span=span,
        comm_time=comm,
        c_m_paper=c_m_paper,
        overloaded_slots=overloaded,
        max_slot_load=max_load,
        superstep_cost=superstep_cost,
        tau=float(tau),
        completion_time=completion,
        optimal_time=optimal,
    )


def bsp_g_routing_time(rel: HRelation, g: float, L: float = 0.0) -> float:
    """Proposition 6.1: routing an h-relation on the BSP(g) takes
    ``Theta(g(x̄+ȳ) + L)``; we return ``max(g*max(x̄, ȳ), L)`` — the exact
    one-superstep BSP(g) charge — as the locally-limited comparison point."""
    if g < 1:
        raise ValueError(f"gap g must be >= 1, got {g}")
    return max(g * max(rel.x_bar, rel.y_bar), L)
