"""The randomized static senders of Section 6.1.

Both algorithms here solve the *static unbalanced routing problem*: each
processor ``i`` holds ``x_i`` flits to send; ``n = sum x_i`` is known (either
computed by :mod:`repro.scheduling.prefix_broadcast` or known a priori) but
the pattern is otherwise arbitrary and unknown.  Processors pick injection
slots *independently at random* inside a window of ``W = (1+eps) n/m`` slots
so that, w.h.p., no slot exceeds the aggregate bandwidth ``m``:

* :func:`unbalanced_send` (paper: **Unbalanced-Send**, Theorem 6.2) —
  processor ``i`` draws a uniform start ``j_i`` and occupies ``x_i`` cyclic
  slots ``j_i, j_i+1, ... (mod W)``.  Flits of one message may end up far
  apart, which is fine when flits need not be consecutive.  Completes in
  ``max((1+eps) n/m, x̄, ȳ, L) + tau`` w.h.p.
* :func:`unbalanced_consecutive_send` (paper: **Unbalanced-Consecutive-
  Send**, Theorem 6.3) — same draw, but the block runs off the end of the
  window instead of wrapping, so every message's flits are consecutive
  (wormhole/start-up-cost scenarios).  Completes in
  ``max((1+eps) n/m + x̄', x̄, ȳ, L) + tau`` w.h.p., where ``x̄'`` is the
  largest block among processors that fit in the window.

Processors with ``x_i > W`` (there can be at most ``m`` of them, as the
proof of Theorem 6.2 observes) send consecutively from slot 0.

The ``template`` option implements the paper's remark after Theorem 6.2:
any fixed within-window sending pattern may be cyclically shifted by the
random offset; ``"consecutive"`` is the paper's default and ``"spread"``
spaces a processor's flits evenly through the window.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = [
    "unbalanced_send",
    "unbalanced_consecutive_send",
    "send_window",
    "per_proc_flit_ranks",
]


def send_window(n: int, m: int, epsilon: float) -> int:
    """The window size ``W = ceil((1+eps) n/m)`` (at least 1)."""
    check_positive("m", m)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    return max(1, int(np.ceil((1.0 + epsilon) * n / m)))


def per_proc_flit_ranks(flit_src: np.ndarray, p: int) -> np.ndarray:
    """Rank of each flit among its processor's flits (0-based), preserving
    flit order — vectorized grouping without a Python loop."""
    if flit_src.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(flit_src, minlength=p)
    group_starts = np.cumsum(counts) - counts
    order = np.argsort(flit_src, kind="stable")
    ranks_sorted = np.arange(flit_src.size, dtype=np.int64) - np.repeat(
        group_starts[counts > 0], counts[counts > 0]
    )
    ranks = np.empty_like(ranks_sorted)
    ranks[order] = ranks_sorted
    return ranks


def _template_offsets(
    ranks: np.ndarray,
    x_of_flit: np.ndarray,
    window: int,
    template: str,
    gap: int = 1,
) -> np.ndarray:
    """Within-window offset of each flit under the chosen template.

    ``"consecutive"`` is the paper's algorithm; ``"spread"`` spaces a
    processor's flits evenly through the window; ``"gap"`` realizes the
    paper's remark about "having a certain separation between every two
    messages sent by the same processor" — offset ``k·gap``, falling back
    to consecutive for processors whose spaced block would not fit.
    """
    if template == "consecutive":
        return ranks
    if template == "spread":
        # Spread a processor's x flits evenly: offset k -> floor(k * W / x).
        # Offsets are distinct whenever x <= W.
        return (ranks * window) // np.maximum(x_of_flit, 1)
    if template == "gap":
        if gap < 1:
            raise ValueError(f"gap must be >= 1, got {gap}")
        fits = x_of_flit * gap <= window
        return np.where(fits, ranks * gap, ranks)
    raise ValueError(
        f"unknown template {template!r} (use 'consecutive', 'spread' or 'gap')"
    )


def unbalanced_send(
    rel: HRelation,
    m: int,
    epsilon: float = 0.1,
    seed: SeedLike = None,
    *,
    n: Optional[int] = None,
    template: str = "consecutive",
    gap: int = 1,
) -> Schedule:
    """Algorithm **Unbalanced-Send** (Theorem 6.2).

    Parameters
    ----------
    rel:
        The h-relation to schedule (any message lengths; flits are scheduled
        independently, so multi-flit messages may be split — use
        :func:`unbalanced_consecutive_send` or the long-message senders when
        flits must be consecutive).
    m:
        Aggregate bandwidth.
    epsilon:
        Window slack; the overload probability decays like
        ``exp(-Omega(eps^2 m))``.
    n:
        Total flit count if known a priori; defaults to ``rel.n`` (in a full
        machine run this value comes from the prefix-sum/broadcast phase,
        whose cost ``tau`` is added by the evaluator, not here).
    template:
        Within-window sending pattern, cyclically shifted by the random
        draw (paper's template remark): ``"consecutive"`` (default),
        ``"spread"``, or ``"gap"`` with spacing ``gap`` between a
        processor's successive flits.

    Returns
    -------
    Schedule
        A valid schedule: one flit per processor per slot, span at most
        ``max(W, x̄)``.
    """
    rng = as_generator(seed)
    total = rel.n if n is None else n
    window = send_window(total, m, epsilon)

    x = rel.sizes  # per-proc flit totals
    flit_src = expand_per_flit(rel.src, rel.length)
    ranks = per_proc_flit_ranks(flit_src, rel.p)
    x_of_flit = x[flit_src]

    starts = rng.integers(0, window, size=rel.p)
    offsets = _template_offsets(ranks, x_of_flit, window, template, gap)
    slots = (starts[flit_src] + offsets) % window
    # Oversized processors (x_i > W) send consecutively from slot 0.
    oversized = x_of_flit > window
    slots[oversized] = ranks[oversized]

    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="unbalanced-send",
        window=window,
        meta={
            "epsilon": float(epsilon),
            "n_used": float(total),
            "oversized_procs": float(int(np.sum(x > window))),
            "template": 0.0 if template == "consecutive" else 1.0,
        },
    )


def unbalanced_consecutive_send(
    rel: HRelation,
    m: int,
    epsilon: float = 0.1,
    seed: SeedLike = None,
    *,
    n: Optional[int] = None,
) -> Schedule:
    """Algorithm **Unbalanced-Consecutive-Send** (Theorem 6.3).

    Each processor sends its entire block of flits in consecutive slots
    starting at a uniform draw from the window, running past the window's
    end instead of wrapping — so every message's flits are consecutive and
    the schedule is usable when long messages must travel as contiguous flit
    streams.  Span is at most ``W + x̄' `` where ``x̄'`` is the largest block
    among processors with ``x_i <= W``.
    """
    rng = as_generator(seed)
    total = rel.n if n is None else n
    window = send_window(total, m, epsilon)

    x = rel.sizes
    flit_src = expand_per_flit(rel.src, rel.length)
    ranks = per_proc_flit_ranks(flit_src, rel.p)

    starts = rng.integers(0, window, size=rel.p)
    starts = np.where(x > window, 0, starts)  # oversized blocks start at 0
    slots = starts[flit_src] + ranks

    in_window = x[x <= window]
    x_bar_prime = int(in_window.max()) if in_window.size else 0
    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="unbalanced-consecutive-send",
        window=window,
        meta={
            "epsilon": float(epsilon),
            "n_used": float(total),
            "x_bar_prime": float(x_bar_prime),
            "oversized_procs": float(int(np.sum(x > window))),
        },
    )
