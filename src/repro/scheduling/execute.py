"""Executing schedules on the engine — the scheduler↔machine bridge.

The Section 6 senders produce :class:`~repro.scheduling.schedule.Schedule`
objects that the vectorized evaluator prices directly.  This module closes
the loop: :func:`route` turns a schedule into a real SPMD program, runs it
on any message-passing machine, verifies that every flit arrived, and
returns the engine's :class:`~repro.core.engine.RunResult` — whose cost
must agree with the evaluator (a property pinned by the test suite).

This is also the general *h-relation router* for the library: given a
machine and a relation, pick the right discipline automatically —
locally-limited machines need no scheduling (Proposition 6.1), globally-
limited ones get Unbalanced-Send.

The routing program is the engine's highest-volume workload (the 40k-flit
profile in docs/performance.md), so it is written in the columnar idiom
end-to-end: the per-processor plan is three array slices (slot, dest,
flit-id) produced by one argsort of the schedule's flit columns, the
program is a single ``ctx.send_many`` call per processor, and delivery is
verified by sorting the concatenated payload columns — no per-flit Python
objects anywhere.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.obs.tracer import active_tracer
from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike
from repro.workloads.relations import HRelation

__all__ = ["route", "route_reliable", "execute_schedule", "delivery_counts"]


def _flit_plan(sched: Schedule) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-processor ``(slots, dests, flit_ids)`` column triples.

    One stable argsort groups the schedule's flit columns by source; each
    processor's plan is then three contiguous array slices.
    """
    rel = sched.rel
    flit_src = np.asarray(sched.flit_src, dtype=np.int64)
    flit_dest = np.asarray(expand_per_flit(rel.dest, rel.length), dtype=np.int64)
    flit_slot = np.asarray(sched.flit_slots, dtype=np.int64)
    flit_id = np.arange(rel.n, dtype=np.int64)
    order = np.argsort(flit_src, kind="stable")
    src_sorted = flit_src[order]
    bounds = np.searchsorted(src_sorted, np.arange(rel.p + 1, dtype=np.int64))
    plan = []
    for pid in range(rel.p):
        idx = order[bounds[pid] : bounds[pid + 1]]
        plan.append((flit_slot[idx], flit_dest[idx], flit_id[idx]))
    return plan


def _routing_program(ctx, slots, dests, flit_ids):
    ctx.send_many(dests, payloads=flit_ids, slots=slots)
    yield
    return ctx.receive().payloads


def execute_schedule(
    machine: Machine, sched: Schedule, *, audit: bool = False
) -> RunResult:
    """Run a schedule on ``machine`` as one superstep and verify delivery.

    Raises :class:`AssertionError`-free :class:`ValueError` if any flit is
    lost or duplicated (this would be an engine bug — the check is the
    library guarding its own invariants, not user error).  ``audit=True``
    additionally runs every barrier through the invariant auditor
    (:mod:`repro.faults.audit`).
    """
    if machine.uses_shared_memory:
        raise ValueError("schedules route point-to-point messages; use a BSP machine")
    rel = sched.rel
    if machine.params.p < rel.p:
        raise ValueError(
            f"machine has {machine.params.p} processors, relation needs {rel.p}"
        )
    plan = _flit_plan(sched)
    tracer = active_tracer()
    if tracer is not None:
        # context span for the engine's own `run` span: which relation and
        # schedule this routing superstep came from
        with tracer.span(
            "execute_schedule", cat="scheduling", track="machine",
            p=rel.p, flits=rel.n,
        ):
            res = machine.run(
                _routing_program, per_proc_args=plan, nprocs=rel.p, audit=audit,
            )
    else:
        res = machine.run(
            _routing_program,
            per_proc_args=plan,
            nprocs=rel.p,
            audit=audit,
        )
    try:
        chunks = [np.asarray(received, dtype=np.int64) for received in res.results
                  if len(received)]
        got = np.sort(np.concatenate(chunks)) if chunks else np.zeros(0, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        # un-coercible payloads (e.g. CorruptedPayload markers) = not delivered
        got = np.zeros(0, dtype=np.int64)
    if got.size != rel.n or not np.array_equal(got, np.arange(rel.n, dtype=np.int64)):
        injector = getattr(machine, "fault_injector", None)
        if injector is not None and not injector.plan.is_null:
            raise ValueError(
                f"delivery mismatch: {got.size} of {rel.n} flits arrived — the "
                "machine has an active fault injector; use route_reliable() "
                "(repro.faults.reliable_route) to route with retries"
            )
        raise ValueError(
            f"delivery mismatch: {got.size} of {rel.n} flits arrived"
        )
    return res


def delivery_counts(res: RunResult, p: int) -> np.ndarray:
    """Flits received per processor in an :func:`execute_schedule` run."""
    out = np.zeros(p, dtype=np.int64)
    for pid, received in enumerate(res.results):
        out[pid] = len(received)
    return out


def route(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable[..., Schedule]] = None,
) -> Tuple[RunResult, Schedule]:
    """Route an h-relation on any message-passing machine.

    On a globally-limited machine the flits are scheduled with
    ``scheduler`` (default Unbalanced-Send, Theorem 6.2); on a
    locally-limited machine no scheduling is needed (Proposition 6.1) and
    everything is injected back-to-back.  Returns the engine result and
    the schedule used.
    """
    if machine.params.m is not None:
        sch = (scheduler or unbalanced_send)(
            rel, machine.params.m, epsilon, seed=seed
        )
    else:
        from repro.scheduling.naive import naive_schedule

        sch = naive_schedule(rel)
    return execute_schedule(machine, sch), sch


def route_reliable(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable[..., Schedule]] = None,
    max_rounds: int = 64,
    backoff_base: int = 1,
    max_time: Optional[float] = None,
    audit: bool = False,
):
    """Route an h-relation with exactly-once delivery despite faults.

    Scheduler-side entry point for :func:`repro.faults.reliable_route`:
    the same automatic discipline choice as :func:`route` (Unbalanced-Send
    when the machine is globally limited, back-to-back otherwise), but with
    sequence numbers, acks and retransmission so every flit survives the
    machine's attached fault injector.  Retries are rescheduled against the
    bandwidth limit — they are priced like fresh traffic, never injected
    for free.  Returns a :class:`repro.faults.transport.TransportResult`.
    """
    from repro.faults.transport import reliable_route

    return reliable_route(
        machine,
        rel,
        epsilon=epsilon,
        seed=seed,
        scheduler=scheduler,
        max_rounds=max_rounds,
        backoff_base=backoff_base,
        max_time=max_time,
        audit=audit,
    )
