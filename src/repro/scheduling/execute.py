"""Executing schedules on the engine — the scheduler↔machine bridge.

The Section 6 senders produce :class:`~repro.scheduling.schedule.Schedule`
objects that the vectorized evaluator prices directly.  This module closes
the loop: :func:`route` turns a schedule into a real SPMD program, runs it
on any message-passing machine, verifies that every flit arrived, and
returns the engine's :class:`~repro.core.engine.RunResult` — whose cost
must agree with the evaluator (a property pinned by the test suite).

This is also the general *h-relation router* for the library: given a
machine and a relation, pick the right discipline automatically —
locally-limited machines need no scheduling (Proposition 6.1), globally-
limited ones get Unbalanced-Send.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike
from repro.workloads.relations import HRelation

__all__ = ["route", "execute_schedule", "delivery_counts"]


def _flit_plan(sched: Schedule) -> List[List[Tuple[int, int, int]]]:
    """Per-processor list of (slot, dest, flit_id) triples."""
    rel = sched.rel
    flit_src = sched.flit_src
    flit_dest = expand_per_flit(rel.dest, rel.length)
    plan: List[List[Tuple[int, int, int]]] = [[] for _ in range(rel.p)]
    for k in range(rel.n):
        plan[int(flit_src[k])].append(
            (int(sched.flit_slots[k]), int(flit_dest[k]), k)
        )
    return plan


def _routing_program(ctx, plan_entry):
    for slot, dest, flit_id in plan_entry:
        ctx.send(dest, flit_id, slot=slot)
    yield
    return [msg.payload for msg in ctx.receive()]


def execute_schedule(machine: Machine, sched: Schedule) -> RunResult:
    """Run a schedule on ``machine`` as one superstep and verify delivery.

    Raises :class:`AssertionError`-free :class:`ValueError` if any flit is
    lost or duplicated (this would be an engine bug — the check is the
    library guarding its own invariants, not user error).
    """
    if machine.uses_shared_memory:
        raise ValueError("schedules route point-to-point messages; use a BSP machine")
    rel = sched.rel
    if machine.params.p < rel.p:
        raise ValueError(
            f"machine has {machine.params.p} processors, relation needs {rel.p}"
        )
    plan = _flit_plan(sched)
    res = machine.run(
        _routing_program,
        per_proc_args=[(plan[i],) for i in range(rel.p)],
        nprocs=rel.p,
    )
    got = sorted(fid for received in res.results for fid in received)
    if got != list(range(rel.n)):
        raise ValueError(
            f"delivery mismatch: {len(got)} of {rel.n} flits arrived"
        )
    return res


def delivery_counts(res: RunResult, p: int) -> np.ndarray:
    """Flits received per processor in an :func:`execute_schedule` run."""
    out = np.zeros(p, dtype=np.int64)
    for pid, received in enumerate(res.results):
        if received:
            out[pid] = len(received)
    return out


def route(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable[..., Schedule]] = None,
) -> Tuple[RunResult, Schedule]:
    """Route an h-relation on any message-passing machine.

    On a globally-limited machine the flits are scheduled with
    ``scheduler`` (default Unbalanced-Send, Theorem 6.2); on a
    locally-limited machine no scheduling is needed (Proposition 6.1) and
    everything is injected back-to-back.  Returns the engine result and
    the schedule used.
    """
    if machine.params.m is not None:
        sch = (scheduler or unbalanced_send)(
            rel, machine.params.m, epsilon, seed=seed
        )
    else:
        from repro.scheduling.naive import naive_schedule

        sch = naive_schedule(rel)
    return execute_schedule(machine, sch), sch
