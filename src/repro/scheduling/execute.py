"""Executing schedules on the engine — the scheduler↔machine bridge.

The Section 6 senders produce :class:`~repro.scheduling.schedule.Schedule`
objects that the vectorized evaluator prices directly.  This module closes
the loop: :func:`route` turns a schedule into a real SPMD program, runs it
on any message-passing machine, verifies that every flit arrived, and
returns the engine's :class:`~repro.core.engine.RunResult` — whose cost
must agree with the evaluator (a property pinned by the test suite).

This is also the general *h-relation router* for the library: given a
machine and a relation, pick the right discipline automatically —
locally-limited machines need no scheduling (Proposition 6.1), globally-
limited ones get Unbalanced-Send.

The routing program is the engine's highest-volume workload (the 40k-flit
profile in docs/performance.md), so it is written in the columnar idiom
end-to-end: the per-processor plan is three array slices (slot, dest,
flit-id) produced by one argsort of the schedule's flit columns, the
program is a single ``ctx.send_many`` call per processor, and delivery is
verified by sorting the concatenated payload columns — no per-flit Python
objects anywhere.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from time import monotonic as _monotonic

from repro.core.batched import replay_batch
from repro.core.compiled import CompiledProgram
from repro.core.engine import Machine, RunAborted, RunResult, fused_default
from repro.core.events import MessageBatch, RequestBatch, SuperstepRecord
from repro.core.kernels import stable_group_order
from repro.obs.ledger import active_ledger
from repro.obs.metrics import active_metrics
from repro.obs.tracer import active_tracer
from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike
from repro.workloads.relations import HRelation

__all__ = [
    "route",
    "route_reliable",
    "execute_schedule",
    "execute_schedule_batch",
    "compile_schedule",
    "delivery_counts",
]


def _flit_plan(sched: Schedule) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-processor ``(slots, dests, flit_ids)`` column triples.

    One stable argsort groups the schedule's flit columns by source; each
    processor's plan is then three contiguous array slices.
    """
    rel = sched.rel
    flit_src = np.asarray(sched.flit_src, dtype=np.int64)
    flit_dest = np.asarray(expand_per_flit(rel.dest, rel.length), dtype=np.int64)
    flit_slot = np.asarray(sched.flit_slots, dtype=np.int64)
    flit_id = np.arange(rel.n, dtype=np.int64)
    order = stable_group_order(flit_src, rel.p - 1)
    src_sorted = flit_src[order]
    bounds = np.searchsorted(src_sorted, np.arange(rel.p + 1, dtype=np.int64))
    plan = []
    for pid in range(rel.p):
        idx = order[bounds[pid] : bounds[pid + 1]]
        plan.append((flit_slot[idx], flit_dest[idx], flit_id[idx]))
    return plan


def _routing_program(ctx, slots, dests, flit_ids):
    ctx.send_many(dests, payloads=flit_ids, slots=slots)
    yield
    return ctx.receive().payloads


def _schedule_frame(sched: Schedule) -> Tuple[MessageBatch, List]:
    """The one-barrier routing superstep's ``(frozen batch, per-processor
    results)``, assembled directly from the schedule's flit columns.

    This is the parameter-independent *structure* of the routing program:
    one stable group-by-source sort builds the batch, and the delivery
    permutation (group the sorted batch by destination) yields each
    processor's inbox payload slice, ``[]`` when nothing arrived — exactly
    what ``ctx.receive().payloads`` returns on the trampoline path.
    Computed once per schedule and shared by :func:`_execute_schedule_direct`
    and :func:`compile_schedule`, so a batched replay pays for it once, not
    once per trial.
    """
    rel = sched.rel
    p = rel.p
    flit_src = np.asarray(sched.flit_src, dtype=np.int64)
    flit_dest = np.asarray(expand_per_flit(rel.dest, rel.length), dtype=np.int64)
    flit_slot = np.asarray(sched.flit_slots, dtype=np.int64)
    order = stable_group_order(flit_src, p - 1)
    dest = flit_dest[order]
    payload = order  # flit ids are arange(n), so ids-sorted-by-src == order
    batch = MessageBatch(
        flit_src[order],
        dest,
        np.ones(rel.n, dtype=np.int64),
        flit_slot[order],
        np.ones(rel.n, dtype=bool),
        payload,
    )
    counts = np.bincount(dest, minlength=p)
    bounds = np.empty(counts.size + 1, dtype=np.int64)
    bounds[0] = 0
    np.cumsum(counts, out=bounds[1:])
    delivered = payload[stable_group_order(dest, p - 1)]
    results: List = []
    for pid in range(p):
        s, e = int(bounds[pid]), int(bounds[pid + 1])
        results.append(delivered[s:e] if e > s else [])
    return batch, results


def _execute_schedule_direct(machine: Machine, sched: Schedule) -> RunResult:
    """Compiled-superstep execution of the one-barrier routing program.

    The routing program is straight-line (every processor issues one
    ``send_many`` computed from the schedule, independent of anything it
    receives), so its single superstep record can be assembled directly
    from the schedule's flit columns — one stable group-by-source sort —
    without constructing processors, generators or arenas at all.  The
    record, model time and per-processor results are bit-identical to the
    trampoline execution (pinned by ``tests/test_fused_kernel.py``).
    """
    batch, results = _schedule_frame(sched)
    record = SuperstepRecord(
        index=0,
        work=[0.0] * sched.rel.p,
        msg_batch=batch,
        read_batch=RequestBatch.empty(),
        write_batch=RequestBatch.empty(),
    )
    cost, breakdown, stats = machine._price(record)
    record.cost = cost
    record.breakdown = breakdown
    record.stats = stats
    return RunResult(params=machine.params, records=[record], results=results)


def compile_schedule(sched: Schedule) -> CompiledProgram:
    """Compile a schedule's routing program without executing it.

    The returned :class:`~repro.core.compiled.CompiledProgram` holds the
    same single-superstep frame and delivery results the direct fast path
    of :func:`execute_schedule` assembles, so ``compile_schedule(sched)
    .replay(machine)`` is bit-identical to the fused ``execute_schedule``
    result on any message-passing machine — and
    :func:`repro.core.batched.replay_batch` can price one compilation
    under a whole parameter batch.
    """
    batch, results = _schedule_frame(sched)
    frames = [
        ([0.0] * sched.rel.p, batch, RequestBatch.empty(), RequestBatch.empty())
    ]
    return CompiledProgram(frames, results, sched.rel.p, False)


def execute_schedule_batch(
    machines: List[Machine],
    sched: Schedule,
    *,
    compiled: Optional[CompiledProgram] = None,
) -> List[RunResult]:
    """Run one schedule on a batch of machines in a single fused pass.

    Element ``b`` is bit-identical to ``execute_schedule(machines[b],
    sched)``: the frame assembly and delivery permutation are computed
    once (:func:`_schedule_frame`), pricing goes through
    :func:`repro.core.batched.replay_batch`, and delivery is verified once
    — the recorded results are shared, so one histogram check covers every
    trial.  Pass ``compiled`` (from :func:`compile_schedule`) to reuse a
    prior compilation across calls.  Machines with fault injectors are
    refused, as on every compiled-replay path.
    """
    machines = list(machines)
    rel = sched.rel
    for machine in machines:
        if machine.uses_shared_memory:
            raise ValueError(
                "schedules route point-to-point messages; use a BSP machine"
            )
        if machine.params.p < rel.p:
            raise ValueError(
                f"machine has {machine.params.p} processors, relation "
                f"needs {rel.p}"
            )
    if compiled is None:
        compiled = compile_schedule(sched)
    out = replay_batch(compiled, machines)
    if out:
        _verify_delivery(out[0], rel, machines[0])
    return out


def execute_schedule(
    machine: Machine,
    sched: Schedule,
    *,
    audit: bool = False,
    deadline: Optional[float] = None,
) -> RunResult:
    """Run a schedule on ``machine`` as one superstep and verify delivery.

    Raises :class:`AssertionError`-free :class:`ValueError` if any flit is
    lost or duplicated (this would be an engine bug — the check is the
    library guarding its own invariants, not user error).  ``audit=True``
    additionally runs every barrier through the invariant auditor
    (:mod:`repro.faults.audit`).  ``deadline`` is an absolute
    ``time.monotonic()`` timestamp (the serving path's per-request
    deadline) forwarded to :meth:`Machine.run`; an expired deadline raises
    :class:`~repro.core.engine.RunAborted` before superstep 0 on both the
    trampoline and the compiled direct path.
    """
    if machine.uses_shared_memory:
        raise ValueError("schedules route point-to-point messages; use a BSP machine")
    rel = sched.rel
    if machine.params.p < rel.p:
        raise ValueError(
            f"machine has {machine.params.p} processors, relation needs {rel.p}"
        )
    tracer = active_tracer()
    if (
        fused_default()
        and not audit
        and machine.fault_injector is None
        and tracer is None
        and active_metrics() is None
        and active_ledger() is None
    ):
        # compiled-superstep fast path: the routing program is straight-
        # line, so skip the trampoline entirely (see _execute_schedule_direct).
        # The direct path has no superstep loop to check mid-run, so the
        # deadline gate is the same abort-before-superstep-0 check the
        # trampoline performs.
        if deadline is not None and _monotonic() > deadline:
            raise RunAborted(
                "run exceeded its absolute deadline at superstep 0",
                partial=RunResult(params=machine.params, records=[],
                                  results=[None] * rel.p),
                superstep=0,
                reason="deadline",
            )
        res = _execute_schedule_direct(machine, sched)
        _verify_delivery(res, rel, machine)
        return res
    plan = _flit_plan(sched)
    if tracer is not None:
        # context span for the engine's own `run` span: which relation and
        # schedule this routing superstep came from
        with tracer.span(
            "execute_schedule", cat="scheduling", track="machine",
            p=rel.p, flits=rel.n,
        ):
            res = machine.run(
                _routing_program, per_proc_args=plan, nprocs=rel.p, audit=audit,
                deadline=deadline,
            )
    else:
        res = machine.run(
            _routing_program,
            per_proc_args=plan,
            nprocs=rel.p,
            audit=audit,
            deadline=deadline,
        )
    _verify_delivery(res, rel, machine)
    return res


def _verify_delivery(res: RunResult, rel: HRelation, machine: Machine) -> None:
    """Every flit id 0..n-1 arrived exactly once — checked by histogram
    (one ``bincount`` instead of the historical full sort)."""
    try:
        chunks = [np.asarray(received, dtype=np.int64) for received in res.results
                  if len(received)]
        got = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        # un-coercible payloads (e.g. CorruptedPayload markers) = not delivered
        got = np.zeros(0, dtype=np.int64)
    ok = got.size == rel.n
    if ok and rel.n:
        if int(got.min()) < 0 or int(got.max()) >= rel.n:
            ok = False
        else:
            ok = bool((np.bincount(got, minlength=rel.n) == 1).all())
    if not ok:
        injector = getattr(machine, "fault_injector", None)
        if injector is not None and not injector.plan.is_null:
            raise ValueError(
                f"delivery mismatch: {got.size} of {rel.n} flits arrived — the "
                "machine has an active fault injector; use route_reliable() "
                "(repro.faults.reliable_route) to route with retries"
            )
        raise ValueError(
            f"delivery mismatch: {got.size} of {rel.n} flits arrived"
        )


def delivery_counts(res: RunResult, p: int) -> np.ndarray:
    """Flits received per processor in an :func:`execute_schedule` run."""
    out = np.zeros(p, dtype=np.int64)
    for pid, received in enumerate(res.results):
        out[pid] = len(received)
    return out


def route(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable[..., Schedule]] = None,
    deadline: Optional[float] = None,
) -> Tuple[RunResult, Schedule]:
    """Route an h-relation on any message-passing machine.

    On a globally-limited machine the flits are scheduled with
    ``scheduler`` (default Unbalanced-Send, Theorem 6.2); on a
    locally-limited machine no scheduling is needed (Proposition 6.1) and
    everything is injected back-to-back.  Returns the engine result and
    the schedule used.  ``deadline`` (absolute ``time.monotonic()``) is
    forwarded to :func:`execute_schedule`.
    """
    if machine.params.m is not None:
        sch = (scheduler or unbalanced_send)(
            rel, machine.params.m, epsilon, seed=seed
        )
    else:
        from repro.scheduling.naive import naive_schedule

        sch = naive_schedule(rel)
    return execute_schedule(machine, sch, deadline=deadline), sch


def route_reliable(
    machine: Machine,
    rel: HRelation,
    *,
    epsilon: float = 0.15,
    seed: SeedLike = None,
    scheduler: Optional[Callable[..., Schedule]] = None,
    max_rounds: int = 64,
    backoff_base: int = 1,
    max_time: Optional[float] = None,
    audit: bool = False,
):
    """Route an h-relation with exactly-once delivery despite faults.

    Scheduler-side entry point for :func:`repro.faults.reliable_route`:
    the same automatic discipline choice as :func:`route` (Unbalanced-Send
    when the machine is globally limited, back-to-back otherwise), but with
    sequence numbers, acks and retransmission so every flit survives the
    machine's attached fault injector.  Retries are rescheduled against the
    bandwidth limit — they are priced like fresh traffic, never injected
    for free.  Returns a :class:`repro.faults.transport.TransportResult`.
    """
    from repro.faults.transport import reliable_route

    return reliable_route(
        machine,
        rel,
        epsilon=epsilon,
        seed=seed,
        scheduler=scheduler,
        max_rounds=max_rounds,
        backoff_base=backoff_base,
        max_time=max_time,
        audit=audit,
    )
