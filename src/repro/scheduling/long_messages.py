"""Long-message and message-overhead senders (Section 6.1, closing remarks).

Two refinements of Unbalanced-Send for messages whose flits must be injected
in consecutive slots:

* :func:`unbalanced_send_long` — run the cyclic Unbalanced-Send allocation
  at flit granularity, then *unwrap* any message whose allocated chunk
  crosses the window boundary: instead of wrapping to the window start, it
  keeps going past the window end.  The additive cost over Unbalanced-Send
  is at most ``l_hat``, the longest message — better than the ``x̄'``
  additive term of Unbalanced-Consecutive-Send when messages are much
  shorter than a processor's whole block.

* :func:`unbalanced_send_with_overhead` — the LOGP-style scenario where a
  processor pays a start-up gap ``o`` before each message.  Per the paper,
  each message is prepended with a dummy chunk of ``o`` slots and the
  long-message sender runs on the inflated relation, replacing ``n`` by
  ``n' = (1 + o/l_bar) n``; the resulting bound is
  ``(1+eps)(1+o/l_bar) n/m + l_hat + o``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.scheduling.schedule import Schedule, expand_per_flit, flit_offsets
from repro.scheduling.static_send import per_proc_flit_ranks, send_window
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_nonnegative, check_positive
from repro.workloads.relations import HRelation

__all__ = ["unbalanced_send_long", "unbalanced_send_with_overhead"]


def unbalanced_send_long(
    rel: HRelation,
    m: int,
    epsilon: float = 0.1,
    seed: SeedLike = None,
    *,
    n: Optional[int] = None,
) -> Schedule:
    """Wrap-avoiding Unbalanced-Send for variable-length messages.

    Every message's flits occupy consecutive slots; span is at most
    ``W + l_hat`` where ``W = (1+eps)n/m`` and ``l_hat`` is the longest
    message.  Validity argument (per-processor slot uniqueness): a
    processor's cyclic block is a set of distinct slots mod ``W``; unwrapping
    a boundary-crossing message moves its tail from ``[0, tail)`` to
    ``[W, W + tail)``, which no other of the processor's messages occupies.
    """
    check_positive("m", m)
    rng = as_generator(seed)
    total = rel.n if n is None else n
    window = send_window(total, m, epsilon)

    x = rel.sizes
    flit_src = expand_per_flit(rel.src, rel.length)
    flit_ranks = per_proc_flit_ranks(flit_src, rel.p)

    starts_per_proc = rng.integers(0, window, size=rel.p)

    # Per-message start = processor draw + within-processor flit prefix,
    # taken modulo the window for in-window processors.
    lengths = rel.length
    msg_first_flit = np.cumsum(lengths) - lengths
    msg_src = rel.src
    msg_prefix = flit_ranks[msg_first_flit]  # flits before this message at its proc
    in_window = x[msg_src] <= window
    msg_start = np.where(
        in_window,
        (starts_per_proc[msg_src] + msg_prefix) % window,
        msg_prefix,
    )
    # Unwrapped consecutive occupation: start + 0..len-1 (never wraps).
    slots = expand_per_flit(msg_start, lengths) + flit_offsets(lengths)

    overflow = in_window & (msg_start + lengths > window)
    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="unbalanced-send-long",
        window=window,
        meta={
            "epsilon": float(epsilon),
            "n_used": float(total),
            "l_hat": float(rel.max_length),
            "overflow_messages": float(int(np.sum(overflow))),
            "oversized_procs": float(int(np.sum(x > window))),
        },
    )


def unbalanced_send_with_overhead(
    rel: HRelation,
    m: int,
    o: int,
    epsilon: float = 0.1,
    seed: SeedLike = None,
) -> Tuple[Schedule, HRelation]:
    """Long-message sending with per-message start-up overhead ``o``.

    Returns ``(schedule, inflated_relation)``: the schedule is over the
    inflated relation in which every message is prepended with ``o`` dummy
    flits (the paper's conservative accounting charges the dummies against
    the network too).  The real flits of message ``k`` are the *last*
    ``rel.length[k]`` flits of inflated message ``k``.
    """
    check_nonnegative("o", o)
    if o == 0:
        sched = unbalanced_send_long(rel, m, epsilon, seed)
        return sched, rel
    inflated = HRelation(
        p=rel.p,
        src=rel.src.copy(),
        dest=rel.dest.copy(),
        length=rel.length + int(o),
    )
    sched = unbalanced_send_long(inflated, m, epsilon, seed)
    sched.algorithm = "unbalanced-send-overhead"
    sched.meta["overhead"] = float(o)
    sched.meta["l_bar"] = float(rel.mean_length)
    sched.meta["n_real"] = float(rel.n)
    return sched, inflated
