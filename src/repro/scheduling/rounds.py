"""Routing in bounded-buffer rounds.

Bhatt et al.'s "chatting" scenario (Section 3) assumes communication
proceeds in rounds with no buffering inside the network; real receivers
also bound how much they can absorb per superstep.  This module splits an
h-relation into batches whose per-destination volume respects a receiver
buffer, routes each batch with a Section-6 sender, and sums the costs —
the multi-superstep counterpart of the single-shot senders.

The split is greedy by destination load and preserves the global lower
bound: with buffer ``B`` the batch count is ``ceil(ȳ/B)`` and the total
time is within ``(1+ε)`` of ``max(n/m, x̄, ȳ) + (batches-1)·L`` w.h.p. —
the extra latency being the price of the barrier per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.scheduling.analysis import ScheduleReport, evaluate_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.static_send import unbalanced_send
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = ["BatchedRoute", "split_by_receive_buffer", "route_in_batches"]


@dataclass
class BatchedRoute:
    """Outcome of a bounded-buffer routing run."""

    batches: List[ScheduleReport]
    buffer: int
    L: float

    @property
    def total_time(self) -> float:
        """Sum of per-batch superstep costs plus a barrier per extra batch."""
        if not self.batches:
            return 0.0
        return sum(r.superstep_cost for r in self.batches) + self.L * (
            len(self.batches) - 1
        )

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def max_receive_per_batch(self) -> int:
        return max((r.y_bar for r in self.batches), default=0)


def split_by_receive_buffer(rel: HRelation, buffer: int) -> List[HRelation]:
    """Partition messages so that no destination receives more than
    ``buffer`` flits in any batch.

    Greedy per destination: messages to each destination are packed into
    consecutive batches in input order (messages longer than ``buffer``
    get a batch slot to themselves — the buffer bounds *batching*, not a
    single message's size).
    """
    check_positive("buffer", buffer)
    if rel.n_messages == 0:
        return []
    batch_of = np.zeros(rel.n_messages, dtype=np.int64)
    fill: dict = {}
    idx_in: dict = {}
    for k in range(rel.n_messages):
        d = int(rel.dest[k])
        ln = int(rel.length[k])
        b = idx_in.get(d, 0)
        used = fill.get((d, b), 0)
        if used and used + ln > buffer:
            b += 1
            idx_in[d] = b
            used = 0
        batch_of[k] = b
        fill[(d, b)] = used + ln
    out = []
    for b in range(int(batch_of.max()) + 1):
        mask = batch_of == b
        out.append(
            HRelation(
                p=rel.p,
                src=rel.src[mask],
                dest=rel.dest[mask],
                length=rel.length[mask],
            )
        )
    return out


def route_in_batches(
    rel: HRelation,
    m: int,
    buffer: int,
    epsilon: float = 0.15,
    L: float = 1.0,
    seed: SeedLike = None,
    sender: Callable[..., Schedule] = unbalanced_send,
    penalty: PenaltyFunction = EXPONENTIAL,
) -> BatchedRoute:
    """Route ``rel`` through bandwidth ``m`` in receiver-buffer-bounded
    rounds, each scheduled by ``sender`` and priced under ``penalty``."""
    check_positive("m", m)
    rng = as_generator(seed)
    reports = []
    for batch in split_by_receive_buffer(rel, buffer):
        sched = sender(batch, m, epsilon, seed=rng)
        reports.append(evaluate_schedule(sched, m=m, L=L, penalty=penalty))
    return BatchedRoute(batches=reports, buffer=buffer, L=L)
