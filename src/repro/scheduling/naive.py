"""Naive and deterministic baseline schedules.

Two foils for the randomized senders:

* :func:`naive_schedule` — every processor starts blasting at slot 0.  On a
  globally-limited machine with an exponential overload penalty this is the
  catastrophe the scheduling algorithms exist to avoid: slot 0 carries up to
  ``min(p, #senders)`` flits, costing ``e^{p/m - 1}`` (the paper's "a single
  bad step can require time e^{p/m-1}").

* :func:`grouped_schedule` — the deterministic group-staggered schedule that
  realizes the Section 4 emulation of a locally-limited machine on a
  globally-limited one: processors are partitioned into ``ceil(p/m)`` groups
  of ``m`` and a processor's ``k``-th flit goes to slot
  ``k * ceil(p/m) + group``.  Never overloads, but ignores imbalance — its
  span is ``ceil(p/m) * x̄ ≈ g * x̄``, exactly the locally-limited cost the
  paper's senders beat by ``Theta(g)`` under skew.
"""

from __future__ import annotations


from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.scheduling.static_send import per_proc_flit_ranks
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = ["naive_schedule", "grouped_schedule"]


def naive_schedule(rel: HRelation) -> Schedule:
    """Everyone sends consecutively from slot 0 — maximally overloaded."""
    flit_src = expand_per_flit(rel.src, rel.length)
    ranks = per_proc_flit_ranks(flit_src, rel.p)
    return Schedule(
        rel=rel,
        flit_slots=ranks,
        algorithm="naive",
        meta={},
    )


def grouped_schedule(rel: HRelation, m: int) -> Schedule:
    """Deterministic ``ceil(p/m)``-way staggering (the g-model emulation).

    Guaranteed overload-free (each slot is owned by one group of at most
    ``m`` processors, each injecting at most one flit), with span exactly
    ``ceil(p/m) * x̄`` when the heaviest processor is in the last-used
    sub-slot — i.e. the locally-limited cost ``g * x̄``.
    """
    check_positive("m", m)
    groups = ceil_div(rel.p, m)
    flit_src = expand_per_flit(rel.src, rel.length)
    ranks = per_proc_flit_ranks(flit_src, rel.p)
    group_of = flit_src // m
    slots = ranks * groups + group_of
    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="grouped",
        meta={"groups": float(groups)},
    )
