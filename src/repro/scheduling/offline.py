"""Offline schedulers — the baselines the randomized senders are measured
against.

With the communication pattern known in advance, an *exact optimal* injection
schedule exists and is easy to construct for flit-independent sending:

    The minimum possible span is ``T* = max(ceil(n/m), x̄)`` (bandwidth and
    per-processor injection-rate lower bounds).  Concatenate all flits
    grouped by processor into one sequence and send flit ``k`` at slot
    ``k mod T*``: each processor's flits form a contiguous run of length
    ``x_i <= T*``, hence land in distinct slots, and every slot receives at
    most ``ceil(n/T*) <= m`` flits.  The schedule is therefore feasible and
    meets the lower bound exactly.

For the consecutive-flit (wormhole) constraint the problem is a strip-packing
variant; :func:`offline_consecutive_schedule` provides a first-fit-decreasing
heuristic baseline that is within ``l_hat`` of ``T*``.
"""

from __future__ import annotations


import numpy as np

from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = [
    "offline_optimal_schedule",
    "offline_consecutive_schedule",
    "offline_lower_bound",
]


def offline_lower_bound(rel: HRelation, m: int) -> int:
    """The exact minimum span ``max(ceil(n/m), x̄)`` of any injection
    schedule (ignoring the receive side, which no injection schedule can
    influence)."""
    check_positive("m", m)
    if rel.n == 0:
        return 0
    return max(ceil_div(rel.n, m), rel.x_bar)


def offline_optimal_schedule(rel: HRelation, m: int) -> Schedule:
    """The exact optimal offline schedule for flit-independent sending.

    Span equals :func:`offline_lower_bound` — this is the ``OPT`` the
    ``(1+eps)`` guarantee of Theorem 6.2 is measured against.
    """
    check_positive("m", m)
    span = offline_lower_bound(rel, m)
    if span == 0:
        return Schedule(
            rel=rel,
            flit_slots=np.zeros(0, dtype=np.int64),
            algorithm="offline-optimal",
            window=0,
        )
    flit_src = expand_per_flit(rel.src, rel.length)
    order = np.argsort(flit_src, kind="stable")  # group flits by processor
    slots = np.empty(rel.n, dtype=np.int64)
    slots[order] = np.arange(rel.n, dtype=np.int64) % span
    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="offline-optimal",
        window=span,
        meta={"span_lower_bound": float(span)},
    )


def offline_consecutive_schedule(rel: HRelation, m: int) -> Schedule:
    """First-fit-decreasing offline baseline under the consecutive-flit
    constraint.

    Messages are placed longest-first; each message starts at the earliest
    slot where (a) the per-slot load stays at most ``m`` over its whole
    extent and (b) its processor is idle over its whole extent.  Greedy and
    quadratic in the worst case — intended for baseline comparisons at
    moderate message counts, not the million-flit path.
    """
    check_positive("m", m)
    nm = rel.n_messages
    if nm == 0:
        return Schedule(
            rel=rel,
            flit_slots=np.zeros(0, dtype=np.int64),
            algorithm="offline-consecutive-ffd",
            window=0,
        )
    order = np.argsort(-rel.length, kind="stable")
    horizon = int(rel.n) + int(rel.length.max())
    load = np.zeros(horizon + 1, dtype=np.int64)
    proc_busy_until = {}  # pid -> sorted busy intervals as list of (start, end)
    starts = np.zeros(nm, dtype=np.int64)
    for k in order:
        src = int(rel.src[k])
        ln = int(rel.length[k])
        intervals = proc_busy_until.setdefault(src, [])
        t = 0
        while True:
            # skip forward past processor conflicts
            conflicted = False
            for (a, b) in intervals:
                if t < b and a < t + ln:
                    t = b
                    conflicted = True
                    break
            if conflicted:
                continue
            window_load = load[t : t + ln]
            over = np.nonzero(window_load >= m)[0]
            if over.size:
                t = t + int(over[-1]) + 1
                continue
            break
        starts[k] = t
        load[t : t + ln] += 1
        intervals.append((t, t + ln))
        intervals.sort()
    return Schedule.from_message_starts(
        rel,
        starts,
        algorithm="offline-consecutive-ffd",
        meta={"lower_bound": float(offline_lower_bound(rel, m))},
    )
