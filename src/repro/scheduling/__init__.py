"""Section 6 scheduling: routing unbalanced h-relations through aggregate
bandwidth.

The static senders (:func:`unbalanced_send`,
:func:`unbalanced_consecutive_send`, :func:`unbalanced_granular_send`, and
the long-message/overhead variants) pick randomized injection slots so that
w.h.p. no time slot exceeds the aggregate bandwidth ``m``, beating the best
possible locally-limited time by ``Theta(g)`` under send skew.  Baselines
(:func:`offline_optimal_schedule`, :func:`naive_schedule`,
:func:`grouped_schedule`) bracket them from below and above, and
:func:`evaluate_schedule` prices everything under a pluggable overload
penalty.
"""

from repro.scheduling.schedule import Schedule, flit_offsets, expand_per_flit
from repro.scheduling.static_send import (
    unbalanced_send,
    unbalanced_consecutive_send,
    send_window,
    per_proc_flit_ranks,
)
from repro.scheduling.granular import unbalanced_granular_send
from repro.scheduling.long_messages import (
    unbalanced_send_long,
    unbalanced_send_with_overhead,
)
from repro.scheduling.offline import (
    offline_optimal_schedule,
    offline_consecutive_schedule,
    offline_lower_bound,
)
from repro.scheduling.naive import naive_schedule, grouped_schedule
from repro.scheduling.analysis import (
    ScheduleReport,
    evaluate_schedule,
    bsp_g_routing_time,
)
from repro.scheduling.execute import (
    route,
    route_reliable,
    execute_schedule,
    delivery_counts,
)
from repro.scheduling.rounds import BatchedRoute, split_by_receive_buffer, route_in_batches
from repro.scheduling.prefix_broadcast import (
    sum_and_broadcast,
    sum_and_broadcast_program,
    tau_bound,
)

__all__ = [
    "Schedule",
    "flit_offsets",
    "expand_per_flit",
    "unbalanced_send",
    "unbalanced_consecutive_send",
    "send_window",
    "per_proc_flit_ranks",
    "unbalanced_granular_send",
    "unbalanced_send_long",
    "unbalanced_send_with_overhead",
    "offline_optimal_schedule",
    "offline_consecutive_schedule",
    "offline_lower_bound",
    "naive_schedule",
    "grouped_schedule",
    "ScheduleReport",
    "evaluate_schedule",
    "bsp_g_routing_time",
    "sum_and_broadcast",
    "sum_and_broadcast_program",
    "tau_bound",
    "route",
    "route_reliable",
    "execute_schedule",
    "delivery_counts",
    "BatchedRoute",
    "split_by_receive_buffer",
    "route_in_batches",
]
