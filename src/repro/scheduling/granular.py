"""Algorithm **Unbalanced-Granular-Send** (Theorem 6.4).

Unbalanced-Consecutive-Send needs ``n < e^{alpha m}`` for its union bound
(one event per window slot).  This variant coarsens the random start to
*granule* boundaries — multiples of ``t' = n/p``, the average load — so the
union bound only ranges over ``c*p/m`` granules and the requirement weakens
to ``p < e^{alpha m}``, which the paper notes "may be more reasonable".

Processor ``i`` with ``x_i <= n/m`` draws a granule ``j`` uniformly from
``[0, (c n/m - x_i)/t')`` and sends its block consecutively from slot
``j * t'``; heavier processors start at slot 0.  Theorem 6.4: completes in
``c n/m`` slots with probability ``1 - e^{-Omega(eps^2 m)}`` for a suitable
constant ``c``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.scheduling.schedule import Schedule, expand_per_flit
from repro.scheduling.static_send import per_proc_flit_ranks
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = ["unbalanced_granular_send"]


def unbalanced_granular_send(
    rel: HRelation,
    m: int,
    c: float = 4.0,
    seed: SeedLike = None,
    *,
    n: Optional[int] = None,
) -> Schedule:
    """Schedule ``rel`` with granule-aligned random starts.

    Parameters
    ----------
    c:
        The window constant: blocks are placed in ``[0, c*n/m)``.  The
        theorem's analysis needs ``c > 2`` (it pads every ``x_i`` up to the
        average ``t' = n/p``, at most doubling ``n``, and then wants slack on
        top); the default 4 keeps expected slot load below ``m/2``.
    """
    check_positive("m", m)
    if c <= 1:
        raise ValueError(f"granular window constant c must be > 1, got {c}")
    rng = as_generator(seed)
    total = rel.n if n is None else n
    if total == 0:
        return Schedule(
            rel=rel,
            flit_slots=np.zeros(0, dtype=np.int64),
            algorithm="unbalanced-granular-send",
            window=0,
            meta={"c": float(c), "granule": 0.0},
        )

    granule = max(1, int(np.ceil(total / rel.p)))  # t' = n/p
    window = max(granule, int(np.ceil(c * total / m)))
    threshold = total / m

    x = rel.sizes
    # Number of admissible granule starts per processor: (window - x_i)/t',
    # at least 1 so every processor has a legal position.
    n_granules = np.maximum(1, (window - x) // granule)
    draws = (rng.random(rel.p) * n_granules).astype(np.int64)
    starts = draws * granule
    starts = np.where(x > threshold, 0, starts)

    flit_src = expand_per_flit(rel.src, rel.length)
    ranks = per_proc_flit_ranks(flit_src, rel.p)
    slots = starts[flit_src] + ranks

    return Schedule(
        rel=rel,
        flit_slots=slots,
        algorithm="unbalanced-granular-send",
        window=window,
        meta={
            "c": float(c),
            "granule": float(granule),
            "n_used": float(total),
            "heavy_procs": float(int(np.sum(x > threshold))),
        },
    )
