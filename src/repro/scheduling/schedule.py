"""Schedule representation for unbalanced h-relation routing.

A :class:`Schedule` fixes, for every flit of every message of an
:class:`~repro.workloads.relations.HRelation`, the time slot in which it is
injected into the network.  Globally-limited machines price a schedule by its
per-slot injection histogram; schedulers therefore produce flit-level slot
arrays and everything downstream stays vectorized.

Flits are stored message-major: the flits of message 0 come first, then
message 1, and so on — ``flit_message[k]`` maps flit ``k`` back to its
message and ``flit_src[k]`` to its sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.workloads.relations import HRelation

__all__ = ["Schedule", "flit_offsets", "expand_per_flit"]


def flit_offsets(lengths: np.ndarray) -> np.ndarray:
    """Within-message flit indices ``0 .. length-1`` for each message,
    concatenated message-major.

    >>> flit_offsets(np.array([2, 1, 3])).tolist()
    [0, 1, 0, 0, 1, 2]
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(lengths) - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def expand_per_flit(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Repeat a per-message array into a per-flit array."""
    return np.repeat(np.asarray(values), np.asarray(lengths, dtype=np.int64))


@dataclass
class Schedule:
    """An injection schedule for an h-relation.

    Attributes
    ----------
    rel:
        The scheduled h-relation.
    flit_slots:
        Slot index per flit, message-major.
    algorithm:
        Name of the producing scheduler (for reports).
    window:
        The cyclic window ``(1+eps)n/m`` used by the randomized senders, or
        ``None`` for schedulers without one.
    meta:
        Free-form scheduler metadata (epsilon, seeds, overflow counts...).
    """

    rel: HRelation
    flit_slots: np.ndarray
    algorithm: str = "unknown"
    window: Optional[int] = None
    meta: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.flit_slots = np.asarray(self.flit_slots, dtype=np.int64)
        if self.flit_slots.size != self.rel.n:
            raise ValueError(
                f"schedule has {self.flit_slots.size} flit slots for a relation "
                f"with {self.rel.n} flits"
            )
        if self.flit_slots.size and self.flit_slots.min() < 0:
            raise ValueError("flit slots must be non-negative")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.rel.n

    @property
    def flit_src(self) -> np.ndarray:
        """Sender of each flit (message-major expansion)."""
        return expand_per_flit(self.rel.src, self.rel.length)

    @property
    def flit_message(self) -> np.ndarray:
        """Message index of each flit."""
        return expand_per_flit(
            np.arange(self.rel.n_messages, dtype=np.int64), self.rel.length
        )

    @property
    def span(self) -> int:
        """Makespan in slots: 1 + the last used slot (0 when empty)."""
        return int(self.flit_slots.max()) + 1 if self.flit_slots.size else 0

    def slot_counts(self) -> np.ndarray:
        """Per-slot injection histogram ``m_t`` over ``[0, span)``."""
        if not self.flit_slots.size:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.flit_slots)

    def load_profile(self, m: Optional[int] = None, width: int = 60, bins: int = 24) -> str:
        """ASCII sketch of the per-slot load over time — a quick visual
        check of whether a schedule is flat (good) or bursty (penalized).
        With ``m`` given, slots exceeding the bandwidth are marked ``!``.
        """
        counts = self.slot_counts()
        if not counts.size:
            return "(empty schedule)"
        bins = min(bins, counts.size)
        edges = np.linspace(0, counts.size, bins + 1).astype(int)
        lines = []
        # An all-zero histogram (possible for sparse/padded slot layouts)
        # must not divide by zero — every bar just renders at minimum width.
        peak = max(1, int(counts.max()))
        for b in range(bins):
            seg = counts[edges[b] : edges[b + 1]]
            if seg.size == 0:
                continue
            avg, mx = float(seg.mean()), int(seg.max())
            bar = "#" * max(1, int(round(width * avg / peak)))
            flag = " !" if m is not None and mx > m else ""
            lines.append(
                f"slots {edges[b]:>7}-{edges[b + 1] - 1:<7} "
                f"avg {avg:8.1f} max {mx:7d} |{bar}{flag}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def check_valid(self, *, require_consecutive: bool = False) -> None:
        """Raise :class:`ValueError` if the schedule breaks a model rule.

        Checks
        ------
        * every processor injects at most one flit per slot ("each processor
          may initiate at most one message send" per step);
        * with ``require_consecutive``, every message's flits occupy
          consecutive increasing slots (the wormhole constraint of
          Unbalanced-Consecutive-Send and the long-message senders).
        """
        if not self.flit_slots.size:
            return
        src = self.flit_src
        span = self.span
        keys = src * span + self.flit_slots
        unique = np.unique(keys)
        if unique.size != keys.size:
            # locate one offender for the error message
            order = np.argsort(keys, kind="stable")
            dup_pos = np.nonzero(np.diff(keys[order]) == 0)[0][0]
            k = int(keys[order][dup_pos])
            raise ValueError(
                f"processor {k // span} injects two flits at slot {k % span}"
            )
        if require_consecutive:
            lengths = self.rel.length
            starts = np.cumsum(lengths) - lengths
            offs = flit_offsets(lengths)
            expected = self.flit_slots[np.repeat(starts, lengths)] + offs
            if not np.array_equal(expected, self.flit_slots):
                bad = int(self.flit_message[np.nonzero(expected != self.flit_slots)[0][0]])
                raise ValueError(f"message {bad} flits are not in consecutive slots")

    def is_valid(self, *, require_consecutive: bool = False) -> bool:
        """Boolean form of :meth:`check_valid`."""
        try:
            self.check_valid(require_consecutive=require_consecutive)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def from_message_starts(
        rel: HRelation,
        starts: np.ndarray,
        *,
        algorithm: str = "unknown",
        window: Optional[int] = None,
        wrap_mask: Optional[np.ndarray] = None,
        meta: Optional[Dict[str, float]] = None,
    ) -> "Schedule":
        """Build a schedule from per-message start slots.

        Flits of message ``k`` occupy ``starts[k] + 0..length-1``.  Where
        ``wrap_mask`` is true the flits wrap cyclically modulo ``window``
        (the Unbalanced-Send allocation); elsewhere they run off the end of
        the window unwrapped.
        """
        starts = np.asarray(starts, dtype=np.int64)
        if starts.size != rel.n_messages:
            raise ValueError(
                f"{starts.size} starts for {rel.n_messages} messages"
            )
        offs = flit_offsets(rel.length)
        slots = expand_per_flit(starts, rel.length) + offs
        if wrap_mask is not None:
            if window is None:
                raise ValueError("wrap_mask requires a window")
            wrap_f = expand_per_flit(np.asarray(wrap_mask, dtype=bool), rel.length)
            slots[wrap_f] %= window
        return Schedule(
            rel=rel,
            flit_slots=slots,
            algorithm=algorithm,
            window=window,
            meta=dict(meta or {}),
        )
