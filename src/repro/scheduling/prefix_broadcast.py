"""Computing and broadcasting ``n`` on the BSP(m) — the ``tau`` phase.

All three senders of Section 6.1 begin with "processors perform a prefix sum
and a broadcast to inform every processor of the value n".  This module
implements that phase as a real BSP(m) engine program and exposes the
analytic bound

.. math:: \\tau = O(p/m + L + L \\lg m / \\lg L)

The structure (matching the bound term by term):

1. **Funnel** — each non-aggregator processor sends its local count to
   aggregator ``pid mod a`` (``a = min(p, m)`` aggregators), staggered so
   that exactly ``a`` flits enter the network per slot: ``p/m`` time.
2. **Tree reduce** — the aggregators sum up a ``b``-ary tree with branching
   ``b = max(2, floor(L))``: ``ceil(log_b a)`` supersteps of cost ``L`` each,
   i.e. ``O(L lg m / lg L)``.
3. **Tree broadcast** — the total returns down the same tree.
4. **Fan-out** — each aggregator sends the total to its group members,
   staggered as in step 1: ``p/m + L`` time.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.engine import Machine, RunResult
from repro.core.params import MachineParams
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive

__all__ = ["sum_and_broadcast", "sum_and_broadcast_program", "tau_bound"]


def _tree_rounds(a: int, b: int) -> int:
    """Number of reduce rounds for ``a`` leaves with branching ``b``."""
    rounds = 0
    span = 1
    while span < a:
        span *= b
        rounds += 1
    return rounds


def sum_and_broadcast_program(ctx, a: int, b: int, value: float):
    """BSP(m) SPMD program: every processor ends up returning
    ``sum of all values``.

    Parameters are the aggregator count ``a``, tree branching ``b`` and this
    processor's local ``value`` (supplied via ``per_proc_args``).
    """
    p = ctx.nprocs
    pid = ctx.pid
    rounds = _tree_rounds(a, b)

    # --- Stage 1: funnel to aggregators -------------------------------
    if pid >= a:
        # Senders with the same pid//a share a slot: exactly a (<= m) per slot.
        ctx.send(pid % a, value, slot=pid // a - 1)
    yield
    total = value
    if pid < a:
        total += sum(msg.payload for msg in ctx.receive())

    # --- Stage 2: b-ary tree reduce over aggregators 0..a-1 -----------
    stride = 1
    for _ in range(rounds):
        block = stride * b
        if pid < a and pid % block != 0 and pid % stride == 0:
            ctx.send(pid - pid % block, total, slot=0)
        yield
        if pid < a and pid % block == 0:
            total += sum(msg.payload for msg in ctx.receive())
        stride = block

    # --- Stage 3: tree broadcast of the grand total -------------------
    # Descend the same tree in reverse round order.
    strides = [b**r for r in range(rounds)]  # 1, b, b^2, ...
    for stride in reversed(strides):
        block = stride * b
        if pid < a and pid % block == 0:
            k = 0
            for child in range(pid + stride, min(pid + block, a), stride):
                ctx.send(child, total, slot=k)
                k += 1
        yield
        if pid < a and pid % block != 0 and pid % stride == 0:
            msgs = ctx.receive()
            if msgs:
                total = msgs[0].payload

    # --- Stage 4: fan out to group members ----------------------------
    if pid < a:
        k = 0
        for member in range(pid + a, p, a):
            ctx.send(member, total, slot=k)
            k += 1
    yield
    if pid >= a:
        msgs = ctx.receive()
        if msgs:
            total = msgs[0].payload
    return total


def sum_and_broadcast(
    machine: Machine, values: Sequence[float], branching: int | None = None
) -> Tuple[RunResult, List[float]]:
    """Run the prefix-sum/broadcast phase on ``machine``.

    Returns the engine :class:`RunResult` (whose ``.time`` is the measured
    ``tau``) and the per-processor totals — all equal to ``sum(values)``.
    """
    params = machine.params
    p = params.p
    if len(values) != p:
        raise ValueError(f"{len(values)} values for {p} processors")
    a = min(p, params.m) if params.m is not None else p
    b = branching if branching is not None else max(2, int(params.L))
    result = machine.run(
        sum_and_broadcast_program,
        args=(a, b),
        per_proc_args=[(v,) for v in values],
    )
    return result, list(result.results)


def tau_bound(params: MachineParams, branching: int | None = None) -> float:
    """Analytic bound ``tau = O(p/m + L + L lg m / lg L)`` with explicit
    constants matching :func:`sum_and_broadcast_program`'s structure: two
    funnel/fan-out stages of ``max(ceil(p/m), L)`` and two tree traversals
    of ``ceil(log_b m)`` supersteps each."""
    check_positive("p", params.p)
    m = params.require_m()
    L = params.L
    a = min(params.p, m)
    b = branching if branching is not None else max(2, int(L))
    rounds = _tree_rounds(a, b)
    funnel = max(ceil_div(params.p, a), L)
    return 2 * funnel + 2 * rounds * max(float(b), L)
