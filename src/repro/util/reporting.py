"""Plain-text tabular reporting used by the benchmark harness.

Benchmarks print the same rows the paper's Table 1 reports (plus measured
columns); this module renders them without any third-party dependency so the
harness works in a bare environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "format_float"]


def format_float(x: Any, digits: int = 4) -> str:
    """Render a number compactly: ints untouched, floats to ``digits``
    significant digits, everything else via ``str``."""
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        if x != x:  # NaN: an undefined entry (e.g. a ratio over zero time)
            return "—"
        if x == 0:
            return "0"
        if abs(x) >= 10**6 or abs(x) < 10**-4:
            return f"{x:.{digits}g}"
        return f"{x:.{digits}g}"
    return str(x)


@dataclass
class Table:
    """Accumulate rows and render an aligned ASCII table.

    >>> t = Table(["p", "time"], title="demo")
    >>> t.add_row([4, 1.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    p | time
    --+-----
    4 | 1.5
    """

    columns: Sequence[str]
    title: str = ""
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} entries, table has {len(self.columns)} columns"
            )
        self.rows.append([format_float(v) for v in values])

    def render(self) -> str:
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
