"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

import math
from numbers import Real

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_prob",
    "check_finite",
]


def check_finite(name: str, value: Real) -> None:
    """Raise :class:`ValueError` unless ``value`` is a finite number.

    Catches the two values comparison-based checks let through: ``inf``
    satisfies ``> 0``, and ``nan`` fails every comparison so ``value < 1``
    style guards never fire on it.
    """
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_positive(name: str, value: Real) -> None:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: Real) -> None:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(
    name: str,
    value: Real,
    low: Real,
    high: Real,
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in the interval.

    ``low_open``/``high_open`` select open endpoints.
    """
    lo_ok = value > low if low_open else value >= low
    hi_ok = value < high if high_open else value <= high
    if not (lo_ok and hi_ok):
        lo_b = "(" if low_open else "["
        hi_b = ")" if high_open else "]"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value!r}")


def check_prob(name: str, value: Real) -> None:
    """Raise :class:`ValueError` unless ``0 <= value <= 1``."""
    check_in_range(name, value, 0.0, 1.0)
