"""Shared utilities: integer math, RNG plumbing, validation, reporting.

These helpers are deliberately tiny and dependency-free so that every other
subpackage can import them without cycles.
"""

from repro.util.intmath import ceil_div, ilog2, ilog, log_star, next_pow2
from repro.util.rng import as_generator, spawn_children
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_prob,
)
from repro.util.reporting import Table, format_float

__all__ = [
    "ceil_div",
    "ilog2",
    "ilog",
    "log_star",
    "next_pow2",
    "as_generator",
    "spawn_children",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_prob",
    "Table",
    "format_float",
]
