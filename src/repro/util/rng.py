"""Deterministic randomness plumbing.

Every randomized component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  All randomness flows through NumPy
generators so experiments are replayable bit-for-bit and independent parallel
streams can be derived with :func:`spawn_children`.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Union

import numpy as np

__all__ = [
    "as_generator",
    "spawn_children",
    "derive_seed_sequence",
    "derive_generator",
    "describe_seed",
    "SeedLike",
]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: spawn-key words per path component (64 bits of separation each)
_WORDS_PER_PART = 2


def _path_words(part: "int | str") -> tuple:
    """Stable uint32 spawn-key words for one derivation-path component.

    Components are type-tagged before hashing so ``5`` and ``"5"`` derive
    different streams, and each component hashes independently so
    ``("ab", "c")`` never collides with ``("a", "bc")``.  blake2b keeps the
    mapping stable across processes and Python versions (unlike ``hash``).
    """
    if isinstance(part, (bool, float)):
        raise TypeError(f"seed-path components must be int or str, got {part!r}")
    tag = f"i:{part}" if isinstance(part, (int, np.integer)) else f"s:{part}"
    digest = hashlib.blake2b(tag.encode("utf-8"), digest_size=4 * _WORDS_PER_PART).digest()
    return tuple(
        int.from_bytes(digest[4 * i : 4 * i + 4], "little") for i in range(_WORDS_PER_PART)
    )


def derive_seed_sequence(root: SeedLike, *path: "int | str") -> np.random.SeedSequence:
    """Derive the :class:`~numpy.random.SeedSequence` at a named point of a
    deterministic derivation tree.

    ``path`` components (experiment name, grid-point key, trial index, ...)
    are hashed into the sequence's ``spawn_key``, so

    * the same ``(root, path)`` always yields the same stream — any single
      trial of a sweep is reproducible in isolation, in any process;
    * different paths yield statistically independent streams — unlike the
      ad-hoc ``seed + t`` arithmetic this replaces, two experiments sharing
      a root seed can never collide on a trial stream;
    * deriving from an already-derived sequence extends its path (the tree
      nests).

    A ``root`` of ``None`` draws fresh entropy (still giving independent
    children); a :class:`~numpy.random.Generator` root is rejected because
    its stream position is not a stable derivation base.
    """
    if isinstance(root, np.random.Generator):
        raise TypeError(
            "cannot derive a SeedSequence from a Generator (its stream "
            "position is not a stable base); pass the original int seed "
            "or SeedSequence instead"
        )
    if isinstance(root, np.random.SeedSequence):
        entropy, base_key = root.entropy, tuple(root.spawn_key)
    else:
        entropy, base_key = root, ()
    words: tuple = ()
    for part in path:
        words += _path_words(part)
    return np.random.SeedSequence(entropy=entropy, spawn_key=base_key + words)


def derive_generator(root: SeedLike, *path: "int | str") -> np.random.Generator:
    """:func:`derive_seed_sequence` composed with ``default_rng``."""
    return np.random.default_rng(derive_seed_sequence(root, *path))


def describe_seed(seq: np.random.SeedSequence) -> str:
    """Human-readable identity of a derived sequence (for error messages:
    paste into ``SeedSequence(entropy, spawn_key=...)`` to replay)."""
    return f"SeedSequence(entropy={seq.entropy!r}, spawn_key={tuple(seq.spawn_key)!r})"


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce any seed-like value into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state), which
    lets a caller thread one stream through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when an experiment fans out over trials/processors and each stream
    must be independent yet reproducible from a single root seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} child generators")
    if isinstance(seed, np.random.Generator):
        # Spawn via the generator's own bit generator seed sequence when
        # available; fall back to drawing child seeds from the stream.
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if seed_seq is not None:
            return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
        child_seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
