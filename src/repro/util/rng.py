"""Deterministic randomness plumbing.

Every randomized component in the library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  All randomness flows through NumPy
generators so experiments are replayable bit-for-bit and independent parallel
streams can be derived with :func:`spawn_children`.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["as_generator", "spawn_children", "SeedLike"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce any seed-like value into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state), which
    lets a caller thread one stream through several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when an experiment fans out over trials/processors and each stream
    must be independent yet reproducible from a single root seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} child generators")
    if isinstance(seed, np.random.Generator):
        # Spawn via the generator's own bit generator seed sequence when
        # available; fall back to drawing child seeds from the stream.
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if seed_seq is not None:
            return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
        child_seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
