"""Small integer/logarithm helpers used across cost formulas.

The paper's bounds use ``lg`` (base-2 logarithm), iterated logarithms and
ceilings pervasively; centralizing them avoids subtle off-by-one mistakes in
the formula modules.
"""

from __future__ import annotations

import math

__all__ = ["ceil_div", "ilog2", "ilog", "log_star", "next_pow2", "lg", "safe_log_ratio"]


def ceil_div(a: int, b: int) -> int:
    """Exact integer ceiling of ``a / b`` for ``b > 0``.

    >>> ceil_div(7, 3)
    3
    >>> ceil_div(6, 3)
    2
    >>> ceil_div(0, 5)
    0
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a >= 0, got {a}")
    return -(-a // b)


def ilog2(n: int) -> int:
    """Floor of the base-2 logarithm of a positive integer.

    >>> ilog2(1)
    0
    >>> ilog2(8)
    3
    >>> ilog2(9)
    3
    """
    if n <= 0:
        raise ValueError(f"ilog2 requires n > 0, got {n}")
    return n.bit_length() - 1


def ilog(n: int, base: int) -> int:
    """Floor of ``log_base(n)`` computed without floating point drift.

    >>> ilog(27, 3)
    3
    >>> ilog(26, 3)
    2
    """
    if n <= 0:
        raise ValueError(f"ilog requires n > 0, got {n}")
    if base <= 1:
        raise ValueError(f"ilog requires base > 1, got {base}")
    k = 0
    power = 1
    while power * base <= n:
        power *= base
        k += 1
    return k


def log_star(n: float) -> int:
    """Iterated base-2 logarithm ``lg* n`` — how many times ``lg`` must be
    applied before the value drops to at most 1.

    >>> log_star(1)
    0
    >>> log_star(2)
    1
    >>> log_star(16)
    3
    >>> log_star(65536)
    4
    """
    if n < 0:
        raise ValueError(f"log_star requires n >= 0, got {n}")
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count


def next_pow2(n: int) -> int:
    """Smallest power of two that is ``>= n`` (with ``next_pow2(0) == 1``).

    >>> next_pow2(5)
    8
    >>> next_pow2(8)
    8
    """
    if n < 0:
        raise ValueError(f"next_pow2 requires n >= 0, got {n}")
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def lg(x: float) -> float:
    """Base-2 logarithm clamped below at 1 argument — the conventional
    ``lg`` of asymptotic bounds, where ``lg x`` is never negative.

    >>> lg(8.0)
    3.0
    >>> lg(0.5)
    0.0
    """
    if x <= 1.0:
        return 0.0
    return math.log2(x)


def safe_log_ratio(num: float, den: float) -> float:
    """Compute ``lg(num) / lg(den)`` with both logs clamped to at least 1,
    the standard reading of bounds such as ``lg p / lg g`` when ``g`` is
    close to 1 (the bound degenerates to ``lg p``).
    """
    return max(lg(num), 1.0) / max(lg(den), 1.0)
