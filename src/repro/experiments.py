"""Programmatic experiment registry.

The pytest benchmarks regenerate the paper's artifacts with assertions; this
module exposes the same experiments as plain functions returning JSON-ready
dicts, for scripting and for the CLI (``python -m repro experiment <name>
[--json out.json]``).  Every experiment takes explicit parameters with the
benchmark defaults and is deterministic under its ``seed``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from repro.core.params import MachineParams

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]


def table1_measured(p: int = 256, m: int = 16, L: float = 8.0, seed: int = 0) -> Dict[str, Any]:
    """Measured model times for the Table-1 problems on all four models."""
    from repro import BSPg, BSPm, QSMg, QSMm
    from repro.algorithms import broadcast, one_to_all, summation

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    machines = {
        "qsm_m": QSMm(global_),
        "qsm_g": QSMg(local),
        "bsp_m": BSPm(global_),
        "bsp_g": BSPg(local),
    }
    out: Dict[str, Any] = {"p": p, "m": m, "L": L, "g": local.g, "times": {}}
    for prob, runner in {
        "one_to_all": lambda mach: one_to_all(mach).time,
        "broadcast": lambda mach: broadcast(mach, 1).time,
        "summation": lambda mach: summation(mach, [1.0] * p)[0].time,
    }.items():
        out["times"][prob] = {}
        for name, mach in machines.items():
            mach.shared_memory.clear()
            out["times"][prob][name] = runner(mach)
    return out


def unbalanced_send_vs_optimal(
    p: int = 1024, m: int = 128, n: int = 60_000, epsilon: float = 0.2,
    trials: int = 25, seed: int = 0,
) -> Dict[str, Any]:
    """Theorem 6.2: Unbalanced-Send ratio to the offline optimum across the
    benchmark's four workload shapes."""
    from repro.scheduling import (
        bsp_g_routing_time,
        evaluate_schedule,
        offline_optimal_schedule,
        unbalanced_send,
    )
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    g = p / m
    cases = {
        "balanced": balanced_h_relation(p, max(1, n // p), seed=seed),
        "uniform": uniform_random_relation(p, n, seed=seed + 1),
        "zipf": zipf_h_relation(p, n, alpha=1.2, seed=seed + 2),
        "one_to_all": one_to_all_relation(p),
    }
    out: Dict[str, Any] = {"p": p, "m": m, "epsilon": epsilon, "workloads": {}}
    for name, rel in cases.items():
        opt = evaluate_schedule(offline_optimal_schedule(rel, m), m=m)
        ratios = []
        overloads = 0
        for t in range(trials):
            rep = evaluate_schedule(unbalanced_send(rel, m, epsilon, seed=seed + t), m=m)
            ratios.append(rep.completion_time / opt.completion_time)
            overloads += rep.overloaded
        out["workloads"][name] = {
            "optimal": opt.completion_time,
            "mean_ratio": float(np.mean(ratios)),
            "max_ratio": float(np.max(ratios)),
            "overload_rate": overloads / trials,
            "bsp_g_ratio": bsp_g_routing_time(rel, g) / opt.completion_time,
        }
    return out


def dynamic_stability(
    p: int = 256, m: int = 16, L: float = 8.0, w: int = 128,
    horizon: int = 20_000, seed: int = 0,
) -> Dict[str, Any]:
    """Theorems 6.5/6.7: the single-source flood sweep."""
    from repro.dynamic import (
        AlgorithmBProtocol,
        BSPgIntervalProtocol,
        SingleTargetAdversary,
        run_dynamic,
    )

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    g = local.g
    out: Dict[str, Any] = {"p": p, "m": m, "g": g, "w": w, "sweep": []}
    for beta_g in (0.5, 1.1, 2.0, 4.0):
        beta = beta_g / g
        trace = SingleTargetAdversary(p, w, beta=beta).generate(horizon, seed=seed)
        res_g = run_dynamic(BSPgIntervalProtocol(local, w), trace)
        res_m = run_dynamic(
            AlgorithmBProtocol(global_, w, alpha=beta, epsilon=0.25, seed=seed + 1),
            trace,
        )
        out["sweep"].append(
            {
                "beta_times_g": beta_g,
                "theory_slope": beta - 1 / g,
                "bsp_g": {"slope": res_g.backlog_slope(), "stable": res_g.is_stable()},
                "algorithm_b": {"slope": res_m.backlog_slope(), "stable": res_m.is_stable()},
            }
        )
    return out


def stability_under_loss(
    p: int = 64, m: int = 8, L: float = 4.0, w: int = 32,
    horizon: int = 4_000, seed: int = 0,
) -> Dict[str, Any]:
    """Theorems 6.5/6.7 under message loss: how far the reliable-transport
    retries push Algorithm B's stability frontier in.

    For each drop rate ``q``, a flit must survive the data *and* the ack
    traversal, so the effective arrival rate inflates to roughly
    ``beta / (1-q)^2`` plus the ack traffic; the sweep records the backlog
    slope of :class:`~repro.dynamic.protocols.LossyAlgorithmBProtocol`
    against the fault-free Algorithm B on the same trace.
    """
    from repro.dynamic import (
        AlgorithmBProtocol,
        LossyAlgorithmBProtocol,
        SingleTargetAdversary,
        run_dynamic,
    )

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    g = local.g
    out: Dict[str, Any] = {"p": p, "m": m, "g": g, "w": w, "sweep": []}
    for beta_g in (0.5, 1.5, 3.0):
        beta = beta_g / g
        trace = SingleTargetAdversary(p, w, beta=beta).generate(horizon, seed=seed)
        res_b = run_dynamic(
            AlgorithmBProtocol(global_, w, alpha=beta, seed=seed + 1), trace
        )
        entry: Dict[str, Any] = {
            "beta_times_g": beta_g,
            "algorithm_b": {"slope": res_b.backlog_slope(), "stable": res_b.is_stable()},
            "lossy": {},
        }
        for q in (0.05, 0.15, 0.3):
            res_q = run_dynamic(
                LossyAlgorithmBProtocol(
                    global_, w, alpha=beta, drop_rate=q, seed=seed + 1
                ),
                trace,
            )
            entry["lossy"][f"q={q:g}"] = {
                "slope": res_q.backlog_slope(),
                "stable": res_q.is_stable(),
                "effective_rate_inflation": 1.0 / (1.0 - q) ** 2,
            }
        out["sweep"].append(entry)
    return out


def leader_recognition_gap(m: int = 8, seed: int = 0) -> Dict[str, Any]:
    """Theorem 5.2: the ER-vs-CR Leader Recognition gap across p."""
    from repro.concurrent_read import leader_recognition_pramm, leader_recognition_qsm_m
    from repro.theory.bounds import er_cr_pramm_separation

    out: Dict[str, Any] = {"m": m, "sweep": []}
    for p in (128, 256, 512, 1024):
        leader = p // 3
        t_pram = leader_recognition_pramm(p, leader)[0].time
        t_qsm = leader_recognition_qsm_m(p, leader, m=m)[0].time
        out["sweep"].append(
            {
                "p": p,
                "pramm_time": t_pram,
                "qsm_m_time": t_qsm,
                "measured_gap": t_qsm / t_pram,
                "paper_separation": er_cr_pramm_separation(p, m),
            }
        )
    return out


def self_scheduling_transfer_experiment(
    p: int = 1024, m: int = 128, epsilon: float = 0.15, trials: int = 15, seed: int = 0
) -> Dict[str, Any]:
    """Section 2: the self-scheduling metric realized within (1+eps)."""
    from repro.algorithms import self_scheduling_transfer
    from repro.workloads import uniform_random_relation, zipf_h_relation

    out: Dict[str, Any] = {"p": p, "m": m, "epsilon": epsilon, "workloads": {}}
    for name, rel in {
        "uniform": uniform_random_relation(p, 50_000, seed=seed),
        "zipf": zipf_h_relation(p, 50_000, alpha=1.2, seed=seed + 1),
    }.items():
        ratios = [
            self_scheduling_transfer(rel, m, epsilon=epsilon, seed=seed + t)[2]
            for t in range(trials)
        ]
        out["workloads"][name] = {
            "mean_ratio": float(np.mean(ratios)),
            "max_ratio": float(np.max(ratios)),
        }
    return out


#: name -> callable returning a JSON-ready dict
EXPERIMENTS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "table1_measured": table1_measured,
    "unbalanced_send": unbalanced_send_vs_optimal,
    "dynamic_stability": dynamic_stability,
    "stability_under_loss": stability_under_loss,
    "leader_gap": leader_recognition_gap,
    "self_scheduling": self_scheduling_transfer_experiment,
}


def list_experiments() -> List[str]:
    """Registered experiment names."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **kwargs) -> Dict[str, Any]:
    """Run a registered experiment; unknown names raise :class:`KeyError`
    with the available choices."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {list_experiments()}")
    return EXPERIMENTS[name](**kwargs)
