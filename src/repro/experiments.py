"""Programmatic experiment registry.

The pytest benchmarks regenerate the paper's artifacts with assertions; this
module exposes the same experiments as plain functions returning JSON-ready
dicts, for scripting and for the CLI (``python -m repro experiment <name>
[--json out.json] [--jobs N]``).  Every experiment takes explicit parameters
with the benchmark defaults and is deterministic under its ``seed``.

Since the sweep-engine rewiring, every trial- or grid-looped experiment fans
its independent units out through :func:`repro.sweep.run_sweep`: per-trial
seeds are derived with :func:`repro.util.rng.derive_seed_sequence` on the
stable path ``(experiment, point, trial)`` — never ``seed + t`` arithmetic,
which collides across experiments sharing a root seed — and ``jobs > 1``
executes trials on a pluggable backend (work-stealing process pool by
default, optional MPI ranks via ``backend="mpi"``) with output
bit-identical to ``jobs=1`` (pinned by ``tests/test_sweep.py`` and
``tests/test_backends.py``).  Under the ``mpi`` backend, non-root ranks
return ``None`` — callers running under ``mpirun`` must treat ``None`` as
"worker rank, nothing to report".

The trial functions (module-level ``_*_trial`` / ``_*_point``) are the
units of parallelism: pure, picklable, seeded only through their
``SeedSequence`` argument.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from repro.core.params import MachineParams
from repro.sweep import SweepSpec, cached_offline_report, grid_points, run_sweep
from repro.util.rng import derive_seed_sequence

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
    "UnknownExperimentError",
]


class UnknownExperimentError(ValueError):
    """Raised for an unregistered experiment name; ``choices`` lists the
    registered ones (rendered without ``KeyError``'s escaped-quote repr)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.choices = list_experiments()
        super().__init__(
            f"unknown experiment {name!r}; choose from: {', '.join(self.choices)}"
        )


def table1_measured(
    p: int = 256, m: int = 16, L: float = 8.0, seed: int = 0, jobs: int = 1,
    backend: str = None,
) -> Dict[str, Any]:
    """Measured model times for the Table-1 problems on all four models.

    A single deterministic parameter point — always runs serially (``jobs``
    and ``backend`` are accepted for registry uniformity).
    """
    from repro import BSPg, BSPm, QSMg, QSMm
    from repro.algorithms import broadcast, one_to_all, summation

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    machines = {
        "qsm_m": QSMm(global_),
        "qsm_g": QSMg(local),
        "bsp_m": BSPm(global_),
        "bsp_g": BSPg(local),
    }
    out: Dict[str, Any] = {"p": p, "m": m, "L": L, "g": local.g, "times": {}}
    for prob, runner in {
        "one_to_all": lambda mach: one_to_all(mach).time,
        "broadcast": lambda mach: broadcast(mach, 1).time,
        "summation": lambda mach: summation(mach, [1.0] * p)[0].time,
    }.items():
        out["times"][prob] = {}
        for name, mach in machines.items():
            mach.shared_memory.clear()
            out["times"][prob][name] = runner(mach)
    return out


def _unbalanced_send_trial(rel, m: int, epsilon: float, seed) -> Dict[str, Any]:
    """One Unbalanced-Send trial: T/OPT ratio against the (cached) offline
    optimum plus the overload indicator."""
    from repro.scheduling import evaluate_schedule, unbalanced_send

    opt = cached_offline_report(rel, m)
    rep = evaluate_schedule(unbalanced_send(rel, m, epsilon, seed=seed), m=m)
    return {
        "ratio": rep.completion_time / opt.completion_time,
        "overloaded": int(rep.overloaded),
    }


def _sweep_errors(sweep) -> Dict[str, int]:
    """The error-policy block experiments attach when trials were skipped."""
    return {
        "skipped": sweep.skipped,
        "retried": sweep.retried,
        "retries": sweep.retries,
    }


def unbalanced_send_vs_optimal(
    p: int = 1024, m: int = 128, n: int = 60_000, epsilon: float = 0.2,
    trials: int = 25, seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None, include_telemetry: bool = False,
) -> Dict[str, Any]:
    """Theorem 6.2: Unbalanced-Send ratio to the offline optimum across the
    benchmark's four workload shapes."""
    from repro.scheduling import bsp_g_routing_time
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    def wseed(name: str):
        return derive_seed_sequence(seed, "unbalanced_send", "workload", name)

    g = p / m
    cases = {
        "balanced": balanced_h_relation(p, max(1, n // p), seed=wseed("balanced")),
        "uniform": uniform_random_relation(p, n, seed=wseed("uniform")),
        "zipf": zipf_h_relation(p, n, alpha=1.2, seed=wseed("zipf")),
        "one_to_all": one_to_all_relation(p),
    }
    # Warm the offline-schedule cache before the fan-out: forked workers
    # inherit the entries, so every trial's optimum is a cache hit.
    opts = {name: cached_offline_report(rel, m) for name, rel in cases.items()}
    spec = SweepSpec(
        name="unbalanced_send",
        fn=_unbalanced_send_trial,
        grid={name: {"rel": rel} for name, rel in cases.items()},
        trials=trials,
        common={"m": m, "epsilon": epsilon},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    by_point = sweep.results_by_point()
    out: Dict[str, Any] = {"p": p, "m": m, "epsilon": epsilon, "workloads": {}}
    for name, rel in cases.items():
        # skipped trials (on_error="skip"/"retry:N") come back as None;
        # aggregate over the trials that completed
        done = [t for t in by_point[name] if t is not None]
        ratios = [t["ratio"] for t in done]
        overloads = sum(t["overloaded"] for t in done)
        out["workloads"][name] = {
            "optimal": opts[name].completion_time,
            "mean_ratio": float(np.mean(ratios)) if ratios else float("nan"),
            "max_ratio": float(np.max(ratios)) if ratios else float("nan"),
            "overload_rate": overloads / len(done) if done else float("nan"),
            "bsp_g_ratio": bsp_g_routing_time(rel, g) / opts[name].completion_time,
        }
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    if include_telemetry:
        # execution telemetry (utilization, per-worker busy time, steals)
        # for the scaling benchmarks; scientific output is unaffected
        out["sweep_telemetry"] = sweep.telemetry()
    return out


def _dynamic_stability_point(
    p: int, m: int, L: float, w: int, horizon: int, beta_g: float, seed
) -> Dict[str, Any]:
    """One beta·g cell of the Theorem 6.5/6.7 sweep: BSP(g) vs Algorithm B
    on the same adversarial trace."""
    from repro.dynamic import (
        AlgorithmBProtocol,
        BSPgIntervalProtocol,
        SingleTargetAdversary,
        run_dynamic,
    )

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    g = local.g
    beta = beta_g / g
    trace_seed, proto_seed = seed.spawn(2)
    trace = SingleTargetAdversary(p, w, beta=beta).generate(horizon, seed=trace_seed)
    res_g = run_dynamic(BSPgIntervalProtocol(local, w), trace)
    res_m = run_dynamic(
        AlgorithmBProtocol(global_, w, alpha=beta, epsilon=0.25, seed=proto_seed),
        trace,
    )
    return {
        "beta_times_g": beta_g,
        "theory_slope": beta - 1 / g,
        "bsp_g": {"slope": res_g.backlog_slope(), "stable": res_g.is_stable()},
        "algorithm_b": {"slope": res_m.backlog_slope(), "stable": res_m.is_stable()},
    }


def dynamic_stability(
    p: int = 256, m: int = 16, L: float = 8.0, w: int = 128,
    horizon: int = 20_000, seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None,
) -> Dict[str, Any]:
    """Theorems 6.5/6.7: the single-source flood sweep."""
    local, _ = MachineParams.matched_pair(p=p, m=m, L=L)
    betas = (0.5, 1.1, 2.0, 4.0)
    spec = SweepSpec(
        name="dynamic_stability",
        fn=_dynamic_stability_point,
        grid={f"beta_g={bg:g}": {"beta_g": bg} for bg in betas},
        common={"p": p, "m": m, "L": L, "w": w, "horizon": horizon},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    out = {"p": p, "m": m, "g": local.g, "w": w,
           "sweep": [r for r in sweep.results if r is not None]}
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    return out


def _stability_under_loss_point(
    p: int, m: int, L: float, w: int, horizon: int, beta_g: float, drop_rates, seed
) -> Dict[str, Any]:
    """One beta·g cell of the loss sweep: fault-free Algorithm B plus one
    lossy run per drop rate, all on the same trace."""
    from repro.dynamic import (
        AlgorithmBProtocol,
        LossyAlgorithmBProtocol,
        SingleTargetAdversary,
        run_dynamic,
    )

    local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
    g = local.g
    beta = beta_g / g
    trace_seed, proto_seed = seed.spawn(2)
    trace = SingleTargetAdversary(p, w, beta=beta).generate(horizon, seed=trace_seed)
    res_b = run_dynamic(AlgorithmBProtocol(global_, w, alpha=beta, seed=proto_seed), trace)
    entry: Dict[str, Any] = {
        "beta_times_g": beta_g,
        "algorithm_b": {"slope": res_b.backlog_slope(), "stable": res_b.is_stable()},
        "lossy": {},
    }
    for q in drop_rates:
        res_q = run_dynamic(
            LossyAlgorithmBProtocol(
                global_, w, alpha=beta, drop_rate=q, seed=proto_seed
            ),
            trace,
        )
        entry["lossy"][f"q={q:g}"] = {
            "slope": res_q.backlog_slope(),
            "stable": res_q.is_stable(),
            "effective_rate_inflation": 1.0 / (1.0 - q) ** 2,
        }
    return entry


def stability_under_loss(
    p: int = 64, m: int = 8, L: float = 4.0, w: int = 32,
    horizon: int = 4_000, seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None,
) -> Dict[str, Any]:
    """Theorems 6.5/6.7 under message loss: how far the reliable-transport
    retries push Algorithm B's stability frontier in.

    For each drop rate ``q``, a flit must survive the data *and* the ack
    traversal, so the effective arrival rate inflates to roughly
    ``beta / (1-q)^2`` plus the ack traffic; the sweep records the backlog
    slope of :class:`~repro.dynamic.protocols.LossyAlgorithmBProtocol`
    against the fault-free Algorithm B on the same trace.
    """
    local, _ = MachineParams.matched_pair(p=p, m=m, L=L)
    betas = (0.5, 1.5, 3.0)
    spec = SweepSpec(
        name="stability_under_loss",
        fn=_stability_under_loss_point,
        grid={f"beta_g={bg:g}": {"beta_g": bg} for bg in betas},
        common={
            "p": p, "m": m, "L": L, "w": w, "horizon": horizon,
            "drop_rates": (0.05, 0.15, 0.3),
        },
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    out = {"p": p, "m": m, "g": local.g, "w": w,
           "sweep": [r for r in sweep.results if r is not None]}
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    return out


def _leader_gap_point(p: int, m: int, seed) -> Dict[str, Any]:
    """One machine size of the Theorem-5.2 sweep (deterministic)."""
    from repro.concurrent_read import leader_recognition_pramm, leader_recognition_qsm_m
    from repro.theory.bounds import er_cr_pramm_separation

    leader = p // 3
    t_pram = leader_recognition_pramm(p, leader)[0].time
    t_qsm = leader_recognition_qsm_m(p, leader, m=m)[0].time
    return {
        "p": p,
        "pramm_time": t_pram,
        "qsm_m_time": t_qsm,
        "measured_gap": t_qsm / t_pram,
        "paper_separation": er_cr_pramm_separation(p, m),
    }


def leader_recognition_gap(
    m: int = 8, seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None,
) -> Dict[str, Any]:
    """Theorem 5.2: the ER-vs-CR Leader Recognition gap across p."""
    spec = SweepSpec(
        name="leader_gap",
        fn=_leader_gap_point,
        grid={f"p={p}": {"p": p} for p in (128, 256, 512, 1024)},
        common={"m": m},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    out = {"m": m, "sweep": [r for r in sweep.results if r is not None]}
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    return out


def _self_scheduling_trial(rel, m: int, epsilon: float, seed) -> float:
    """One realized-cost ratio of the Section-2 transfer."""
    from repro.algorithms import self_scheduling_transfer

    return self_scheduling_transfer(rel, m, epsilon=epsilon, seed=seed)[2]


def self_scheduling_transfer_experiment(
    p: int = 1024, m: int = 128, epsilon: float = 0.15, trials: int = 15,
    seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None,
) -> Dict[str, Any]:
    """Section 2: the self-scheduling metric realized within (1+eps)."""
    from repro.workloads import uniform_random_relation, zipf_h_relation

    def wseed(name: str):
        return derive_seed_sequence(seed, "self_scheduling", "workload", name)

    cases = {
        "uniform": uniform_random_relation(p, 50_000, seed=wseed("uniform")),
        "zipf": zipf_h_relation(p, 50_000, alpha=1.2, seed=wseed("zipf")),
    }
    spec = SweepSpec(
        name="self_scheduling",
        fn=_self_scheduling_trial,
        grid={name: {"rel": rel} for name, rel in cases.items()},
        trials=trials,
        common={"m": m, "epsilon": epsilon},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    by_point = sweep.results_by_point()
    out: Dict[str, Any] = {"p": p, "m": m, "epsilon": epsilon, "workloads": {}}
    for name in cases:
        ratios = [r for r in by_point[name] if r is not None]
        out["workloads"][name] = {
            "mean_ratio": float(np.mean(ratios)) if ratios else float("nan"),
            "max_ratio": float(np.max(ratios)) if ratios else float("nan"),
        }
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    return out


def sensitivity_grid(
    p_values=(256, 1024, 4096), g_values=(2.0, 8.0), L_values=(4.0, 16.0),
    y_grid: int = 4000, seed: int = 0, jobs: int = 1, on_error: str = "raise",
    backend: str = None,
) -> Dict[str, Any]:
    """Theorem 4.1 sensitivity check fanned over a ``(p, g, L)`` grid: the
    numeric optimum of the constrained minimization vs the paper's closed
    form at every cell (brute-force per cell, so the grid is the
    CPU-heaviest deterministic sweep in the registry)."""
    from repro.theory.sensitivity import sensitivity_point

    spec = SweepSpec(
        name="sensitivity_grid",
        fn=sensitivity_point,
        grid=grid_points(p=list(p_values), g=list(g_values), L=list(L_values)),
        common={"y_grid": y_grid},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    cells = [c for c in sweep.results if c is not None]
    worst = min(cell["closed_over_numeric"] for cell in cells) if cells else float("nan")
    out = {"y_grid": y_grid, "cells": cells, "min_closed_over_numeric": worst}
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    return out


_ABLATION_MODELS = ("bsp_g", "bsp_m", "self_scheduling")


def _ablation_machine(compiled, model: str, g: float, m: int, L: float):
    """A fresh machine for one pricing-ablation cell (message-passing
    models only — the recorded schedule routes point-to-point flits)."""
    from repro.models.bsp_g import BSPg
    from repro.models.bsp_m import BSPm
    from repro.models.self_scheduling import SelfSchedulingBSPm

    params = MachineParams(p=compiled.p, g=g, m=m, L=L)
    if model == "bsp_g":
        return BSPg(params)
    if model == "bsp_m":
        return BSPm(params)
    if model == "self_scheduling":
        return SelfSchedulingBSPm(params)
    raise ValueError(
        f"unknown ablation model {model!r}; choose from {_ABLATION_MODELS}"
    )


def _replay_summary(res) -> Dict[str, Any]:
    """JSON-ready cell output of one replay."""
    rec = res.records[0]
    return {
        "model_time": float(res.time),
        "supersteps": len(res.records),
        "c_m": rec.stats.get("c_m"),
    }


def _pricing_ablation_trial(
    compiled, model: str, g: float, m: int, L: float, seed
) -> Dict[str, Any]:
    """One pricing-ablation cell: replay the recorded schedule under one
    ``(g, m, L)`` parameter point (deterministic — ``seed`` unused)."""
    return _replay_summary(compiled.replay(_ablation_machine(compiled, model, g, m, L)))


def _pricing_ablation_batch(params_list, seeds) -> List[Dict[str, Any]]:
    """Fused pricing-ablation pass: one :func:`repro.core.batched.replay_batch`
    call prices the shared structure under every cell of the group."""
    from repro.core.batched import replay_batch

    compiled = params_list[0]["compiled"]
    machines = [
        _ablation_machine(pp["compiled"], pp["model"], pp["g"], pp["m"], pp["L"])
        for pp in params_list
    ]
    return [_replay_summary(res) for res in replay_batch(compiled, machines)]


def _pricing_ablation_fingerprint(params) -> Any:
    """Cells sharing one compiled schedule and one model class fuse."""
    return (id(params["compiled"]), params["model"])


_pricing_ablation_trial.batch_run = _pricing_ablation_batch
_pricing_ablation_trial.batch_fingerprint = _pricing_ablation_fingerprint


def pricing_ablation(
    p: int = 256, n: int = 40_000, schedule_m: int = 64, epsilon: float = 0.2,
    model: str = "bsp_m", g_values=(2.0,),
    m_values=(16, 24, 32, 48, 64, 96, 128, 192),
    L_values=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    seed: int = 0, jobs: int = 1, on_error: str = "raise", backend: str = None,
    batch: bool = None, include_telemetry: bool = False,
) -> Dict[str, Any]:
    """Table-1-style pricing ablation of one recorded routing schedule.

    Routes a uniform h-relation once with Unbalanced-Send, compiles the
    routing superstep (:func:`repro.scheduling.execute.compile_schedule`),
    and re-prices the *identical* structure across a ``(g, m, L)`` grid —
    the paper's local-vs-global comparison at fixed communication pattern.
    The trial function advertises ``batch_run``/``batch_fingerprint``, so
    :func:`repro.sweep.run_sweep` fuses the whole grid into
    :func:`repro.core.batched.replay_batch` passes by default; pass
    ``batch=False`` for the sequential per-cell path (bit-identical, used
    by ``benchmarks/bench_parallel_scaling.py`` to measure amortization).
    """
    from repro.scheduling.execute import compile_schedule
    from repro.scheduling.static_send import unbalanced_send
    from repro.workloads import uniform_random_relation

    rel = uniform_random_relation(
        p, n, seed=derive_seed_sequence(seed, "pricing_ablation", "workload")
    )
    sched = unbalanced_send(
        rel, schedule_m, epsilon,
        seed=derive_seed_sequence(seed, "pricing_ablation", "route"),
    )
    compiled = compile_schedule(sched)
    spec = SweepSpec(
        name="pricing_ablation",
        fn=_pricing_ablation_trial,
        grid=grid_points(g=list(g_values), m=list(m_values), L=list(L_values)),
        common={"compiled": compiled, "model": model},
        seed=seed,
    )
    sweep = run_sweep(spec, jobs=jobs, on_error=on_error, backend=backend, batch=batch)
    if sweep is None:
        return None  # mpi worker rank: rank 0 holds the result
    cells = [
        {"point": rec.point, **(val if val is not None else {"model_time": None})}
        for rec, val in zip(sweep.records, sweep.results)
    ]
    out: Dict[str, Any] = {
        "p": p, "n": int(rel.n), "schedule_m": schedule_m, "model": model,
        "trials": sweep.trials, "cells": cells,
        "batch": dict(sweep.batch_stats),
    }
    if sweep.skipped:
        out["sweep_errors"] = _sweep_errors(sweep)
    if include_telemetry:
        out["sweep_telemetry"] = sweep.telemetry()
    return out


#: name -> callable returning a JSON-ready dict
EXPERIMENTS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "table1_measured": table1_measured,
    "unbalanced_send": unbalanced_send_vs_optimal,
    "dynamic_stability": dynamic_stability,
    "stability_under_loss": stability_under_loss,
    "leader_gap": leader_recognition_gap,
    "self_scheduling": self_scheduling_transfer_experiment,
    "sensitivity_grid": sensitivity_grid,
    "pricing_ablation": pricing_ablation,
}


def list_experiments() -> List[str]:
    """Registered experiment names."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **kwargs) -> Dict[str, Any]:
    """Run a registered experiment; unknown names raise
    :class:`UnknownExperimentError` with the available choices."""
    if name not in EXPERIMENTS:
        raise UnknownExperimentError(name)
    return EXPERIMENTS[name](**kwargs)
