"""The ``repro serve`` daemon: JSON-over-HTTP front end wiring admission,
execution, the persistent store, and telemetry together.

Endpoints (all JSON):

``POST /v1/submit``
    Long-poll submission.  The body names a kind, params, seed, and an
    optional relative ``deadline_s``.  The handler blocks until the
    request is served or shed, then answers with the structured payload
    and matching HTTP status — a client never hangs on an unanswered
    accepted request.
``GET /v1/healthz``
    Liveness + drain state + queue/in-flight gauges.
``GET /v1/metrics``
    The :class:`repro.serve.telemetry.ServerMetrics` snapshot (a
    ``repro.obs`` metrics dump; ``repro compare`` consumes it as-is).
    ``?format=prom`` renders the same registry as Prometheus text
    exposition (format 0.0.4) for a stock scraper; an unknown
    ``?format=`` is a structured 406 ``E_NOT_ACCEPTABLE``.
``GET /v1/events``
    JSONL long-poll stream of admission-round events (window size,
    overloaded slots, request count, queue depth, cache hits).
    ``?since=<seq>`` resumes after a cursor, ``?timeout=<s>`` bounds the
    poll, ``?max=<n>`` caps the batch; the latest sequence number rides
    the ``X-Repro-Events-Seq`` header so an empty poll still advances
    nothing and loses nothing.  ``python -m repro top`` rides this.
``GET /v1/stats``
    Store statistics, quarantine list, admission/executor config.
``POST /v1/drain``
    Programmatic equivalent of SIGTERM: stop admitting, finish queued
    work, then shut down.

Every response carries an explicit ``Content-Length`` and a charset on
its ``Content-Type`` (JSON replies are ``application/json;
charset=utf-8``), on every path — including errors.

Drain discipline (the zero-loss guarantee): ``drain()`` closes
admission (new submissions shed with ``E_DRAINING``), waits for the
executor's outstanding counter to hit zero — every accepted request has
its completion event set — waits for all handler threads to finish
writing responses, and only then shuts the listener down.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.chaos import ChaosPlan
from repro.serve.executor import ExecutorConfig, RequestExecutor
from repro.serve.protocol import (
    KINDS,
    PROTOCOL_VERSION,
    Request,
    ServeError,
    error_payload,
    estimate_cost,
    ok_payload,
    request_fingerprint,
)
from repro.serve.telemetry import ServerMetrics
from repro.store.disk import DiskStore

__all__ = ["ReproServer"]

#: request bodies above this are rejected outright (E_BAD_REQUEST)
MAX_BODY_BYTES = 1 << 20
#: hard cap on how long a submit handler will wait for its completion
#: event — a backstop against executor bugs, not a normal code path
SUBMIT_WAIT_CAP_S = 600.0
#: ceiling on a single /v1/events long-poll (clients re-poll with their
#: cursor; an unbounded wait would pin handler threads through a drain)
EVENTS_POLL_CAP_S = 55.0


class _UnixThreadingHTTPServer(ThreadingHTTPServer):
    """HTTP over a Unix-domain socket (``repro serve --uds /path.sock``).

    ``HTTPServer.server_bind`` unpacks ``host, port = server_address[:2]``
    — an AF_UNIX address is a single path string, so that base method is
    bypassed in favor of the raw ``TCPServer`` bind plus fixed
    name/port attributes (only used for the ``Server:`` header and
    logging, neither meaningful on a socket file).
    """

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (str, os.PathLike)) and os.path.exists(path):
            os.unlink(path)  # stale socket from a previous daemon
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0

    def server_close(self) -> None:
        super().server_close()
        path = self.server_address
        if isinstance(path, (str, os.PathLike)):
            try:
                os.unlink(path)
            except OSError:
                pass


class ReproServer:
    """Owns the HTTP listener and the serve stack; one per process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: Optional[AdmissionConfig] = None,
        executor: Optional[ExecutorConfig] = None,
        store: Optional[DiskStore] = None,
        chaos: Optional[ChaosPlan] = None,
        request_timeout: float = 30.0,
        uds: Optional[str] = None,
    ) -> None:
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(admission or AdmissionConfig())
        self.executor = RequestExecutor(
            self.admission,
            self.metrics,
            config=executor,
            store=store,
            chaos=chaos,
        )
        self.store = store
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._responding = 0  # handler threads between admission and reply
        self._responding_lock = threading.Lock()
        self._responding_done = threading.Condition(self._responding_lock)
        self._drained = threading.Event()
        self._started = False

        handler = _make_handler(self, request_timeout)
        self.uds = uds
        if uds is not None:
            self.httpd: ThreadingHTTPServer = _UnixThreadingHTTPServer(
                uds, handler
            )
        else:
            self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self.uds is not None:
            return (self.uds, 0)
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        if self.uds is not None:
            return f"http+unix://{self.uds}"
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start executor threads and the listener (non-blocking)."""
        self.executor.start()
        self._started = True
        t = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        t.start()
        self._http_thread = t

    def serve_until_drained(self) -> None:
        """Block until :meth:`drain` completes (the CLI's main loop)."""
        self._drained.wait()

    def drain(self, timeout: Optional[float] = 60.0) -> bool:
        """Graceful shutdown: shed new work, finish accepted work, stop.

        Returns ``True`` if every accepted request was answered within
        ``timeout``.  Safe to call more than once (SIGTERM + atexit).
        """
        self.admission.start_drain()
        self.metrics.emit_event("drain")  # wakes /v1/events long-pollers
        clean = self.executor.wait_idle(timeout)
        # every completion event is set; wait for handlers to finish
        # writing their responses before tearing the listener down
        end = None if timeout is None else time.monotonic() + timeout
        with self._responding_lock:
            while self._responding:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    clean = False
                    break
                self._responding_done.wait(remaining if remaining is not None else 0.5)
        self.executor.stop()
        if self._started:
            self.httpd.shutdown()
        self.httpd.server_close()
        self._drained.set()
        return clean

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        import signal

        def _handle(signum, frame):  # pragma: no cover - signal path
            threading.Thread(
                target=self.drain, name="repro-serve-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    # -- submission (called from handler threads) ----------------------
    def submit(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Validate, admit, wait, and build the (status, payload) reply."""
        self.metrics.inc("requests.submitted")
        try:
            req = self._build_request(body)
        except ServeError as err:
            self.metrics.shed(err.code)
            return err.http_status, error_payload(err)
        try:
            self.executor.check_quarantine(req.fingerprint)
            depth = self.admission.submit(req)
        except ServeError as err:
            self.metrics.shed(err.code)
            return err.http_status, error_payload(err)
        self.executor.note_admitted()
        self.metrics.gauge("queue.depth", depth)
        with self._responding_lock:
            self._responding += 1
        try:
            return self._await_reply(req)
        finally:
            with self._responding_lock:
                self._responding -= 1
                self._responding_done.notify_all()

    def _await_reply(self, req: Request) -> Tuple[int, Dict[str, Any]]:
        event: threading.Event = req.extra["event"]
        if not event.wait(SUBMIT_WAIT_CAP_S):  # pragma: no cover - backstop
            err = ServeError(
                "E_INTERNAL",
                f"no completion within {SUBMIT_WAIT_CAP_S}s (executor wedged?)",
            )
            return err.http_status, error_payload(err)
        error: Optional[ServeError] = req.extra.get("error")
        if error is not None:
            return error.http_status, error_payload(error)
        outcome = req.extra["result"]
        payload = ok_payload(
            outcome["payload"],
            kind=req.kind,
            seed=req.seed,
            fingerprint=req.fingerprint,
            cached=outcome["cached"],
            attempts=outcome["attempts"],
            cost=req.cost,
        )
        return 200, payload

    def _build_request(self, body: Dict[str, Any]) -> Request:
        if not isinstance(body, dict):
            raise ServeError("E_BAD_REQUEST", "body must be a JSON object")
        kind = body.get("kind")
        if kind not in KINDS:
            raise ServeError(
                "E_BAD_REQUEST", f"kind must be one of {KINDS}, got {kind!r}"
            )
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ServeError("E_BAD_REQUEST", "params must be a JSON object")
        try:
            seed = int(body.get("seed", 0))
        except (TypeError, ValueError):
            raise ServeError("E_BAD_REQUEST", f"seed must be an int, got "
                             f"{body.get('seed')!r}")
        deadline_s = body.get("deadline_s")
        now = time.monotonic()
        deadline = None
        if deadline_s is not None:
            try:
                deadline = now + float(deadline_s)
            except (TypeError, ValueError):
                raise ServeError(
                    "E_BAD_REQUEST",
                    f"deadline_s must be a number, got {deadline_s!r}",
                )
        try:
            cost = estimate_cost(kind, params)
        except (TypeError, ValueError) as exc:
            raise ServeError("E_BAD_REQUEST", f"bad params: {exc}")
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        return Request(
            seq=seq,
            kind=kind,
            params=params,
            seed=seed,
            fingerprint=request_fingerprint(kind, params, seed),
            cost=cost,
            deadline=deadline,
            submitted=now,
            extra={"event": threading.Event()},
        )

    # -- introspection -------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "protocol_version": PROTOCOL_VERSION,
            "status": "draining" if self.admission.draining else "serving",
            "queue_depth": self.admission.depth(),
            "in_flight": self.executor.in_flight(),
            "outstanding": self.executor.outstanding(),
        }

    def stats(self) -> Dict[str, Any]:
        cfg = self.admission.config
        ecfg = self.executor.config
        out: Dict[str, Any] = {
            "ok": True,
            "admission": {
                "budget_m": cfg.budget_m,
                "epsilon": cfg.epsilon,
                "max_queue": cfg.max_queue,
                "oversized_factor": cfg.oversized_factor,
                "max_batch": cfg.max_batch,
                "max_cost": self.admission.max_cost,
            },
            "executor": {
                "workers": ecfg.workers,
                "max_attempts": ecfg.max_attempts,
                "quarantine_after": ecfg.quarantine_after,
                "engine": ecfg.engine,
            },
            "quarantined": self.executor.quarantined(),
        }
        if self.store is not None:
            out["store"] = self.store.stats().to_dict()
            out["store_path"] = str(self.store.root)
        return out


def _make_handler(server: ReproServer, request_timeout: float):
    """Bind a handler class to one :class:`ReproServer` instance."""

    class Handler(BaseHTTPRequestHandler):
        # slow-client stall protection: a socket that stops sending mid
        # body times out instead of pinning a handler thread forever
        timeout = request_timeout
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        def log_message(self, fmt, *args):  # quiet by default
            pass

        # -- helpers ---------------------------------------------------
        def _reply_bytes(
            self,
            status: int,
            blob: bytes,
            content_type: str,
            extra_headers: Optional[Dict[str, str]] = None,
        ) -> None:
            """Every reply goes through here: explicit Content-Length and
            a charset-qualified Content-Type on every path."""
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            for key, value in (extra_headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(blob)

        def _reply(self, status: int, payload: Dict[str, Any]) -> None:
            self._reply_bytes(
                status, json.dumps(payload).encode(),
                "application/json; charset=utf-8",
            )

        def _reply_error(self, err: ServeError) -> None:
            self._reply(err.http_status, error_payload(err))

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise ServeError(
                    "E_BAD_REQUEST",
                    f"body of {length} bytes exceeds the {MAX_BODY_BYTES} "
                    f"byte limit",
                )
            raw = self.rfile.read(length) if length else b"{}"
            try:
                return json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError("E_BAD_REQUEST", f"body is not JSON: {exc}")

        def _query(self) -> Tuple[str, Dict[str, str]]:
            """Split the request target into (path, last-wins query dict)."""
            parts = urlsplit(self.path)
            query = {
                k: v[-1] for k, v in parse_qs(parts.query, keep_blank_values=True).items()
            }
            return parts.path, query

        def _check_format(self, query: Dict[str, str], *supported: str) -> str:
            """Validate ``?format=`` against the endpoint's renderings
            (the first entry is the default); unknown values raise the
            structured 406."""
            fmt = query.get("format", supported[0])
            if fmt not in supported:
                raise ServeError(
                    "E_NOT_ACCEPTABLE",
                    f"unknown format {fmt!r}",
                    supported=list(supported),
                )
            return fmt

        def _get_metrics(self, query: Dict[str, str]) -> None:
            fmt = self._check_format(query, "json", "prom")
            if fmt == "prom":
                from repro.obs.prom import PROM_CONTENT_TYPE, prometheus_exposition

                text = prometheus_exposition(server.metrics.snapshot())
                self._reply_bytes(200, text.encode(), PROM_CONTENT_TYPE)
            else:
                self._reply(200, {"ok": True, "metrics": server.metrics.snapshot()})

        def _get_events(self, query: Dict[str, str]) -> None:
            self._check_format(query, "jsonl")
            try:
                since = int(query.get("since", 0))
                timeout = min(float(query.get("timeout", 10.0)), EVENTS_POLL_CAP_S)
                limit = max(1, int(query.get("max", 1000)))
            except (TypeError, ValueError) as exc:
                raise ServeError("E_BAD_REQUEST", f"bad events query: {exc}")
            events, latest = server.metrics.wait_events(
                since, timeout=timeout, limit=limit
            )
            blob = "".join(json.dumps(e) + "\n" for e in events).encode()
            self._reply_bytes(
                200, blob, "application/x-ndjson; charset=utf-8",
                extra_headers={"X-Repro-Events-Seq": str(latest)},
            )

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:
            try:
                path, query = self._query()
                try:
                    if path == "/v1/healthz":
                        self._check_format(query, "json")
                        self._reply(200, server.healthz())
                    elif path == "/v1/metrics":
                        self._get_metrics(query)
                    elif path == "/v1/events":
                        self._get_events(query)
                    elif path == "/v1/stats":
                        self._check_format(query, "json")
                        self._reply(200, server.stats())
                    else:
                        raise ServeError(
                            "E_BAD_REQUEST", f"unknown path {self.path}"
                        )
                except ServeError as err:
                    self._reply_error(err)
            except (BrokenPipeError, ConnectionResetError):  # client went away
                pass

        def do_POST(self) -> None:
            try:
                path, _query = self._query()
                if path == "/v1/submit":
                    try:
                        body = self._read_body()
                    except ServeError as err:
                        self._reply_error(err)
                        return
                    status, payload = server.submit(body)
                    self._reply(status, payload)
                elif path == "/v1/drain":
                    self._reply(202, {"ok": True, "status": "draining"})
                    threading.Thread(
                        target=server.drain, name="repro-serve-drain", daemon=True
                    ).start()
                else:
                    self._reply_error(
                        ServeError("E_BAD_REQUEST", f"unknown path {self.path}")
                    )
            except (BrokenPipeError, ConnectionResetError):
                pass

    return Handler
