"""Unbalanced-Send admission control: the paper's §6 scheduler as a
server-side queueing discipline.

The daemon eats its own dogfood.  Theorem 6.2's Unbalanced-Send schedules
``p`` processors with ``x_i`` flits each against a global bandwidth ``m``
by drawing a uniform start slot in a window ``W = ceil((1+eps)·n/m)`` and
occupying ``x_i`` cyclic slots; oversized senders (``x_i > W``) start at
slot 0.  Here the mapping is *request = processor, estimated cost =
x_i, global budget m = flits the backend may carry per slot*:

* queued requests are batched into **rounds**; each round draws seeded
  uniform start slots over its own window and is serviced in
  ``(start_slot, submission_seq)`` order — cheap requests interleave
  fairly ahead of heavyweight sweeps instead of convoying behind them,
  exactly the property the paper proves for unbalanced traffic;
* a request whose cost exceeds ``oversized_factor × budget_m`` (more
  traffic than ``oversized_factor`` exclusive slots of budget) is **shed
  at submission** with ``E_OVERSIZED`` — the serving analogue of the
  paper's oversized senders, which would monopolize the window;
* the queue is **bounded**: beyond ``max_queue`` pending requests,
  submission fails fast with ``E_QUEUE_FULL`` (429-style) — never a hang;
* per-round telemetry (window, overloaded slots — slots whose drawn load
  exceeds ``m`` — queue depth) flows to :mod:`repro.serve.telemetry`.

The draw is seeded per ``(server_seed, round_index)`` so a replay of the
same submission sequence schedules identically — chaos tests rely on it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from math import ceil
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.serve.protocol import Request, ServeError
from repro.util.rng import as_generator, derive_seed_sequence

__all__ = ["AdmissionConfig", "AdmissionController", "Round"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission discipline."""

    budget_m: int = 4096  # flits per slot the backend is budgeted for
    epsilon: float = 0.2  # window slack, as in send_window()
    max_queue: int = 64  # pending requests before E_QUEUE_FULL
    oversized_factor: int = 64  # shed when cost > factor * budget_m
    max_batch: int = 16  # requests scheduled per round
    seed: int = 0  # root of the per-round start-slot draws

    def __post_init__(self) -> None:
        if self.budget_m < 1:
            raise ValueError(f"budget_m must be >= 1, got {self.budget_m}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.oversized_factor < 1:
            raise ValueError(
                f"oversized_factor must be >= 1, got {self.oversized_factor}"
            )
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if not self.epsilon >= 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")


@dataclass
class Round:
    """One scheduled batch: requests in Unbalanced-Send service order."""

    index: int
    window: int
    total_cost: int
    overloaded_slots: int
    #: ``(start_slot, request)`` in service order
    order: List[Tuple[int, Request]] = field(default_factory=list)


class AdmissionController:
    """Bounded queue + per-round Unbalanced-Send scheduling (thread-safe)."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._queue: Deque[Request] = deque()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._rounds = 0
        self._draining = False
        self.max_cost = config.oversized_factor * config.budget_m

    # ------------------------------------------------------------------
    # submission side
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Admit a request; returns queue depth after admission.

        Raises :class:`ServeError` with ``E_DRAINING``, ``E_OVERSIZED`` or
        ``E_QUEUE_FULL`` — the three explicit sheds.  Admission is the
        point of no return: an admitted request is either served or
        answered with a structured error, never silently dropped.
        """
        if request.cost > self.max_cost:
            raise ServeError(
                "E_OVERSIZED",
                f"request cost {request.cost} flits exceeds the admission "
                f"ceiling {self.max_cost} "
                f"(oversized_factor={self.config.oversized_factor} × "
                f"budget_m={self.config.budget_m})",
                cost=request.cost,
                max_cost=self.max_cost,
            )
        with self._lock:
            if self._draining:
                raise ServeError(
                    "E_DRAINING", "server is draining; not accepting new work"
                )
            if len(self._queue) >= self.config.max_queue:
                raise ServeError(
                    "E_QUEUE_FULL",
                    f"admission queue is at its bound "
                    f"({self.config.max_queue} pending requests)",
                    queue_depth=len(self._queue),
                )
            self._queue.append(request)
            depth = len(self._queue)
            self._nonempty.notify()
            return depth

    def start_drain(self) -> None:
        """Stop admitting; already-queued requests still get served."""
        with self._lock:
            self._draining = True
            self._nonempty.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # ------------------------------------------------------------------
    # dispatch side
    # ------------------------------------------------------------------
    def next_round(self, timeout: Optional[float] = None) -> Optional[Round]:
        """Block until work is pending, then schedule up to ``max_batch``
        requests with the Unbalanced-Send draw.  Returns ``None`` on
        timeout (or when woken empty during drain) so the dispatcher loop
        can re-check its stop flag."""
        with self._lock:
            if not self._queue:
                self._nonempty.wait(timeout)
            if not self._queue:
                return None
            batch = [
                self._queue.popleft()
                for _ in range(min(self.config.max_batch, len(self._queue)))
            ]
            self._rounds += 1
            index = self._rounds
        return self._schedule(index, batch)

    def _schedule(self, index: int, batch: List[Request]) -> Round:
        """The §6 draw over one batch (see module docstring)."""
        cfg = self.config
        costs = np.asarray([r.cost for r in batch], dtype=np.int64)
        total = int(costs.sum())
        window = max(1, ceil((1.0 + cfg.epsilon) * total / cfg.budget_m))
        rng = as_generator(derive_seed_sequence(cfg.seed, "admission", index))
        starts = rng.integers(0, window, size=len(batch))
        # the paper's oversized rule: senders with more flits than the
        # window has slots start deterministically at slot 0
        starts[costs > window] = 0
        order = sorted(
            zip((int(s) for s in starts), batch), key=lambda e: (e[0], e[1].seq)
        )
        # overloaded-slot accounting: each request lays its cost cyclically
        # one flit per slot from its start; slots carrying > m flits are
        # overloaded (the paper charges these a penalty — the server just
        # counts them as backpressure telemetry)
        load = np.zeros(window, dtype=np.int64)
        for start, req in zip(starts, batch):
            q, rem = divmod(int(req.cost), window)
            if q:
                load += q
            if rem:
                slots = (int(start) + np.arange(rem)) % window
                load[slots] += 1
        overloaded = int((load > cfg.budget_m).sum())
        return Round(
            index=index,
            window=window,
            total_cost=total,
            overloaded_slots=overloaded,
            order=order,
        )
