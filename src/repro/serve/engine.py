"""The ``--engine process`` compute backend for ``repro serve``: route
handler execution into a persistent process pool so CPU-bound requests
(scenario routing, experiment sweeps) actually run in parallel instead
of time-slicing one GIL.

The thread engine (the default) runs handlers inline on the executor's
worker threads — right for I/O-light serving, cache-heavy traffic, and
single-core boxes.  The process engine keeps the *same* thread pool for
admission/retry/caching bookkeeping but ships the pure compute —
:func:`repro.serve.executor.run_scenario` and the experiment kinds —
to long-lived worker processes via :class:`concurrent.futures.
ProcessPoolExecutor`.

Error translation is the load-bearing part.  :class:`ServeError` does
*not* survive pickling (its constructor validates the code but
``BaseException.args`` only carries the formatted message), and
:class:`RunAborted` requires a ``partial`` RunResult the parent never
uses.  So the worker never lets an exception cross the process
boundary raw: :func:`_engine_call` returns a tagged tuple —

* ``("ok", payload, spans)`` — the handler's dict, pickled back
  verbatim, so a process-served answer is bit-identical to the in-thread
  call; ``spans`` is the worker's scratch-tracer dump
  (:func:`repro.obs.tracer.export_spans`) when the parent asked for it,
  else ``None`` — the parent splices the *real* worker spans under a
  ``serve <kind>`` span on its own tracer, replacing nothing with
  synthesis;
* ``("serve_error", code, detail, extra)`` — a structured rejection,
  re-raised parent-side as a real :class:`ServeError` (deadline aborts
  are folded into ``E_DEADLINE`` here, exactly as the thread path does);
* ``("exc", type_name, message, traceback)`` — anything else, re-raised
  as :class:`RemoteCrash` so the executor's retry → quarantine state
  machine sees an ordinary crash.

A hard worker death (``BrokenProcessPool``) is handled the same way the
sweep's pool-steal backend handles it: the pool is rebuilt and the one
affected request surfaces as a retryable :class:`RemoteCrash` — the
daemon loses capacity for milliseconds, never a request.

Deadlines cross the boundary as *remaining seconds*, re-anchored to the
worker's own monotonic clock at entry, so the engine never assumes the
two processes share a clock epoch.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional, Tuple

__all__ = ["ENGINES", "ProcessEngine", "RemoteCrash"]

#: compute engines the executor accepts (``ExecutorConfig.engine``)
ENGINES = ("thread", "process")


class RemoteCrash(RuntimeError):
    """A handler crashed in a pool worker; carries the remote traceback.

    Deliberately a plain ``RuntimeError`` subclass: the executor's
    generic-exception path (retry, backoff, quarantine) must treat a
    remote crash exactly like an in-thread one.
    """

    def __init__(self, type_name: str, message: str, traceback_text: str = "") -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.remote_traceback = traceback_text


def _engine_init() -> None:
    """Worker-process initializer (runs once per worker, at fork).

    A fork-inherited tracer/ledger would record rows nobody collects;
    real capture is per call — ``collect_spans`` installs a scratch
    tracer and ships its dump back with the result.
    """
    from repro.obs.ledger import uninstall_ledger
    from repro.obs.tracer import uninstall_tracer

    uninstall_tracer()
    uninstall_ledger()


def _engine_call(
    kind: str,
    params: Dict[str, Any],
    seed: int,
    deadline_remaining: Optional[float],
    collect_spans: bool = False,
) -> Tuple[Any, ...]:
    """Worker-side entry point: run one handler, return a tagged tuple.

    Never raises — every outcome, success or failure, crosses the
    process boundary as plain picklable data (see the module docstring
    for why the exceptions themselves cannot).
    """
    from repro.core.engine import RunAborted
    from repro.serve.executor import _run_experiment_kind, run_scenario
    from repro.serve.protocol import ServeError

    deadline = None
    if deadline_remaining is not None:
        deadline = time.monotonic() + deadline_remaining
    try:
        spans = None
        if collect_spans:
            from repro.obs.tracer import Tracer, export_spans, tracing

            with tracing(Tracer()) as scratch:
                if kind == "scenario":
                    payload = run_scenario(params, seed, deadline=deadline)
                else:
                    payload = _run_experiment_kind(kind, params, seed)
            spans = export_spans(scratch)
        elif kind == "scenario":
            payload = run_scenario(params, seed, deadline=deadline)
        else:
            payload = _run_experiment_kind(kind, params, seed)
        return ("ok", payload, spans)
    except ServeError as err:
        return ("serve_error", err.code, err.detail, dict(err.extra))
    except RunAborted as exc:
        if exc.reason == "deadline":
            return (
                "serve_error",
                "E_DEADLINE",
                f"deadline expired mid-run at superstep {exc.superstep}",
                {"superstep": exc.superstep},
            )
        return ("serve_error", "E_INTERNAL", f"run aborted: {exc}", {})
    except Exception as exc:  # noqa: BLE001 - the whole point is translation
        import traceback as tb_mod

        return ("exc", type(exc).__name__, str(exc), tb_mod.format_exc())


class ProcessEngine:
    """A persistent process pool serving handler calls for the executor.

    Lazy: the pool is created on first :meth:`call` (so constructing an
    executor with ``engine="process"`` costs nothing until traffic
    arrives) and rebuilt transparently after a ``BrokenProcessPool``.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._splice_lock = threading.Lock()  # Tracer is not thread-safe

    # -- pool lifecycle ------------------------------------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                import multiprocessing

                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-fork platforms
                    ctx = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_engine_init,
                )
            return self._pool

    def _discard_pool(self, broken: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next call rebuilds a fresh one."""
        with self._lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- the call path -------------------------------------------------
    def call(
        self,
        kind: str,
        params: Dict[str, Any],
        seed: int,
        deadline: Optional[float],
    ) -> Dict[str, Any]:
        """Run one handler in the pool; return its payload or re-raise.

        Raises :class:`ServeError` for structured rejections and
        :class:`RemoteCrash` for everything else — the same exception
        surface the in-thread handlers present, so the executor's retry
        loop needs no engine-specific branches.
        """
        from repro.obs.tracer import active_tracer
        from repro.serve.protocol import ServeError

        remaining = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError("E_DEADLINE", "deadline expired before dispatch")
        tracer = active_tracer()
        pool = self._get_pool()
        t0 = time.perf_counter()
        try:
            outcome = pool.submit(
                _engine_call, kind, params, seed, remaining,
                tracer is not None,
            ).result()
        except BrokenProcessPool as exc:
            # a worker died hard mid-request: rebuild capacity, surface
            # the one affected request as an ordinary retryable crash
            self._discard_pool(pool)
            raise RemoteCrash(
                "BrokenProcessPool",
                f"engine worker died mid-request ({exc}); pool rebuilt",
            ) from exc
        tag = outcome[0]
        if tag == "ok":
            payload, spans = outcome[1], outcome[2] if len(outcome) > 2 else None
            if spans is not None and tracer is not None:
                self._splice(tracer, kind, spans, t0)
            return payload
        if tag == "serve_error":
            _, code, detail, extra = outcome
            raise ServeError(code, detail, **extra)
        _, type_name, message, traceback_text = outcome
        raise RemoteCrash(type_name, message, traceback_text)

    def _splice(self, tracer, kind: str, spans: Dict[str, Any], t0: float) -> None:
        """Graft the worker's real spans under a ``serve <kind>`` span on
        the parent tracer (serialized: several executor threads may call
        into the engine at once and the tracer is not thread-safe)."""
        from repro.obs.tracer import splice_spans

        with self._splice_lock:
            parent = tracer.add(
                f"serve {kind}", cat="serve", track="serve",
                wall_start=t0, wall_dur=time.perf_counter() - t0,
            )
            wall_min = min(
                (s[4] for s in spans.get("spans", ()) if s[4] is not None),
                default=None,
            )
            splice_spans(
                tracer, spans, parent=parent,
                wall_offset=(t0 - wall_min) if wall_min is not None else 0.0,
            )
