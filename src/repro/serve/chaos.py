"""Deterministic chaos for the serve stack: seeded worker kills,
disk-full on the persistent store, and slow-client stalls.

The whole point is *replayable* failure: every chaos decision is a pure
function of ``(plan seed, request fingerprint, attempt)`` — no wall
clock, no global RNG — so a chaos test that kills attempt 1 of a request
kills it on every run, and the retry path's recovery is assertable
bit-for-bit.  This mirrors the engine's own :mod:`repro.faults` design
(seeded FaultPlan, barrier-clock faults) one layer up.

``WorkerKilled`` is raised *inside* the executor's handler, standing in
for a worker process dying mid-trial; the executor's exponential-backoff
retry and quarantine logic treats it like any other crash.  ``io_fault``
plugs into :class:`repro.store.DiskStore` and raises ``ENOSPC`` on a
seeded fraction of writes — a full disk degrades the store to a
pass-through (writes are dropped, reads still hit), never an outage.
"""

from __future__ import annotations

import errno
import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["ChaosPlan", "WorkerKilled", "plan_from_env"]


class WorkerKilled(RuntimeError):
    """A simulated worker death, injected by a :class:`ChaosPlan`."""


def _unit(seed: int, *path: object) -> float:
    """Deterministic uniform [0, 1) from a seed and a hashable path."""
    blob = ("\x1f".join(str(p) for p in (seed,) + path)).encode()
    digest = hashlib.blake2b(blob, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded failure plan for the daemon (all rates in [0, 1])."""

    seed: int = 0
    #: probability a given (request, attempt) execution is killed
    kill_rate: float = 0.0
    #: attempts that always die, regardless of rate (e.g. ``kill_first=1``
    #: kills every request's first attempt — the retry-path determinism
    #: fixture)
    kill_first: int = 0
    #: probability a store write fails with ENOSPC
    disk_full_rate: float = 0.0

    @property
    def is_null(self) -> bool:
        return not (self.kill_rate or self.kill_first or self.disk_full_rate)

    def should_kill(self, fingerprint: str, attempt: int) -> bool:
        """Kill this execution?  Pure in (seed, fingerprint, attempt)."""
        if attempt <= self.kill_first:
            return True
        if self.kill_rate <= 0.0:
            return False
        return _unit(self.seed, "kill", fingerprint, attempt) < self.kill_rate

    def kill_if_planned(self, fingerprint: str, attempt: int) -> None:
        if self.should_kill(fingerprint, attempt):
            raise WorkerKilled(
                f"chaos plan killed attempt {attempt} of request {fingerprint}"
            )

    def io_fault(self, op: str, path: str) -> None:
        """``DiskStore.io_fault`` hook: seeded ENOSPC on writes."""
        if op != "put" or self.disk_full_rate <= 0.0:
            return
        if _unit(self.seed, "disk", path) < self.disk_full_rate:
            raise OSError(errno.ENOSPC, f"chaos plan: no space left writing {path}")


def plan_from_env(env: Optional[dict] = None) -> ChaosPlan:
    """Build a plan from ``REPRO_SERVE_CHAOS_*`` variables (absent → null
    plan); lets the CI smoke job turn chaos on without code."""
    import os

    e = os.environ if env is None else env
    return ChaosPlan(
        seed=int(e.get("REPRO_SERVE_CHAOS_SEED", "0")),
        kill_rate=float(e.get("REPRO_SERVE_CHAOS_KILL_RATE", "0")),
        kill_first=int(e.get("REPRO_SERVE_CHAOS_KILL_FIRST", "0")),
        disk_full_rate=float(e.get("REPRO_SERVE_CHAOS_DISK_FULL_RATE", "0")),
    )
