"""Server-side queueing telemetry, carried by the :mod:`repro.obs`
metrics machinery so ``python -m repro compare`` can gate dumps.

One :class:`ServerMetrics` instance lives for the daemon's lifetime.  It
wraps a :class:`repro.obs.MetricsRegistry` (same schema, same exporter,
same comparator) and namespaces everything under ``serve.``:

counters
    ``serve.requests.{submitted,ok,failed}``, the shed/reject family
    ``serve.shed.{queue_full,oversized,deadline,quarantined,draining}``,
    resilience counters ``serve.retry.{attempts,quarantined}`` and
    ``serve.worker.crashes``, cache effectiveness
    ``serve.cache.{hits,misses,disk_hits}``.
gauges
    ``serve.queue.depth``, ``serve.inflight``, ``serve.rounds``.
histograms
    ``serve.wait_s`` (admission → start of service), ``serve.service_s``
    (inside the handler), ``serve.round.window`` and
    ``serve.round.overloaded_slots`` (the Unbalanced-Send draw).

``snapshot()`` is what ``GET /v1/metrics`` returns and what the CI smoke
job uploads; it is a plain :meth:`MetricsRegistry.to_dict` dump, so the
regression comparator consumes it unchanged.  ``GET /v1/metrics?format=
prom`` renders the same dump through
:func:`repro.obs.prom.prometheus_exposition`.

Event stream
------------
:class:`ServerMetrics` also keeps a bounded ring of **admission-round
events** — one JSON-ready dict per scheduled Unbalanced-Send round
(sequence number, window size, overloaded slots, request count, queue
depth) plus lifecycle markers (``drain``).  ``GET /v1/events`` long-polls
:meth:`wait_events`: a client passes the last sequence number it saw and
blocks until newer events exist (or the timeout lapses), which is what
``python -m repro top`` rides.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServerMetrics", "EVENT_RING_SIZE"]

#: admission-round events retained for ``GET /v1/events`` late joiners
EVENT_RING_SIZE = 1024


class ServerMetrics:
    """Thread-safe façade over a registry (one lock; counters are cheap)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=EVENT_RING_SIZE)
        self._event_seq = 0
        self._event_cond = threading.Condition(self._lock)

    # counter/gauge/histogram helpers --------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.registry.counter(f"serve.{name}").inc(value)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.gauge(f"serve.{name}").set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.histogram(f"serve.{name}").observe(value)

    # request lifecycle ----------------------------------------------------
    def shed(self, code: str) -> None:
        """Count a structured rejection under its error code."""
        key = {
            "E_QUEUE_FULL": "shed.queue_full",
            "E_OVERSIZED": "shed.oversized",
            "E_DEADLINE": "shed.deadline",
            "E_QUARANTINED": "shed.quarantined",
            "E_DRAINING": "shed.draining",
            "E_CRASHED": "shed.crashed",
            "E_BAD_REQUEST": "shed.bad_request",
        }.get(code, "shed.other")
        self.inc(key)

    def round_scheduled(
        self,
        window: int,
        overloaded_slots: int,
        size: int,
        queue_depth: int = 0,
        cache_hits: int = 0,
    ) -> None:
        self.inc("rounds.scheduled")
        self.inc("rounds.requests", size)
        self.observe("round.window", float(window))
        self.observe("round.overloaded_slots", float(overloaded_slots))
        self.emit_event(
            "round",
            window=int(window),
            overloaded_slots=int(overloaded_slots),
            requests=int(size),
            queue_depth=int(queue_depth),
            cache_hits=int(cache_hits),
        )

    # event stream ---------------------------------------------------------
    def emit_event(self, kind: str, **fields: Any) -> int:
        """Append one event to the ring and wake every long-poll waiter.
        Returns the event's sequence number (monotonic from 1)."""
        with self._event_cond:
            self._event_seq += 1
            event = {"seq": self._event_seq, "kind": kind, "t": time.time()}
            event.update(fields)
            self._events.append(event)
            self._event_cond.notify_all()
            return self._event_seq

    def events_since(self, since: int, limit: int = EVENT_RING_SIZE) -> List[Dict[str, Any]]:
        """Events with ``seq > since`` (oldest first, up to ``limit``)."""
        with self._event_cond:
            return [e for e in self._events if e["seq"] > since][:limit]

    def wait_events(
        self, since: int, timeout: float = 10.0, limit: int = EVENT_RING_SIZE
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Long-poll: block until events newer than ``since`` exist or the
        timeout lapses.  Returns ``(events, latest_seq)`` — an empty list
        with the current sequence number on timeout, so a client can keep
        its cursor without re-reading history."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._event_cond:
            while True:
                fresh = [e for e in self._events if e["seq"] > since]
                if fresh:
                    return fresh[:limit], self._event_seq
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], self._event_seq
                self._event_cond.wait(remaining)

    def cache_delta(self, hits: int, misses: int, disk_hits: int) -> None:
        if hits:
            self.inc("cache.hits", hits)
        if misses:
            self.inc("cache.misses", misses)
        if disk_hits:
            self.inc("cache.disk_hits", disk_hits)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self.registry.to_dict()
