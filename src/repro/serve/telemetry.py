"""Server-side queueing telemetry, carried by the :mod:`repro.obs`
metrics machinery so ``python -m repro compare`` can gate dumps.

One :class:`ServerMetrics` instance lives for the daemon's lifetime.  It
wraps a :class:`repro.obs.MetricsRegistry` (same schema, same exporter,
same comparator) and namespaces everything under ``serve.``:

counters
    ``serve.requests.{submitted,ok,failed}``, the shed/reject family
    ``serve.shed.{queue_full,oversized,deadline,quarantined,draining}``,
    resilience counters ``serve.retry.{attempts,quarantined}`` and
    ``serve.worker.crashes``, cache effectiveness
    ``serve.cache.{hits,misses,disk_hits}``.
gauges
    ``serve.queue.depth``, ``serve.inflight``, ``serve.rounds``.
histograms
    ``serve.wait_s`` (admission → start of service), ``serve.service_s``
    (inside the handler), ``serve.round.window`` and
    ``serve.round.overloaded_slots`` (the Unbalanced-Send draw).

``snapshot()`` is what ``GET /v1/metrics`` returns and what the CI smoke
job uploads; it is a plain :meth:`MetricsRegistry.to_dict` dump, so the
regression comparator consumes it unchanged.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.obs.metrics import MetricsRegistry

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Thread-safe façade over a registry (one lock; counters are cheap)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()

    # counter/gauge/histogram helpers --------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.registry.counter(f"serve.{name}").inc(value)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.gauge(f"serve.{name}").set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.histogram(f"serve.{name}").observe(value)

    # request lifecycle ----------------------------------------------------
    def shed(self, code: str) -> None:
        """Count a structured rejection under its error code."""
        key = {
            "E_QUEUE_FULL": "shed.queue_full",
            "E_OVERSIZED": "shed.oversized",
            "E_DEADLINE": "shed.deadline",
            "E_QUARANTINED": "shed.quarantined",
            "E_DRAINING": "shed.draining",
            "E_CRASHED": "shed.crashed",
            "E_BAD_REQUEST": "shed.bad_request",
        }.get(code, "shed.other")
        self.inc(key)

    def round_scheduled(self, window: int, overloaded_slots: int, size: int) -> None:
        self.inc("rounds.scheduled")
        self.inc("rounds.requests", size)
        self.observe("round.window", float(window))
        self.observe("round.overloaded_slots", float(overloaded_slots))

    def cache_delta(self, hits: int, misses: int, disk_hits: int) -> None:
        if hits:
            self.inc("cache.hits", hits)
        if misses:
            self.inc("cache.misses", misses)
        if disk_hits:
            self.inc("cache.disk_hits", disk_hits)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self.registry.to_dict()
