"""Wire protocol of the ``repro serve`` daemon: request/response shapes,
structured error codes, canonical fingerprints, and cost estimation.

Everything is JSON over HTTP.  A request is::

    POST /v1/submit
    {"kind": "scenario", "params": {...}, "seed": 0, "deadline_s": 5.0}

and the response is either ``{"ok": true, "result": {...}, ...}`` or a
*structured* rejection ``{"ok": false, "error": {"code": "E_QUEUE_FULL",
...}}`` with a matching HTTP status — the daemon sheds load explicitly,
it never hangs a client.

Two protocol invariants matter for the rest of the stack:

* :func:`request_fingerprint` is the canonical identity of a request's
  *content* — the quarantine list, the response cache, and the chaos
  plan's deterministic kill decisions all key on it, so it must not
  depend on submission order, request ids, or wall clock.
* :func:`estimate_cost` is the request's size ``x_i`` in flits for the
  Unbalanced-Send admission discipline (:mod:`repro.serve.admission`) —
  the paper's "processor with x_i flits to send" maps to "request with
  x_i flits of simulated traffic".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "KINDS",
    "Request",
    "ServeError",
    "canonical_params",
    "error_payload",
    "estimate_cost",
    "ok_payload",
    "request_fingerprint",
]

PROTOCOL_VERSION = 1

#: request kinds the executor knows how to serve.  ``scenario`` routes one
#: h-relation (bit-identical to the batch ``route()`` call at the same
#: seed); ``experiment``/``sweep`` run a registered experiment, the latter
#: defaulting to a parallel fan-out over :mod:`repro.sweep`; ``ping`` is
#: the health/latency probe (cost 1, never cached).
KINDS = ("ping", "scenario", "experiment", "sweep")

#: code -> HTTP status.  E_QUEUE_FULL is the 429-style load shed of the
#: bounded admission queue; E_OVERSIZED sheds requests larger than the
#: configured multiple of the send window; E_DEADLINE is an expired
#: per-request deadline (at admission, in queue, or mid-run via
#: ``RunAborted``); E_QUARANTINED rejects content fingerprints that
#: crashed too many times; E_DRAINING rejects new work during SIGTERM
#: drain; E_CRASHED is a request that kept failing before quarantine
#: kicked in; E_NOT_ACCEPTABLE rejects an unknown ``?format=`` on a GET
#: endpoint (the supported renderings are listed in the error payload).
ERROR_CODES: Dict[str, int] = {
    "E_BAD_REQUEST": 400,
    "E_NOT_ACCEPTABLE": 406,
    "E_OVERSIZED": 413,
    "E_QUARANTINED": 422,
    "E_QUEUE_FULL": 429,
    "E_CRASHED": 500,
    "E_INTERNAL": 500,
    "E_DRAINING": 503,
    "E_DEADLINE": 504,
}


class ServeError(Exception):
    """A structured rejection; serialized by :func:`error_payload`."""

    def __init__(self, code: str, detail: str, **extra: Any) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail
        self.http_status = ERROR_CODES[code]
        self.extra = extra


@dataclass
class Request:
    """One admitted unit of work, as the admission queue carries it."""

    seq: int  # server-assigned submission sequence number
    kind: str
    params: Dict[str, Any]
    seed: int
    fingerprint: str
    cost: int  # flits, for the Unbalanced-Send draw
    deadline: Optional[float]  # absolute time.monotonic(), None = no deadline
    submitted: float  # time.monotonic() at acceptance
    attempts: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


def canonical_params(params: Dict[str, Any]) -> str:
    """Order-independent canonical JSON of a params dict (the only value
    shapes the wire accepts are JSON-native already)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def request_fingerprint(kind: str, params: Dict[str, Any], seed: int) -> str:
    """Content identity of a request — stable across submissions."""
    blob = f"{kind}\n{canonical_params(params)}\n{seed}".encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def estimate_cost(kind: str, params: Dict[str, Any]) -> int:
    """The request's Unbalanced-Send size ``x_i`` in flits.

    Scenario cost is its relation size ``n``; experiment/sweep cost scales
    the per-trial flit volume by the trial count.  Estimates only steer
    scheduling fairness and oversized shedding — they never change
    results.
    """
    if kind == "ping":
        return 1
    n = int(params.get("n", 20_000))
    if kind == "scenario":
        return max(1, n)
    trials = int(params.get("trials", 1))
    return max(1, n * max(1, trials))


def ok_payload(result: Any, **meta: Any) -> Dict[str, Any]:
    out = {"ok": True, "protocol_version": PROTOCOL_VERSION, "result": result}
    out.update(meta)
    return out


def error_payload(err: ServeError) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "ok": False,
        "protocol_version": PROTOCOL_VERSION,
        "error": {"code": err.code, "detail": err.detail, **err.extra},
    }
    return payload
