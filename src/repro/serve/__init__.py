"""Simulation-as-a-service: the ``python -m repro serve`` daemon.

A long-lived front end over the batch library — JSON over HTTP, bounded
queues with Unbalanced-Send admission control (the paper's §6 discipline
applied to the server's own request traffic), a crash-safe persistent
response cache (:mod:`repro.store`), per-request deadlines that
propagate into the engine, seeded-chaos-tested retry/quarantine, and
graceful drain with zero lost accepted requests.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionConfig, AdmissionController, Round
from repro.serve.chaos import ChaosPlan, WorkerKilled, plan_from_env
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.daemon import ReproServer
from repro.serve.engine import ENGINES, ProcessEngine, RemoteCrash
from repro.serve.executor import ExecutorConfig, RequestExecutor, run_scenario
from repro.serve.protocol import (
    ERROR_CODES,
    KINDS,
    PROTOCOL_VERSION,
    Request,
    ServeError,
    canonical_params,
    error_payload,
    estimate_cost,
    ok_payload,
    request_fingerprint,
)
from repro.serve.telemetry import ServerMetrics

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ChaosPlan",
    "ENGINES",
    "ERROR_CODES",
    "ExecutorConfig",
    "KINDS",
    "PROTOCOL_VERSION",
    "ProcessEngine",
    "RemoteCrash",
    "ReproServer",
    "Request",
    "RequestExecutor",
    "Round",
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServerMetrics",
    "WorkerKilled",
    "canonical_params",
    "error_payload",
    "estimate_cost",
    "ok_payload",
    "plan_from_env",
    "request_fingerprint",
    "run_scenario",
]
