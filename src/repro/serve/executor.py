"""Request execution behind the admission controller: handlers, the
response cache, deadline enforcement, and the crash/retry/quarantine
state machine.

Layout:

* a single **dispatcher** thread pulls Unbalanced-Send rounds from the
  :class:`repro.serve.admission.AdmissionController` and feeds requests,
  in service order, to a bounded pool of **worker** threads;
* each request carries a ``threading.Event`` in ``Request.extra``; the
  HTTP handler that accepted it blocks on that event, so an admitted
  request always gets an answer — success or structured error — before
  its connection closes (the zero-loss drain guarantee);
* results of deterministic kinds (``scenario``, ``experiment``,
  ``sweep``) are cached in the crash-safe :class:`repro.store.DiskStore`
  under ``("response", fingerprint)`` keys, so a warm-cache reply is the
  *same object* the cold run produced — bit-identical by construction;
* a failing request is retried with exponential backoff
  (``base · 2^(attempt-1)``, capped); once a content fingerprint has
  accumulated ``quarantine_after`` failures it is quarantined and all
  future submissions shed with ``E_QUARANTINED`` (poison-request
  containment).  :class:`repro.serve.chaos.ChaosPlan` injects the seeded
  worker kills these paths are tested against;
* a worker popping a deadline-free ``scenario`` also pops every queued
  request that matches it in everything but ``L`` (same seed and
  params otherwise, up to ``max_coalesce``) and answers the group from
  one fused :func:`run_scenario_batch` pass — per-request caching,
  chaos, retry, and quarantine bookkeeping are untouched, and each
  member's payload is bit-identical to its solo ``run_scenario`` call;
* with ``ExecutorConfig(engine="process")`` the worker threads keep all
  of the above bookkeeping but ship the pure compute to the persistent
  process pool of :mod:`repro.serve.engine` — CPU-bound kinds then run
  truly in parallel, and answers stay bit-identical to the in-thread
  path (the handlers are pure in ``(params, seed)``).

Determinism contract: handlers derive every RNG from the *request's*
seed via :func:`repro.util.rng.derive_seed_sequence`, never from server
state, so a daemon-served result equals the same library call made
directly — cold, warm, or after a crash-retry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.engine import RunAborted
from repro.serve.admission import AdmissionController, Round
from repro.serve.chaos import ChaosPlan
from repro.serve.protocol import KINDS, Request, ServeError
from repro.serve.telemetry import ServerMetrics
from repro.store.disk import DiskStore
from repro.util.rng import derive_seed_sequence

__all__ = [
    "ExecutorConfig",
    "RequestExecutor",
    "run_scenario",
    "run_scenario_batch",
]


@dataclass(frozen=True)
class ExecutorConfig:
    """Tunables of the execution/retry layer."""

    workers: int = 4  # worker threads draining scheduled rounds
    max_attempts: int = 3  # tries per submission before E_CRASHED
    backoff_base: float = 0.05  # seconds; attempt k sleeps base * 2^(k-1)
    backoff_cap: float = 2.0  # ceiling on a single backoff sleep
    quarantine_after: int = 3  # cumulative failures before E_QUARANTINED
    engine: str = "thread"  # compute engine: in-thread or process pool
    coalesce: bool = True  # fuse compatible queued scenarios into one pass
    max_coalesce: int = 16  # requests fused into a single batch, at most

    def __post_init__(self) -> None:
        from repro.serve.engine import ENGINES

        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.max_coalesce < 1:
            raise ValueError(
                f"max_coalesce must be >= 1, got {self.max_coalesce}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


# ----------------------------------------------------------------------
# handlers — module-level pure functions so tests can call them directly
# and assert bit-identity with the daemon's answers
# ----------------------------------------------------------------------

_WORKLOADS = ("uniform", "zipf", "balanced", "one_to_all")


def _build_relation(workload: str, p: int, n: int, alpha: float, seed) -> Any:
    from repro.workloads import (
        balanced_h_relation,
        one_to_all_relation,
        uniform_random_relation,
        zipf_h_relation,
    )

    if workload == "uniform":
        return uniform_random_relation(p, n, seed=seed)
    if workload == "zipf":
        return zipf_h_relation(p, n, alpha=alpha, seed=seed)
    if workload == "balanced":
        return balanced_h_relation(p, max(1, n // p), seed=seed)
    if workload == "one_to_all":
        return one_to_all_relation(p)
    raise ServeError(
        "E_BAD_REQUEST",
        f"unknown workload {workload!r}; choose one of {_WORKLOADS}",
    )


def run_scenario(
    params: Dict[str, Any], seed: int, *, deadline: Optional[float] = None
) -> Dict[str, Any]:
    """Route one h-relation on a BSP(m): the ``scenario`` kind.

    Pure in ``(params, seed)`` — the daemon's answer for a scenario is
    exactly this function's return value, which is how the determinism
    tests compare served vs. direct execution.  ``deadline`` (absolute
    monotonic) propagates into the engine and aborts mid-run with
    ``RunAborted(reason="deadline")``.
    """
    from repro.models.bsp_m import BSPm
    from repro.core.params import MachineParams
    from repro.scheduling import evaluate_schedule, route

    p = int(params.get("p", 64))
    n = int(params.get("n", 20_000))
    m = int(params.get("m", 32))
    L = float(params.get("L", 1.0))
    epsilon = float(params.get("epsilon", 0.2))
    alpha = float(params.get("alpha", 1.2))
    workload = str(params.get("workload", "uniform"))

    rel = _build_relation(
        workload, p, n, alpha, derive_seed_sequence(seed, "scenario", workload)
    )
    machine = BSPm(MachineParams(p=p, m=m, L=L))
    res, sched = route(
        machine,
        rel,
        epsilon=epsilon,
        seed=derive_seed_sequence(seed, "scenario", "route"),
        deadline=deadline,
    )
    report = evaluate_schedule(sched, m=m, L=L)
    return {
        "kind": "scenario",
        "workload": workload,
        "p": p,
        "n": int(rel.n),
        "m": m,
        "model_time": float(res.time),
        "supersteps": int(res.supersteps),
        "schedule": report.to_dict(),
    }


def run_scenario_batch(
    params_list: "list[Dict[str, Any]]", seed: int
) -> "list[Dict[str, Any]]":
    """Fused execution of scenario requests that differ only in ``L``.

    The scenario handler factors cleanly: the workload relation, the
    Unbalanced-Send schedule, and the recorded routing structure depend
    on ``(workload, p, n, m, epsilon, alpha, seed)`` but *not* on ``L``
    — latency only re-prices the recorded supersteps.  So a burst of
    compatible requests costs one relation build, one schedule, one
    compiled program, and one :func:`repro.core.batched.replay_batch`
    pass.  Element ``j`` is bit-identical to
    ``run_scenario(params_list[j], seed)``.
    """
    from repro.models.bsp_m import BSPm
    from repro.core.params import MachineParams
    from repro.scheduling import evaluate_schedule
    from repro.scheduling.execute import execute_schedule_batch
    from repro.scheduling.static_send import unbalanced_send

    base = params_list[0]
    p = int(base.get("p", 64))
    n = int(base.get("n", 20_000))
    m = int(base.get("m", 32))
    epsilon = float(base.get("epsilon", 0.2))
    alpha = float(base.get("alpha", 1.2))
    workload = str(base.get("workload", "uniform"))

    rel = _build_relation(
        workload, p, n, alpha, derive_seed_sequence(seed, "scenario", workload)
    )
    sched = unbalanced_send(
        rel, m, epsilon, seed=derive_seed_sequence(seed, "scenario", "route")
    )
    machines = [
        BSPm(MachineParams(p=p, m=m, L=float(pp.get("L", 1.0))))
        for pp in params_list
    ]
    runs = execute_schedule_batch(machines, sched)
    out = []
    for mach, res in zip(machines, runs):
        report = evaluate_schedule(sched, m=m, L=mach.params.L)
        out.append(
            {
                "kind": "scenario",
                "workload": workload,
                "p": p,
                "n": int(rel.n),
                "m": m,
                "model_time": float(res.time),
                "supersteps": int(res.supersteps),
                "schedule": report.to_dict(),
            }
        )
    return out


def _coalesce_key(req: Request) -> Optional[Any]:
    """Batch-compatibility key, or ``None`` when the request must run
    alone.  Only deadline-free scenarios coalesce, and only with requests
    sharing the same seed and every parameter except ``L`` — exactly the
    precondition of :func:`run_scenario_batch`."""
    if req.kind != "scenario" or req.deadline is not None:
        return None
    from repro.serve.protocol import canonical_params

    rest = {k: v for k, v in req.params.items() if k != "L"}
    return (req.seed, canonical_params(rest))


class _ScenarioBatch:
    """Lazily-computed fused result shared by one coalesced group.

    The batch runs at most once, on the first member that actually needs
    a compute (members answered from the response cache never trigger
    it).  A member's retry reuses the already-computed value — the
    handlers are pure in ``(params, seed)``, so recomputing could only
    return the same payload.
    """

    def __init__(self, requests: "list[Request]") -> None:
        self.requests = list(requests)
        self._payloads: Optional[Dict[int, Dict[str, Any]]] = None

    def payload_for(self, req: Request) -> Dict[str, Any]:
        if self._payloads is None:
            results = run_scenario_batch(
                [r.params for r in self.requests], self.requests[0].seed
            )
            self._payloads = {
                id(r): res for r, res in zip(self.requests, results)
            }
        return self._payloads[id(req)]


def _run_experiment_kind(
    kind: str, params: Dict[str, Any], seed: int
) -> Dict[str, Any]:
    """``experiment`` / ``sweep`` kinds: a registered experiment by name.

    ``sweep`` differs from ``experiment`` only in defaults — parallel
    jobs and a skip-don't-die error policy, the serving posture — both
    overridable per request.  The request seed *always* wins over any
    seed smuggled into params: the fingerprint covers the seed field.
    """
    import inspect

    from repro.experiments import EXPERIMENTS, UnknownExperimentError, run_experiment

    params = dict(params)
    name = params.pop("name", None)
    if not name or name not in EXPERIMENTS:
        raise ServeError(
            "E_BAD_REQUEST",
            f"params.name must be a registered experiment, got {name!r}",
            choices=sorted(EXPERIMENTS),
        )
    accepted = set(inspect.signature(EXPERIMENTS[name]).parameters)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise ServeError(
            "E_BAD_REQUEST",
            f"experiment {name!r} does not accept {unknown}",
            accepted=sorted(accepted),
        )
    kwargs = dict(params)
    kwargs["seed"] = seed
    if kind == "sweep":
        kwargs.setdefault("jobs", 0)
        if "on_error" in accepted:
            kwargs.setdefault("on_error", "skip")
    try:
        result = run_experiment(name, **kwargs)
    except UnknownExperimentError as exc:  # pragma: no cover - pre-checked
        raise ServeError("E_BAD_REQUEST", str(exc))
    return {"kind": kind, "name": name, "result": result}


# ----------------------------------------------------------------------
# the executor proper
# ----------------------------------------------------------------------


class RequestExecutor:
    """Dispatcher + worker pool with retry, quarantine, and caching."""

    def __init__(
        self,
        admission: AdmissionController,
        metrics: ServerMetrics,
        *,
        config: Optional[ExecutorConfig] = None,
        store: Optional[DiskStore] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        self.admission = admission
        self.metrics = metrics
        self.config = config or ExecutorConfig()
        self.store = store
        self.chaos = chaos or ChaosPlan()
        self._engine = None
        if self.config.engine == "process":
            from repro.serve.engine import ProcessEngine

            self._engine = ProcessEngine(self.config.workers)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._outstanding = 0  # admitted but not yet completed
        self._failures: Dict[str, int] = {}  # fingerprint -> crash count
        self._quarantined: Dict[str, str] = {}  # fingerprint -> last error
        self._work: "list[Request]" = []
        self._work_ready = threading.Condition(self._lock)
        self._stop = False
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        dispatcher.start()
        self._threads.append(dispatcher)
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def stop(self) -> None:
        with self._lock:
            self._stop = True
            self._work_ready.notify_all()
            self._idle.notify_all()
        self.admission.start_drain()
        if self._engine is not None:
            self._engine.shutdown()

    def note_admitted(self) -> None:
        """Called by the server right after ``admission.submit`` succeeds.

        The outstanding counter is the drain invariant: it covers a
        request through *every* intermediate state — queued, mid-round in
        the dispatcher, in ``_work``, running — and only drops when its
        completion event is set, so ``wait_idle`` cannot return early in
        the window where a round has left the admission queue but not yet
        reached the worker list.
        """
        with self._lock:
            self._outstanding += 1

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has been answered.

        This is the drain barrier: with admission closed, idle means
        every accepted request has had its completion event set.
        """
        end = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._outstanding:
                remaining = None if end is None else end - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining if remaining is not None else 0.5)
            return True

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def cache_hit_count(self) -> int:
        """Served-from-cache count so far (rides the round event stream)."""
        with self.metrics._lock:
            return int(self.metrics.registry.counter("serve.cache.hits").value)

    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    # -- quarantine ----------------------------------------------------
    def check_quarantine(self, fingerprint: str) -> None:
        """Raise ``E_QUARANTINED`` if this content is poisoned (called by
        the server *before* admission, so poison never occupies queue)."""
        with self._lock:
            last = self._quarantined.get(fingerprint)
        if last is not None:
            raise ServeError(
                "E_QUARANTINED",
                f"request fingerprint {fingerprint} is quarantined after "
                f"{self.config.quarantine_after} failures",
                last_error=last,
            )

    def quarantined(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._quarantined)

    # -- dispatch / workers --------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    return
            rnd = self.admission.next_round(timeout=0.1)
            if rnd is None:
                continue
            depth = self.admission.depth()
            self.metrics.round_scheduled(
                rnd.window, rnd.overloaded_slots, len(rnd.order),
                queue_depth=depth,
                cache_hits=self.cache_hit_count(),
            )
            self.metrics.gauge("queue.depth", depth)
            with self._lock:
                for _slot, req in rnd.order:  # already in service order
                    self._work.append(req)
                self._work_ready.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._work and not self._stop:
                    self._work_ready.wait(0.25)
                if self._stop and not self._work:
                    return
                req = self._work.pop(0)
                group = [req]
                if self._engine is None and self.config.coalesce and self._work:
                    key = _coalesce_key(req)
                    if key is not None:
                        keep: "list[Request]" = []
                        for other in self._work:
                            if (
                                len(group) < self.config.max_coalesce
                                and _coalesce_key(other) == key
                            ):
                                group.append(other)
                            else:
                                keep.append(other)
                        if len(group) > 1:
                            self._work[:] = keep
                self._in_flight += len(group)
                self.metrics.gauge("inflight", self._in_flight)
            try:
                if len(group) == 1:
                    self._serve_one(req)
                else:
                    self.metrics.inc("batch.rounds")
                    self.metrics.inc("batch.coalesced", len(group))
                    ctx = _ScenarioBatch(group)
                    for member in group:
                        self._serve_one(member, batch=ctx)
            finally:
                with self._lock:
                    self._in_flight -= len(group)
                    self.metrics.gauge("inflight", self._in_flight)
                    self._idle.notify_all()

    # -- per-request execution -----------------------------------------
    def _serve_one(
        self, req: Request, batch: Optional[_ScenarioBatch] = None
    ) -> None:
        started = time.monotonic()
        self.metrics.observe("wait_s", started - req.submitted)
        try:
            payload = self._execute(req, started, batch)
            self._complete(req, payload, None)
            self.metrics.inc("requests.ok")
        except ServeError as err:
            self.metrics.shed(err.code)
            self.metrics.inc("requests.failed")
            self._complete(req, None, err)
        except Exception as exc:  # defense: never let a worker die silently
            err = ServeError("E_INTERNAL", f"{type(exc).__name__}: {exc}")
            self.metrics.shed(err.code)
            self.metrics.inc("requests.failed")
            self._complete(req, None, err)
        finally:
            self.metrics.observe("service_s", time.monotonic() - started)

    def _complete(
        self, req: Request, payload: Any, error: Optional[ServeError]
    ) -> None:
        req.extra["result"] = payload
        req.extra["error"] = error
        with self._lock:
            if self._outstanding > 0:
                self._outstanding -= 1
            self._idle.notify_all()
        event = req.extra.get("event")
        if event is not None:
            event.set()

    def _check_deadline(self, req: Request) -> None:
        if req.deadline is not None and time.monotonic() > req.deadline:
            raise ServeError(
                "E_DEADLINE",
                f"request deadline expired before service "
                f"(waited {time.monotonic() - req.submitted:.3f}s in queue)",
            )

    def _cache_get(self, req: Request) -> Optional[Dict[str, Any]]:
        if self.store is None or req.kind == "ping":
            return None
        hit, value = self.store.get(("response", req.fingerprint))
        return value if hit else None

    def _cache_put(self, req: Request, payload: Dict[str, Any]) -> None:
        if self.store is not None and req.kind != "ping":
            self.store.put(("response", req.fingerprint), payload)

    def _execute(
        self,
        req: Request,
        started: float,
        batch: Optional[_ScenarioBatch] = None,
    ) -> Dict[str, Any]:
        self._check_deadline(req)
        self.check_quarantine(req.fingerprint)
        cached = self._cache_get(req)
        if cached is not None:
            self.metrics.inc("cache.hits")
            return {"cached": True, "attempts": 0, "payload": cached}
        if req.kind != "ping":
            self.metrics.inc("cache.misses")

        cfg = self.config
        attempt = 0
        while True:
            attempt += 1
            req.attempts = attempt
            try:
                self.chaos.kill_if_planned(req.fingerprint, attempt)
                payload = self._handle(req, batch)
            except ServeError:
                raise
            except RunAborted as exc:
                if exc.reason == "deadline":
                    raise ServeError(
                        "E_DEADLINE",
                        f"deadline expired mid-run at superstep {exc.superstep}",
                        superstep=exc.superstep,
                    )
                raise ServeError("E_INTERNAL", f"run aborted: {exc}")
            except Exception as exc:
                self.metrics.inc("worker.crashes")
                with self._lock:
                    self._failures[req.fingerprint] = (
                        self._failures.get(req.fingerprint, 0) + 1
                    )
                    failures = self._failures[req.fingerprint]
                    poisoned = failures >= cfg.quarantine_after
                    if poisoned and req.fingerprint not in self._quarantined:
                        self._quarantined[req.fingerprint] = repr(exc)
                        self.metrics.inc("retry.quarantined")
                if poisoned:
                    raise ServeError(
                        "E_CRASHED",
                        f"request crashed {failures} times and is now "
                        f"quarantined: {exc!r}",
                        attempts=attempt,
                        quarantined=True,
                    )
                if attempt >= cfg.max_attempts:
                    raise ServeError(
                        "E_CRASHED",
                        f"request failed after {attempt} attempts: {exc!r}",
                        attempts=attempt,
                    )
                self.metrics.inc("retry.attempts")
                self._check_deadline(req)  # don't sleep past the deadline
                time.sleep(cfg.backoff(attempt))
                continue
            self._cache_put(req, payload)
            return {"cached": False, "attempts": attempt, "payload": payload}

    def _handle(
        self, req: Request, batch: Optional[_ScenarioBatch] = None
    ) -> Dict[str, Any]:
        if req.kind == "ping":
            return {"kind": "ping", "seed": req.seed}
        if req.kind == "scenario":
            if self._engine is not None:
                return self._engine.call(
                    req.kind, req.params, req.seed, req.deadline
                )
            if batch is not None:
                return batch.payload_for(req)
            return run_scenario(req.params, req.seed, deadline=req.deadline)
        if req.kind in ("experiment", "sweep"):
            self._check_deadline(req)  # experiments can't abort mid-run
            if self._engine is not None:
                return self._engine.call(req.kind, req.params, req.seed, None)
            return _run_experiment_kind(req.kind, req.params, req.seed)
        raise ServeError(
            "E_BAD_REQUEST", f"unknown kind {req.kind!r}; choose one of {KINDS}"
        )
