"""Minimal stdlib client for the ``repro serve`` daemon.

Structured rejections surface as :class:`ServeRequestError` carrying the
server's error code and detail — client code branches on ``err.code``
(``E_QUEUE_FULL`` → back off and retry, ``E_DEADLINE`` → give up,
``E_QUARANTINED`` → fix the request) instead of parsing strings.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(Exception):
    """A structured error answer from the daemon."""

    def __init__(self, code: str, detail: str, http_status: int,
                 extra: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"{code} (HTTP {http_status}): {detail}")
        self.code = code
        self.detail = detail
        self.http_status = http_status
        self.extra = extra or {}


class ServeClient:
    """Talk to one daemon; all calls are synchronous."""

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout or self.timeout) as resp:
                payload = json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            # structured shed: the daemon answers errors with a JSON body
            try:
                payload = json.loads(exc.read().decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeRequestError(
                    "E_INTERNAL", f"non-JSON error body (HTTP {exc.code})", exc.code
                )
            err = payload.get("error", {})
            raise ServeRequestError(
                err.get("code", "E_INTERNAL"),
                err.get("detail", "unknown error"),
                exc.code,
                {k: v for k, v in err.items() if k not in ("code", "detail")},
            )
        return payload

    # -- API -----------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and block for the answer (long-poll).

        Returns the full ``ok`` payload (``result``, ``cached``,
        ``attempts``, ``fingerprint``, ...); raises
        :class:`ServeRequestError` on a structured rejection.
        """
        body: Dict[str, Any] = {"kind": kind, "params": params or {}, "seed": seed}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._call("POST", "/v1/submit", body, timeout=timeout)

    def ping(self) -> Dict[str, Any]:
        return self.submit("ping")

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/metrics")["metrics"]

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/stats")

    def drain(self) -> Dict[str, Any]:
        return self._call("POST", "/v1/drain")
