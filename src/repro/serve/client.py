"""Minimal stdlib client for the ``repro serve`` daemon.

Structured rejections surface as :class:`ServeRequestError` carrying the
server's error code and detail — client code branches on ``err.code``
(``E_QUEUE_FULL`` → back off and retry, ``E_DEADLINE`` → give up,
``E_QUARANTINED`` → fix the request) instead of parsing strings.

Transport is TCP by default (``ServeClient("http://host:port")``) or a
Unix-domain socket (``ServeClient(uds="/path.sock")``) when the daemon
was started with ``--uds`` — same protocol, same payloads, no open port.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["ServeClient", "ServeRequestError"]


class ServeRequestError(Exception):
    """A structured error answer from the daemon."""

    def __init__(self, code: str, detail: str, http_status: int,
                 extra: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"{code} (HTTP {http_status}): {detail}")
        self.code = code
        self.detail = detail
        self.http_status = http_status
        self.extra = extra or {}


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` connection over an AF_UNIX socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._uds_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._uds_path)
        self.sock = sock


class ServeClient:
    """Talk to one daemon; all calls are synchronous.

    Exactly one transport: pass ``url`` for TCP or ``uds`` for a
    Unix-domain socket path.
    """

    def __init__(
        self,
        url: Optional[str] = None,
        timeout: float = 120.0,
        *,
        uds: Optional[str] = None,
    ) -> None:
        if (url is None) == (uds is None):
            raise ValueError("pass exactly one of url= or uds=")
        self.url = None if url is None else url.rstrip("/")
        self.uds = uds
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        if self.uds is not None:
            return self._call_uds(method, path, body, timeout)
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout or self.timeout) as resp:
                payload = json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            # structured shed: the daemon answers errors with a JSON body
            try:
                payload = json.loads(exc.read().decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeRequestError(
                    "E_INTERNAL", f"non-JSON error body (HTTP {exc.code})", exc.code
                )
            err = payload.get("error", {})
            raise ServeRequestError(
                err.get("code", "E_INTERNAL"),
                err.get("detail", "unknown error"),
                exc.code,
                {k: v for k, v in err.items() if k not in ("code", "detail")},
            )
        return payload

    def _call_uds(
        self, method: str, path: str, body: Optional[Dict[str, Any]],
        timeout: Optional[float],
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        conn = _UnixHTTPConnection(self.uds, timeout=timeout or self.timeout)
        try:
            conn.request(
                method, path, body=data,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            try:
                payload = json.loads(raw.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeRequestError(
                    "E_INTERNAL",
                    f"non-JSON {'error ' if resp.status >= 400 else ''}body "
                    f"(HTTP {resp.status})",
                    resp.status,
                )
            if resp.status >= 400:
                err = payload.get("error", {})
                raise ServeRequestError(
                    err.get("code", "E_INTERNAL"),
                    err.get("detail", "unknown error"),
                    resp.status,
                    {k: v for k, v in err.items() if k not in ("code", "detail")},
                )
            return payload
        finally:
            conn.close()

    def _call_raw(
        self, method: str, path: str, timeout: Optional[float] = None
    ) -> "tuple[int, Dict[str, str], bytes]":
        """Non-JSON transport: returns ``(status, headers, body bytes)``.
        Structured error answers (JSON bodies on >=400) still raise
        :class:`ServeRequestError`."""
        if self.uds is not None:
            conn = _UnixHTTPConnection(self.uds, timeout=timeout or self.timeout)
            try:
                conn.request(method, path)
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                headers = {k: v for k, v in resp.getheaders()}
            finally:
                conn.close()
        else:
            req = urllib.request.Request(f"{self.url}{path}", method=method)
            try:
                with urllib.request.urlopen(
                    req, timeout=timeout or self.timeout
                ) as resp:
                    raw = resp.read()
                    status = resp.status
                    headers = dict(resp.headers.items())
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                status = exc.code
                headers = dict(exc.headers.items()) if exc.headers else {}
        if status >= 400:
            try:
                payload = json.loads(raw.decode())
                err = payload.get("error", {})
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeRequestError(
                    "E_INTERNAL", f"non-JSON error body (HTTP {status})", status
                )
            raise ServeRequestError(
                err.get("code", "E_INTERNAL"),
                err.get("detail", "unknown error"),
                status,
                {k: v for k, v in err.items() if k not in ("code", "detail")},
            )
        return status, headers, raw

    # -- API -----------------------------------------------------------
    def submit(
        self,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        *,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit and block for the answer (long-poll).

        Returns the full ``ok`` payload (``result``, ``cached``,
        ``attempts``, ``fingerprint``, ...); raises
        :class:`ServeRequestError` on a structured rejection.
        """
        body: Dict[str, Any] = {"kind": kind, "params": params or {}, "seed": seed}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._call("POST", "/v1/submit", body, timeout=timeout)

    def ping(self) -> Dict[str, Any]:
        return self.submit("ping")

    def healthz(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/metrics")["metrics"]

    def metrics_prom(self) -> str:
        """The registry as Prometheus text exposition (``?format=prom``)."""
        _status, _headers, raw = self._call_raw("GET", "/v1/metrics?format=prom")
        return raw.decode()

    def events(
        self,
        since: int = 0,
        timeout: float = 10.0,
        max_events: int = 1000,
    ) -> "tuple[list[Dict[str, Any]], int]":
        """Long-poll ``/v1/events``: block until events newer than
        ``since`` exist (or the server timeout lapses).  Returns
        ``(events, latest_seq)``; pass ``latest_seq`` back as the next
        ``since`` cursor."""
        path = f"/v1/events?since={int(since)}&timeout={timeout:g}&max={int(max_events)}"
        # the HTTP read must outlive the server-side poll
        _status, headers, raw = self._call_raw(
            "GET", path, timeout=timeout + 10.0
        )
        events = [json.loads(line) for line in raw.decode().splitlines() if line]
        latest = int(headers.get("X-Repro-Events-Seq", since))
        if events:
            latest = max(latest, max(e.get("seq", 0) for e in events))
        return events, latest

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/v1/stats")

    def drain(self) -> Dict[str, Any]:
        return self._call("POST", "/v1/drain")
