"""Crash-safe persistent key/value store backing the sweep memo cache.

``repro.store`` generalizes the per-process memo cache of
:mod:`repro.sweep.cache` to a disk-backed LRU shared across processes and
daemon restarts: atomic temp-file + rename writes, checksum-verified
entries where corruption reads as a miss, and git-SHA-tagged invalidation
via the :mod:`repro.obs` manifest machinery.  See ``docs/serving.md``.
"""

from repro.store.disk import (
    STORE_SCHEMA_VERSION,
    DiskStore,
    DiskStoreStats,
    default_store_path,
    default_store_tag,
    summarize_store,
    wipe_store,
)
from repro.store.persistent import (
    active_store,
    configure_persistent_cache,
    disable_persistent_cache,
    maybe_enable_from_env,
    persistent_cache_scope,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "DiskStore",
    "DiskStoreStats",
    "active_store",
    "configure_persistent_cache",
    "default_store_path",
    "default_store_tag",
    "disable_persistent_cache",
    "maybe_enable_from_env",
    "persistent_cache_scope",
    "summarize_store",
    "wipe_store",
]
