"""Process-global wiring between :class:`repro.store.DiskStore` and the
in-memory sweep memo cache.

The sweep cache (:mod:`repro.sweep.cache`) exposes a single persistent-tier
hook (``set_persistent_store``); this module owns the lifecycle of the store
installed there — creation, the env-var opt-in, and a scoped installer for
tests and the serve daemon.

Persistence is **opt-in**: batch runs keep today's in-memory-only behavior
unless ``REPRO_PERSISTENT_CACHE=1`` is set or the daemon (or a test)
installs a store explicitly.  Opt-in keeps the tier-1 determinism contracts
(jobs=N ≡ jobs=1, cache-disabled bit-identity) independent of whatever a
developer has on disk.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

from repro.store.disk import DiskStore, default_store_path

__all__ = [
    "active_store",
    "configure_persistent_cache",
    "disable_persistent_cache",
    "maybe_enable_from_env",
    "persistent_cache_scope",
]

_active: Optional[DiskStore] = None


def active_store() -> Optional[DiskStore]:
    """The DiskStore currently backing the sweep memo cache, if any."""
    return _active


def configure_persistent_cache(
    path: Optional[str] = None,
    *,
    max_entries: int = 4096,
    max_bytes: int = 256 * 1024 * 1024,
    store: Optional[DiskStore] = None,
) -> DiskStore:
    """Create (or adopt) a DiskStore and install it as the sweep cache's
    persistent tier.  Returns the installed store."""
    global _active
    from repro.sweep import cache as sweep_cache

    if store is None:
        store = DiskStore(
            path if path is not None else default_store_path(),
            max_entries=max_entries,
            max_bytes=max_bytes,
        )
    _active = store
    sweep_cache.set_persistent_store(store)
    return store


def disable_persistent_cache() -> None:
    """Detach the persistent tier; the in-memory cache keeps working."""
    global _active
    from repro.sweep import cache as sweep_cache

    _active = None
    sweep_cache.set_persistent_store(None)


def maybe_enable_from_env() -> Optional[DiskStore]:
    """Install the default store iff ``REPRO_PERSISTENT_CACHE`` is truthy.

    Called by the CLI harness once per invocation; the daemon installs its
    store explicitly and does not consult the env var.
    """
    flag = os.environ.get("REPRO_PERSISTENT_CACHE", "").strip().lower()
    if flag in {"", "0", "false", "no", "off"}:
        return None
    return configure_persistent_cache()


@contextlib.contextmanager
def persistent_cache_scope(
    path: Optional[str] = None,
    *,
    max_entries: int = 4096,
    max_bytes: int = 256 * 1024 * 1024,
    store: Optional[DiskStore] = None,
) -> Iterator[DiskStore]:
    """Install a store for the duration of a with-block, restoring the
    previous tier (usually none) on exit — the test/daemon-shutdown idiom."""
    previous = _active
    installed = configure_persistent_cache(
        path, max_entries=max_entries, max_bytes=max_bytes, store=store
    )
    try:
        yield installed
    finally:
        if previous is None:
            disable_persistent_cache()
        else:
            configure_persistent_cache(store=previous)
