"""Crash-safe persistent LRU store: the on-disk tier of the memo cache.

The in-memory memo cache in :mod:`repro.sweep.cache` dies with its process;
this module gives the same keys a disk-backed tier shared across processes
and across daemon restarts.  Design constraints, in order:

* **Crash safety.**  Every entry is written to a temporary file in the same
  directory and published with one atomic ``os.replace`` — a process killed
  mid-write leaves only an orphan temp file (swept on the next open), never
  a half-visible entry.  No separate index file exists to corrupt: the
  directory *is* the index, and recency is carried by file mtimes.
* **Corruption is a miss, never an exception.**  Entries carry a magic
  header, payload length and a BLAKE2b checksum; anything that fails to
  parse, verify, or unpickle is counted, unlinked, and reported as a miss —
  the caller recomputes and the bit-identical result is rewritten.
* **Invalidation by provenance, not by guesswork.**  The store directory
  carries a ``meta.json`` manifest (same git-SHA machinery as
  :mod:`repro.obs.manifest`).  Cached values are pure functions of their key
  *for a given tree*, so a store opened under a different code tag (git SHA
  or schema bump) wipes itself instead of serving stale values.
* **Bounded.**  ``max_entries`` / ``max_bytes`` are enforced after every
  write by evicting the least-recently-used entries (oldest mtime; a hit
  refreshes the mtime).

Keys are tuples of primitives (the sweep cache's
``(rel.fingerprint(), m, ...)`` shapes); the full key is stored inside the
entry and compared on read, so a digest collision degrades to a miss.

The ``io_fault`` hook exists for the chaos harness: a callable invoked
before every disk touch that may raise :class:`OSError` (e.g. a simulated
``ENOSPC``).  Write failures are swallowed and counted — a full disk
degrades the store to a pass-through, it never takes the caller down.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Tuple

__all__ = [
    "STORE_SCHEMA_VERSION",
    "DiskStore",
    "DiskStoreStats",
    "default_store_path",
    "default_store_tag",
    "summarize_store",
    "wipe_store",
]

STORE_SCHEMA_VERSION = 1

_MAGIC = b"REPRO-STORE/1"
_META_NAME = "meta.json"
_ENTRIES_DIR = "entries"
_TMP_PREFIX = ".tmp-"
_SUFFIX = ".pkl"


def default_store_path() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/store``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "store")


def default_store_tag() -> str:
    """The invalidation tag a store is opened under: schema version plus the
    git SHA of the producing tree (``unknown`` outside a checkout)."""
    from repro.obs.manifest import current_git_sha

    return f"v{STORE_SCHEMA_VERSION}+{current_git_sha()}"


def _key_digest(key: Hashable) -> str:
    """Stable filename digest of a primitive-tuple key."""
    return hashlib.blake2b(repr(key).encode(), digest_size=16).hexdigest()


def _encode_entry(key: Hashable, value: Any) -> bytes:
    payload = pickle.dumps((key, value), protocol=4)
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    header = b"%s\n%s\n%d\n" % (_MAGIC, digest.encode(), len(payload))
    return header + payload


def _decode_entry(data: bytes) -> Tuple[Hashable, Any]:
    """Parse + verify an entry; raises ``ValueError`` on any corruption."""
    try:
        magic, digest, length, payload = data.split(b"\n", 3)
    except ValueError:
        raise ValueError("truncated header") from None
    if magic != _MAGIC:
        raise ValueError("bad magic")
    if len(payload) != int(length):
        raise ValueError("payload length mismatch")
    if hashlib.blake2b(payload, digest_size=16).hexdigest().encode() != digest:
        raise ValueError("checksum mismatch")
    try:
        key, value = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure = corrupt
        raise ValueError(f"unpicklable payload: {exc!r}") from None
    return key, value


@dataclass(frozen=True)
class DiskStoreStats:
    """Cumulative counters of one :class:`DiskStore` handle plus the
    current on-disk footprint (entries/bytes are re-scanned per call)."""

    hits: int
    misses: int
    writes: int
    corrupt_dropped: int
    write_errors: int
    evictions: int
    invalidated: int
    entries: int
    bytes: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "writes": self.writes,
            "corrupt_dropped": self.corrupt_dropped,
            "write_errors": self.write_errors,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "entries": self.entries,
            "bytes": self.bytes,
        }


class DiskStore:
    """Disk-backed LRU key/value store (see module docstring).

    Thread-safe (one lock around every disk touch) and multi-process-safe
    for correctness: concurrent writers of the same key race benignly (both
    publish bit-identical bytes via atomic rename), and a reader never sees
    a partial entry.
    """

    def __init__(
        self,
        root: str,
        *,
        max_entries: int = 4096,
        max_bytes: int = 256 * 1024 * 1024,
        tag: Optional[str] = None,
        io_fault: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = os.path.abspath(root)
        self.entries_dir = os.path.join(self.root, _ENTRIES_DIR)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tag = default_store_tag() if tag is None else str(tag)
        #: chaos hook: ``io_fault(op, path)`` may raise OSError ("get"/"put")
        self.io_fault = io_fault
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt_dropped = 0
        self._write_errors = 0
        self._evictions = 0
        self._invalidated = 0
        self._open()

    # ------------------------------------------------------------------
    # directory lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> None:
        os.makedirs(self.entries_dir, exist_ok=True)
        meta = self._read_meta()
        if meta is None or meta.get("tag") != self.tag or meta.get(
            "schema_version"
        ) != STORE_SCHEMA_VERSION:
            if meta is not None:
                # a different tree produced these entries: invalidate
                self._invalidated += self._wipe_entries()
            self._write_meta()
        # sweep crash leftovers: orphan temp files from writers that died
        # between write and rename are garbage by construction
        for name in os.listdir(self.entries_dir):
            if name.startswith(_TMP_PREFIX):
                self._unlink(os.path.join(self.entries_dir, name))

    def _read_meta(self) -> Optional[dict]:
        try:
            with open(os.path.join(self.root, _META_NAME)) as fh:
                meta = json.load(fh)
            return meta if isinstance(meta, dict) else None
        except (OSError, ValueError):
            return None

    def _write_meta(self) -> None:
        import time

        meta = {
            "schema_version": STORE_SCHEMA_VERSION,
            "tag": self.tag,
            "created_unix": time.time(),
        }
        tmp = os.path.join(self.root, _META_NAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, os.path.join(self.root, _META_NAME))

    def _wipe_entries(self) -> int:
        n = 0
        for name in os.listdir(self.entries_dir):
            if self._unlink(os.path.join(self.entries_dir, name)):
                n += 1
        return n

    @staticmethod
    def _unlink(path: str) -> bool:
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # the cache protocol
    # ------------------------------------------------------------------
    def _entry_path(self, key: Hashable) -> str:
        return os.path.join(self.entries_dir, _key_digest(key) + _SUFFIX)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)``; corruption and digest collisions are misses."""
        path = self._entry_path(key)
        with self._lock:
            if self.io_fault is not None:
                try:
                    self.io_fault("get", path)
                except OSError:
                    self._misses += 1
                    return False, None
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except FileNotFoundError:
                self._misses += 1
                return False, None
            except OSError:
                self._misses += 1
                return False, None
            try:
                stored_key, value = _decode_entry(data)
            except ValueError:
                # corrupt/truncated: drop it so the rewrite starts clean
                self._corrupt_dropped += 1
                self._unlink(path)
                self._misses += 1
                return False, None
            if stored_key != key:
                # digest collision (astronomically rare): keep the resident
                # entry, report a miss for ours
                self._misses += 1
                return False, None
            try:
                os.utime(path)  # refresh recency for LRU eviction
            except OSError:
                pass
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> bool:
        """Publish ``key -> value`` atomically; returns False (and counts a
        write error) instead of raising when the disk misbehaves."""
        path = self._entry_path(key)
        try:
            blob = _encode_entry(key, value)
        except (pickle.PicklingError, TypeError, AttributeError):
            with self._lock:
                self._write_errors += 1
            return False
        tmp = os.path.join(
            self.entries_dir,
            f"{_TMP_PREFIX}{os.path.basename(path)}.{os.getpid()}",
        )
        with self._lock:
            try:
                if self.io_fault is not None:
                    self.io_fault("put", path)
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)  # the atomic publish
            except OSError:
                self._write_errors += 1
                self._unlink(tmp)
                return False
            self._writes += 1
            self._evict()
            return True

    def _scan(self) -> List[Tuple[str, float, int]]:
        """``(path, mtime, size)`` of every published entry."""
        out: List[Tuple[str, float, int]] = []
        try:
            names = os.listdir(self.entries_dir)
        except OSError:
            return out
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.entries_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            out.append((path, st.st_mtime, st.st_size))
        return out

    def _evict(self) -> None:
        entries = self._scan()
        count = len(entries)
        total = sum(size for _, _, size in entries)
        if count <= self.max_entries and total <= self.max_bytes:
            return
        entries.sort(key=lambda e: e[1])  # oldest mtime first = LRU
        for path, _, size in entries:
            if count <= self.max_entries and total <= self.max_bytes:
                break
            if self._unlink(path):
                self._evictions += 1
                count -= 1
                total -= size

    def contains(self, key: Hashable) -> bool:
        return os.path.exists(self._entry_path(key))

    def clear(self) -> int:
        """Drop every entry (counters survive); returns entries removed."""
        with self._lock:
            return self._wipe_entries()

    def stats(self) -> DiskStoreStats:
        with self._lock:
            entries = self._scan()
            return DiskStoreStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                corrupt_dropped=self._corrupt_dropped,
                write_errors=self._write_errors,
                evictions=self._evictions,
                invalidated=self._invalidated,
                entries=len(entries),
                bytes=sum(size for _, _, size in entries),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskStore({self.root!r}, tag={self.tag!r})"


def summarize_store(root: str) -> dict:
    """Inspect a store directory **without opening it** (no invalidation
    wipe, no meta rewrite) — what ``python -m repro cache stats`` prints."""
    root = os.path.abspath(root)
    entries_dir = os.path.join(root, _ENTRIES_DIR)
    meta: Optional[dict] = None
    try:
        with open(os.path.join(root, _META_NAME)) as fh:
            meta = json.load(fh)
    except (OSError, ValueError):
        meta = None
    n = 0
    total = 0
    try:
        for name in os.listdir(entries_dir):
            if name.endswith(_SUFFIX):
                try:
                    total += os.stat(os.path.join(entries_dir, name)).st_size
                    n += 1
                except OSError:
                    continue
    except OSError:
        pass
    return {
        "path": root,
        "exists": os.path.isdir(entries_dir),
        "tag": None if meta is None else meta.get("tag"),
        "schema_version": None if meta is None else meta.get("schema_version"),
        "current_tag": default_store_tag(),
        "entries": n,
        "bytes": total,
    }


def wipe_store(root: str) -> int:
    """Remove every entry (and the meta manifest) of a store directory;
    returns the number of entry files removed.  Refuses directories that do
    not look like a store (no ``entries/`` subdirectory and no meta.json)
    unless they are empty or missing."""
    root = os.path.abspath(root)
    entries_dir = os.path.join(root, _ENTRIES_DIR)
    meta_path = os.path.join(root, _META_NAME)
    if not os.path.isdir(root):
        return 0
    looks_like_store = os.path.isdir(entries_dir) or os.path.exists(meta_path)
    if not looks_like_store:
        if os.listdir(root):
            raise OSError(
                errno.ENOTEMPTY,
                f"{root} does not look like a repro store; refusing to wipe",
            )
        return 0
    removed = 0
    if os.path.isdir(entries_dir):
        for name in os.listdir(entries_dir):
            try:
                os.unlink(os.path.join(entries_dir, name))
                removed += 1
            except OSError:
                pass
    try:
        os.unlink(meta_path)
    except OSError:
        pass
    return removed
