"""Concrete machine models.

Message passing:

* :class:`BSPg` — Valiant's BSP with per-processor gap ``g`` (locally limited).
* :class:`BSPm` — the paper's globally-limited BSP with aggregate bandwidth
  ``m`` and a pluggable overload penalty ``f_m``.
* :class:`SelfSchedulingBSPm` — the simplified metric ``max(w, h, n/m, L)``.

Shared memory:

* :class:`QSMg` — the Queuing Shared Memory model with gap ``g``.
* :class:`QSMm` — its globally-limited counterpart.

PRAM substrate:

* :class:`PRAM` — synchronous EREW / QRQW / Arbitrary-CRCW PRAM.
* :class:`PRAMm` — the CRCW PRAM(m) of Mansour–Nisan–Vishkin: ``m`` shared
  cells plus a free concurrently-readable ROM holding the input.
"""

from repro.models.bsp_g import BSPg
from repro.models.bsp_m import BSPm
from repro.models.self_scheduling import SelfSchedulingBSPm
from repro.models.qsm_g import QSMg
from repro.models.qsm_m import QSMm
from repro.models.pram import PRAM, ConcurrencyRule
from repro.models.pram_m import PRAMm
from repro.models.logp import LogP
from repro.models.two_level import TwoLevelBSP
from repro.models.base import Machine

__all__ = [
    "Machine",
    "BSPg",
    "BSPm",
    "SelfSchedulingBSPm",
    "QSMg",
    "QSMm",
    "PRAM",
    "PRAMm",
    "ConcurrencyRule",
    "LogP",
    "TwoLevelBSP",
]
