"""The two-parameter bandwidth model of the paper's footnote 2.

Defining the self-scheduling BSP(m), the paper notes it "is similar to a
model where the cost of a superstep is ``g1·n/p + g2·h``, as proposed in
the conclusion of [36]" (Juurlink–Wijshoff's E-BSP paper).  This machine
makes that comparison executable: an *additive* combination of an
aggregate term (``g1·n/p`` — total volume divided by machine width) and a
local term (``g2·h``), instead of the paper's ``max``-combined
``max(h, n/m)``.

With ``g1 = p/m`` and ``g2 = 1`` the two models agree within a factor of 2
(``max(a,b) <= a+b <= 2·max(a,b)``), which the tests pin down — the
footnote's "similar" made precise.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.engine import Machine
from repro.core.events import CostBreakdown, SuperstepRecord
from repro.core.params import MachineParams

__all__ = ["TwoLevelBSP"]


class TwoLevelBSP(Machine):
    """BSP variant charging ``max(w, g1·n/p + g2·h, L)`` per superstep.

    Parameters
    ----------
    params:
        Machine parameters (only ``p`` and ``L`` are used directly).
    g1:
        Aggregate-bandwidth coefficient (the paper's matched setting uses
        ``g1 = p/m`` so that ``g1·n/p = n/m``).
    g2:
        Per-processor coefficient.
    """

    uses_shared_memory = False
    slot_limited = False  # additive metric: injection times are irrelevant

    def __init__(self, params: MachineParams, g1: float = 1.0, g2: float = 1.0) -> None:
        super().__init__(params)
        if g1 < 0 or g2 < 0:
            raise ValueError(f"g1, g2 must be non-negative, got {g1}, {g2}")
        self.g1 = g1
        self.g2 = g2

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        p = self.params.p
        w = max(record.work) if record.work else 0.0
        s_max, r_max = self._max_per_proc_sends_recvs(record, p)
        h = max(s_max, r_max)
        n = record.total_flits
        comm = self.g1 * n / p + self.g2 * h
        breakdown = CostBreakdown(
            work=w, local_band=self.g2 * h, global_band=self.g1 * n / p,
            latency=self.params.L,
        )
        cost = max(w, comm, self.params.L)
        stats = {"h": float(h), "w": w, "n": float(n), "comm": comm}
        return cost, breakdown, stats
