"""The LOGP model (Culler et al.), bulk-synchronous rendition.

The paper's introduction groups LOGP with the locally-limited models: each
processor pays an *overhead* ``o`` per message sent or received and can
inject at most one message per gap ``g``; the network imposes a *capacity
constraint* — at most ``ceil(L/g)`` messages simultaneously in transit to
or from any one processor — which the paper contrasts with the BSP(m)'s
graded penalty ("unlike, e.g., the capacity constraints of the PRAM(m) and
the LOGP, the BSP(m) ... impose[s] a penalty for overloading the network
that grows with the amount of overload").

To keep LOGP comparable to the other machines in this library we price a
bulk-synchronous superstep the standard way LOGP costs are summarized:

.. math::

    T = \\max\\bigl(w, \\; \\max_i (s_i + r_i - 1) \\cdot \\max(g, o) + 2o + L\\bigr)

(per processor: successive message submissions are ``max(g, o)`` apart,
plus the first send's overhead, the last receive's overhead, and one
network latency; see Culler et al.'s h-relation analysis).  The capacity
constraint is enforced as a hard :class:`~repro.core.engine.ModelViolation`
when any processor is the destination of more than ``ceil(L/g)`` messages
injected in one time slot — the executable form of "no graded penalty:
overloading is simply forbidden".
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.core.engine import Machine, ModelViolation
from repro.core.events import CostBreakdown, SuperstepRecord
from repro.core.params import MachineParams

__all__ = ["LogP"]


class LogP(Machine):
    """LOGP machine: latency ``L``, overhead ``o``, gap ``g``, ``P = p``.

    ``params.o`` must be positive to be meaningfully LOGP; ``params.g`` is
    the per-processor gap and ``params.L`` the latency.  The capacity
    constraint ``ceil(L/g)`` per destination per slot can be disabled with
    ``enforce_capacity=False``.
    """

    uses_shared_memory = False
    slot_limited = False

    def __init__(self, params: MachineParams, enforce_capacity: bool = True) -> None:
        super().__init__(params)
        self.enforce_capacity = enforce_capacity

    @property
    def capacity(self) -> int:
        """The LOGP capacity constraint ``ceil(L/g)``."""
        return max(1, math.ceil(self.params.L / self.params.g))

    def _check_capacity(self, record: SuperstepRecord) -> None:
        """At most ceil(L/g) messages may be in transit to one processor;
        we check it per injection slot (messages injected together arrive
        together in a bulk-synchronous step).

        The check itself is one weighted ``bincount`` over ``(dest, slot)``
        keys; only when a violation exists do we replay the columns in
        record order to report the first offender exactly as before.
        """
        cap = self.capacity
        batch = record.msg_batch
        if not batch.n:
            return
        span = int(batch.slot.max()) + 1
        totals = np.bincount(batch.dest * span + batch.slot, weights=batch.size)
        if totals.max() <= cap:
            return
        in_flight: Dict[Tuple[int, int], int] = {}
        for dest, slot, size in zip(
            batch.dest.tolist(), batch.slot.tolist(), batch.size.tolist()
        ):
            key = (dest, slot)
            in_flight[key] = in_flight.get(key, 0) + size
            if in_flight[key] > cap:
                raise ModelViolation(
                    f"LOGP capacity exceeded: {in_flight[key]} messages in "
                    f"transit to processor {dest} at slot {slot} "
                    f"(capacity ceil(L/g) = {cap})"
                )

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        if self.enforce_capacity:
            self._check_capacity(record)
        p = self.params.p
        g, o, L = self.params.g, self.params.o, self.params.L
        w = max(record.work) if record.work else 0.0
        sends = record.sends_by_proc(p)
        recvs = record.recvs_by_proc(p)
        per_proc_msgs = int((sends + recvs).max()) if sends.size else 0
        if per_proc_msgs > 0:
            comm = (per_proc_msgs - 1) * max(g, o) + 2 * o + L
        else:
            comm = 0.0
        breakdown = CostBreakdown(work=w, local_band=comm, latency=L if per_proc_msgs else 0.0)
        cost = max(w, comm)
        stats = {
            "h": float(max(int(sends.max()), int(recvs.max())) if sends.size else 0),
            "w": w,
            "n": float(record.total_flits),
            "per_proc_msgs": float(per_proc_msgs),
        }
        return cost, breakdown, stats
