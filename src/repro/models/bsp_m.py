"""The globally-limited BSP(m) model (paper Section 2).

At each time slot of a superstep every processor may inject at most one flit;
the network absorbs up to ``m`` injections per slot, and slot ``t`` with
``m_t`` injections is charged ``f_m(m_t)`` by a pluggable penalty function
(linear for lower bounds, exponential for upper bounds).  A superstep costs

.. math:: T = \\max(w, \\; h, \\; c_m, \\; L)

where ``c_m`` prices the injection schedule.  See the timing note in
:mod:`repro.core.engine` for why the engine's ``c_m`` counts idle slots
inside the schedule span as elapsed time (exactly the paper's Section 6
accounting); the literal ``sum_t f_m(m_t)`` is reported as
``stats['c_m_paper']``.

Unlike BSP(g), *when* a processor injects matters: programs control injection
slots via ``ctx.send(..., slot=...)``, and the scheduling algorithms of
Section 6 exist precisely to pick good slots when the communication pattern
is unknown.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.core.engine import Machine
from repro.core.events import SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pricing import price_bsp_m

__all__ = ["BSPm"]


class BSPm(Machine):
    """Bulk-Synchronous Parallel machine with aggregate bandwidth ``m``.

    Parameters
    ----------
    params:
        Machine parameters; ``params.m`` must be set.
    penalty:
        The overload charge ``f_m`` (default: the paper's upper-bound
        exponential ``e^{m_t/m - 1}``).
    """

    uses_shared_memory = False
    slot_limited = True

    def __init__(
        self, params: MachineParams, penalty: PenaltyFunction = EXPONENTIAL
    ) -> None:
        params.require_m()
        super().__init__(params)
        self.penalty = penalty

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        p = self.params.p
        m = self.params.require_m()
        w = max(record.work) if record.work else 0.0
        s_max, r_max = self._max_per_proc_sends_recvs(record, p)
        h = max(s_max, r_max)
        counts = np.bincount(self._flit_slots(record))
        return price_bsp_m(
            w, h, record.total_flits, counts, m, self.penalty, self.params.L
        )
