"""The CRCW PRAM(m) model (Mansour–Nisan–Vishkin; paper Sections 2–3, 5).

``p`` processors communicate *only* through ``m`` shared memory cells,
addressed ``0 .. m-1``, readable and writable concurrently (Arbitrary write
resolution).  The input lives in a separate concurrently-readable Read Only
Memory whose access is free — the model's distinguishing feature, which is
why (as the paper notes) distributing the input costs nothing here while it
costs ``n/m`` on the QSM(m).

Programs receive the ROM as a plain sequence captured at :meth:`PRAMm.run`
time; reading it is unrestricted and uncharged, matching the model.  Shared
cells are accessed through the usual ``ctx.read`` / ``ctx.write`` API, and
addresses outside ``range(m)`` raise :class:`~repro.core.engine.ModelViolation`.

Each synchronous step costs 1 (``max(w, 1)`` with explicit local work).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import ModelViolation
from repro.core.events import CostBreakdown, SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pram import PRAM, ConcurrencyRule

__all__ = ["PRAMm"]


class PRAMm(PRAM):
    """CRCW PRAM with ``m`` shared cells and a free input ROM."""

    def __init__(self, params: MachineParams) -> None:
        params.require_m()
        super().__init__(params, rule=ConcurrencyRule.CRCW)
        self.rom: Sequence[Any] = ()

    def set_rom(self, rom: Sequence[Any]) -> None:
        """Install the read-only input memory for subsequent runs."""
        self.rom = rom

    def _validate_addresses(self, record: SuperstepRecord) -> None:
        m = self.params.require_m()
        for batch in (record.read_batch, record.write_batch):
            if not batch.n:
                continue
            addr = batch.addr
            if isinstance(addr, np.ndarray):
                # integer-addressed batch: one vectorized range check
                if addr.min() < 0 or addr.max() >= m:
                    bad = int(addr[(addr < 0) | (addr >= m)][0])
                    raise ModelViolation(
                        f"PRAM(m) shared address must be an int in [0, {m}), "
                        f"got {bad!r}"
                    )
            else:
                for a in addr:
                    if not isinstance(a, (int, np.integer)) or not (0 <= a < m):
                        raise ModelViolation(
                            f"PRAM(m) shared address must be an int in [0, {m}), "
                            f"got {a!r}"
                        )

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        self._validate_addresses(record)
        return super()._price(record)

    def run(self, program: Callable[..., Any], *, rom: Optional[Sequence[Any]] = None, **kwargs):
        """Run ``program(ctx, rom, *args)``; ``rom`` defaults to the machine's
        installed ROM.  ROM reads are free, so the program simply indexes the
        sequence."""
        if rom is not None:
            self.set_rom(rom)
        base_args = kwargs.pop("args", ())
        return super().run(program, args=(self.rom, *base_args), **kwargs)
