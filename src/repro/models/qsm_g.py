"""The Queuing Shared Memory model QSM(g) (Gibbons–Matias–Ramachandran,
paper Section 2).

Processors alternate bulk-synchronous *phases* of shared-memory reads,
shared-memory writes and local computation.  A phase with per-processor work
``c_i``, read counts ``r_i``, write counts ``w_i`` and maximum per-location
contention ``kappa`` costs

.. math:: T = \\max(w, \\; g \\cdot h, \\; \\kappa)

with ``w = max_i c_i`` and ``h = max(1, max_i(r_i, w_i))``.  Note the
asymmetry the paper highlights: the model charges ``g`` per request at a
*processor* but only 1 per request at a *location*.

Model rules enforced by the engine:

* a read's value is usable only in a subsequent phase;
* a location may be read concurrently or written concurrently in a phase,
  but not both;
* concurrent writes resolve by the Arbitrary rule.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.engine import Machine
from repro.core.events import SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pricing import price_qsm_g

__all__ = ["QSMg"]


class QSMg(Machine):
    """Queuing Shared Memory machine with per-processor gap ``g``."""

    uses_shared_memory = True
    slot_limited = False

    def __init__(self, params: MachineParams) -> None:
        super().__init__(params)

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        w = max(record.work) if record.work else 0.0
        h = self._qsm_h(record)
        kappa = self._qsm_contention(record)
        return price_qsm_g(
            w, h, kappa, record.n_reads + record.n_writes, self.params.g
        )
