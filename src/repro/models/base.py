"""Re-export of the abstract :class:`~repro.core.engine.Machine`.

The execution loop lives in :mod:`repro.core.engine`; concrete machines in
this package only implement pricing.  This module exists so that user code
can import the abstract base from the models package it conceptually belongs
to.
"""

from repro.core.engine import Machine, ModelViolation, ProgramError

__all__ = ["Machine", "ModelViolation", "ProgramError"]
