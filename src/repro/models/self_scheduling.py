"""The self-scheduling BSP(m) model (paper Section 2, "A simplified cost
metric").

Injection times within a superstep are ignored and a superstep transmitting
``n`` flits in total costs

.. math:: T = \\max(w, \\; h, \\; n/m, \\; L).

Section 6's Unbalanced-Send theorem is exactly the statement that any
algorithm written against this metric can be executed on the real BSP(m) at a
``(1 + eps)`` factor w.h.p. — the :mod:`repro.scheduling` package provides
the transformation, and ``benchmarks/bench_self_scheduling.py`` measures the
factor empirically.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.engine import Machine
from repro.core.events import SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pricing import price_self_scheduling

__all__ = ["SelfSchedulingBSPm"]


class SelfSchedulingBSPm(Machine):
    """BSP(m) variant charging ``max(w, h, n/m, L)`` per superstep."""

    uses_shared_memory = False
    slot_limited = False  # slots are ignored, so no per-slot rule to enforce

    def __init__(self, params: MachineParams) -> None:
        params.require_m()
        super().__init__(params)

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        p = self.params.p
        m = self.params.require_m()
        w = max(record.work) if record.work else 0.0
        s_max, r_max = self._max_per_proc_sends_recvs(record, p)
        h = max(s_max, r_max)
        return price_self_scheduling(
            w, h, record.total_flits, m, self.params.L
        )
