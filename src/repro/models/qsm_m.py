"""The globally-limited QSM(m) model (defined by the paper, Section 2).

Identical to QSM(g) except the per-processor gap is replaced by aggregate
bandwidth: shared-memory requests are injected into time slots, at most one
per processor per slot, and slot ``t`` with ``m_t`` requests is charged
``f_m(m_t)``.  A phase costs

.. math:: T = \\max(w, \\; h, \\; \\kappa, \\; c_m).

As in :mod:`repro.models.bsp_m`, the engine's ``c_m`` counts idle slots
inside the schedule span as elapsed time; the literal paper charge is in
``stats['c_m_paper']``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.core.engine import Machine
from repro.core.events import SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pricing import price_qsm_m

__all__ = ["QSMm"]


class QSMm(Machine):
    """Queuing Shared Memory machine with aggregate bandwidth ``m``."""

    uses_shared_memory = True
    slot_limited = True

    def __init__(
        self, params: MachineParams, penalty: PenaltyFunction = EXPONENTIAL
    ) -> None:
        params.require_m()
        super().__init__(params)
        self.penalty = penalty

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        m = self.params.require_m()
        w = max(record.work) if record.work else 0.0
        h = self._qsm_h(record)
        kappa = self._qsm_contention(record)
        counts = np.bincount(self._request_slots(record))
        return price_qsm_m(
            w, h, kappa, record.n_reads + record.n_writes, counts, m, self.penalty
        )
