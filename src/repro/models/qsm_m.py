"""The globally-limited QSM(m) model (defined by the paper, Section 2).

Identical to QSM(g) except the per-processor gap is replaced by aggregate
bandwidth: shared-memory requests are injected into time slots, at most one
per processor per slot, and slot ``t`` with ``m_t`` requests is charged
``f_m(m_t)``.  A phase costs

.. math:: T = \\max(w, \\; h, \\; \\kappa, \\; c_m).

As in :mod:`repro.models.bsp_m`, the engine's ``c_m`` counts idle slots
inside the schedule span as elapsed time; the literal paper charge is in
``stats['c_m_paper']``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.core.engine import Machine
from repro.core.events import CostBreakdown, SuperstepRecord
from repro.core.params import MachineParams

__all__ = ["QSMm"]


class QSMm(Machine):
    """Queuing Shared Memory machine with aggregate bandwidth ``m``."""

    uses_shared_memory = True
    slot_limited = True

    def __init__(
        self, params: MachineParams, penalty: PenaltyFunction = EXPONENTIAL
    ) -> None:
        params.require_m()
        super().__init__(params)
        self.penalty = penalty

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        m = self.params.require_m()
        w = max(record.work) if record.work else 0.0
        h = self._qsm_h(record)
        kappa = self._qsm_contention(record)
        slots = self._request_slots(record)
        if slots.size:
            counts = np.bincount(slots)
            charges = self.penalty(counts, m)
            comm = float(np.sum(np.maximum(charges, 1.0)))
            c_m_paper = float(np.sum(charges))
            span = float(counts.size)
            overloaded = int(np.sum(counts > m))
        else:
            comm = c_m_paper = span = 0.0
            overloaded = 0
        breakdown = CostBreakdown(
            work=w,
            local_band=float(h),
            global_band=comm,
            contention=float(kappa),
        )
        cost = breakdown.total()
        stats = {
            "h": float(h),
            "w": w,
            "kappa": float(kappa),
            "c_m": comm,
            "c_m_paper": c_m_paper,
            "span": span,
            "overloaded_slots": float(overloaded),
            "n": float(record.n_reads + record.n_writes),
        }
        return cost, breakdown, stats
