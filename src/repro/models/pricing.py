"""Array-in/array-out pricing functions for the five cost models.

Each model's :meth:`~repro.core.engine.Machine._price` is a thin adapter:
it extracts the superstep's scalar/array summary (max work, per-processor
``h``, the slot-injection histogram, QSM contention) from the
:class:`~repro.core.events.SuperstepRecord` and delegates to the function
here for that model.  The functions take plain floats and NumPy arrays and
return ``(cost, CostBreakdown, stats)`` — no record, machine or engine
types — so they can be called directly by the sweep engine, tested against
hand-built histograms, and share the (optionally Numba-JIT'd) penalty
kernels in :mod:`repro.core.kernels`.

Bit-identity contract: every float reduction runs through ``np.sum`` (via
:func:`repro.core.kernels.slot_charge_stats`), and the stats dicts preserve
the historical key insertion order, so model times, breakdowns and stats
are exactly those of the pre-refactor inline code.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.events import CostBreakdown
from repro.core.kernels import slot_charge_stats

__all__ = [
    "price_bsp_g",
    "price_bsp_m",
    "price_qsm_g",
    "price_qsm_m",
    "price_self_scheduling",
]

_PriceResult = Tuple[float, CostBreakdown, Dict[str, float]]


def price_bsp_g(w: float, h: float, n: int, g: float, L: float) -> _PriceResult:
    """BSP(g): ``T = max(w, g*h, L)`` (paper Section 2)."""
    breakdown = CostBreakdown(work=w, local_band=g * h, latency=L)
    stats = {"h": float(h), "w": w, "n": float(n)}
    return breakdown.total(), breakdown, stats


def price_bsp_m(
    w: float, h: float, n: int, counts: np.ndarray, m: int, penalty, L: float
) -> _PriceResult:
    """BSP(m): ``T = max(w, h, c_m, L)`` with ``c_m`` priced from the
    slot-injection histogram ``counts`` by ``penalty`` (paper Section 2)."""
    comm, c_m_paper, span, overloaded, max_load = slot_charge_stats(
        counts, m, penalty
    )
    breakdown = CostBreakdown(
        work=w, local_band=float(h), global_band=comm, latency=L
    )
    stats = {
        "h": float(h),
        "w": w,
        "n": float(n),
        "c_m": comm,
        "c_m_paper": c_m_paper,
        "span": span,
        "overloaded_slots": float(overloaded),
        "max_slot_load": float(max_load),
    }
    return breakdown.total(), breakdown, stats


def price_qsm_g(
    w: float, h: float, kappa: float, n: int, g: float
) -> _PriceResult:
    """QSM(g): ``T = max(w, g*h, kappa)`` (paper Section 2)."""
    breakdown = CostBreakdown(work=w, local_band=g * h, contention=float(kappa))
    stats = {"h": float(h), "w": w, "kappa": float(kappa), "n": float(n)}
    return breakdown.total(), breakdown, stats


def price_qsm_m(
    w: float, h: float, kappa: float, n: int, counts: np.ndarray, m: int, penalty
) -> _PriceResult:
    """QSM(m): ``T = max(w, h, kappa, c_m)`` with ``c_m`` priced from the
    request-slot histogram ``counts`` (paper Section 2)."""
    comm, c_m_paper, span, overloaded, _ = slot_charge_stats(counts, m, penalty)
    breakdown = CostBreakdown(
        work=w,
        local_band=float(h),
        global_band=comm,
        contention=float(kappa),
    )
    stats = {
        "h": float(h),
        "w": w,
        "kappa": float(kappa),
        "c_m": comm,
        "c_m_paper": c_m_paper,
        "span": span,
        "overloaded_slots": float(overloaded),
        "n": float(n),
    }
    return breakdown.total(), breakdown, stats


def price_self_scheduling(
    w: float, h: float, n: int, m: int, L: float
) -> _PriceResult:
    """Self-scheduling BSP(m): ``T = max(w, h, n/m, L)`` — the simplified
    metric whose executability Unbalanced-Send certifies (Theorem 6.2)."""
    breakdown = CostBreakdown(
        work=w, local_band=float(h), global_band=n / m, latency=L
    )
    stats = {"h": float(h), "w": w, "n": float(n)}
    return breakdown.total(), breakdown, stats
