"""Array-in/array-out pricing functions for the five cost models.

Each model's :meth:`~repro.core.engine.Machine._price` is a thin adapter:
it extracts the superstep's scalar/array summary (max work, per-processor
``h``, the slot-injection histogram, QSM contention) from the
:class:`~repro.core.events.SuperstepRecord` and delegates to the function
here for that model.  The functions take plain floats and NumPy arrays and
return ``(cost, CostBreakdown, stats)`` — no record, machine or engine
types — so they can be called directly by the sweep engine, tested against
hand-built histograms, and share the (optionally Numba-JIT'd) penalty
kernels in :mod:`repro.core.kernels`.

Bit-identity contract: every float reduction runs through ``np.sum`` (via
:func:`repro.core.kernels.slot_charge_stats`), and the stats dicts preserve
the historical key insertion order, so model times, breakdowns and stats
are exactly those of the pre-refactor inline code.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import CostBreakdown
from repro.core.kernels import slot_charge_stats, slot_charge_stats_batched

__all__ = [
    "price_bsp_g",
    "price_bsp_g_batch",
    "price_bsp_m",
    "price_bsp_m_batch",
    "price_qsm_g",
    "price_qsm_g_batch",
    "price_qsm_m",
    "price_qsm_m_batch",
    "price_self_scheduling",
    "price_self_scheduling_batch",
]

_PriceResult = Tuple[float, CostBreakdown, Dict[str, float]]


def price_bsp_g(w: float, h: float, n: int, g: float, L: float) -> _PriceResult:
    """BSP(g): ``T = max(w, g*h, L)`` (paper Section 2)."""
    breakdown = CostBreakdown(work=w, local_band=g * h, latency=L)
    stats = {"h": float(h), "w": w, "n": float(n)}
    return breakdown.total(), breakdown, stats


def price_bsp_m(
    w: float, h: float, n: int, counts: np.ndarray, m: int, penalty, L: float
) -> _PriceResult:
    """BSP(m): ``T = max(w, h, c_m, L)`` with ``c_m`` priced from the
    slot-injection histogram ``counts`` by ``penalty`` (paper Section 2)."""
    comm, c_m_paper, span, overloaded, max_load = slot_charge_stats(
        counts, m, penalty
    )
    breakdown = CostBreakdown(
        work=w, local_band=float(h), global_band=comm, latency=L
    )
    stats = {
        "h": float(h),
        "w": w,
        "n": float(n),
        "c_m": comm,
        "c_m_paper": c_m_paper,
        "span": span,
        "overloaded_slots": float(overloaded),
        "max_slot_load": float(max_load),
    }
    return breakdown.total(), breakdown, stats


def price_qsm_g(
    w: float, h: float, kappa: float, n: int, g: float
) -> _PriceResult:
    """QSM(g): ``T = max(w, g*h, kappa)`` (paper Section 2)."""
    breakdown = CostBreakdown(work=w, local_band=g * h, contention=float(kappa))
    stats = {"h": float(h), "w": w, "kappa": float(kappa), "n": float(n)}
    return breakdown.total(), breakdown, stats


def price_qsm_m(
    w: float, h: float, kappa: float, n: int, counts: np.ndarray, m: int, penalty
) -> _PriceResult:
    """QSM(m): ``T = max(w, h, kappa, c_m)`` with ``c_m`` priced from the
    request-slot histogram ``counts`` (paper Section 2)."""
    comm, c_m_paper, span, overloaded, _ = slot_charge_stats(counts, m, penalty)
    breakdown = CostBreakdown(
        work=w,
        local_band=float(h),
        global_band=comm,
        contention=float(kappa),
    )
    stats = {
        "h": float(h),
        "w": w,
        "kappa": float(kappa),
        "c_m": comm,
        "c_m_paper": c_m_paper,
        "span": span,
        "overloaded_slots": float(overloaded),
        "n": float(n),
    }
    return breakdown.total(), breakdown, stats


def price_self_scheduling(
    w: float, h: float, n: int, m: int, L: float
) -> _PriceResult:
    """Self-scheduling BSP(m): ``T = max(w, h, n/m, L)`` — the simplified
    metric whose executability Unbalanced-Send certifies (Theorem 6.2)."""
    breakdown = CostBreakdown(
        work=w, local_band=float(h), global_band=n / m, latency=L
    )
    stats = {"h": float(h), "w": w, "n": float(n)}
    return breakdown.total(), breakdown, stats


# ----------------------------------------------------------------------
# Batched variants — one superstep structure, B parameter points
# ----------------------------------------------------------------------
#
# The batched replay engine (repro.core.batched) summarizes each recorded
# superstep's structure once (w, h, histogram, kappa) and prices it under B
# parameter points in one call.  These functions take the scalar structure
# summary plus per-trial parameter columns and return the per-trial
# (cost, breakdown, stats) triples.  Bit-identity contract: element b of
# the returned list equals the scalar function applied to trial b's
# parameters — the histogram charge matrix reduces per-trial through
# slot_charge_stats_batched (same kernel calls, same np.sum order), and
# the breakdowns/stats are built with the exact scalar-path arithmetic and
# historical key insertion order.


def price_bsp_g_batch(
    w: float, h: float, n: int, g_col: Sequence[float], L_col: Sequence[float]
) -> List[_PriceResult]:
    """Batched :func:`price_bsp_g` over parameter columns ``(g, L)``."""
    return [price_bsp_g(w, h, n, g, L) for g, L in zip(g_col, L_col)]


def price_bsp_m_batch(
    w: float,
    h: float,
    n: int,
    counts: np.ndarray,
    m_col: Sequence[int],
    penalties: Sequence,
    L_col: Sequence[float],
) -> List[_PriceResult]:
    """Batched :func:`price_bsp_m`: the histogram is priced for all trials
    in one :func:`slot_charge_stats_batched` pass."""
    comm, c_m_paper, span, overloaded, max_load = slot_charge_stats_batched(
        counts, m_col, penalties
    )
    out: List[_PriceResult] = []
    for b, L in enumerate(L_col):
        breakdown = CostBreakdown(
            work=w, local_band=float(h), global_band=float(comm[b]), latency=L
        )
        stats = {
            "h": float(h),
            "w": w,
            "n": float(n),
            "c_m": float(comm[b]),
            "c_m_paper": float(c_m_paper[b]),
            "span": span,
            "overloaded_slots": float(overloaded[b]),
            "max_slot_load": float(max_load),
        }
        out.append((breakdown.total(), breakdown, stats))
    return out


def price_qsm_g_batch(
    w: float, h: float, kappa: float, n: int, g_col: Sequence[float]
) -> List[_PriceResult]:
    """Batched :func:`price_qsm_g` over a ``g`` column."""
    return [price_qsm_g(w, h, kappa, n, g) for g in g_col]


def price_qsm_m_batch(
    w: float,
    h: float,
    kappa: float,
    n: int,
    counts: np.ndarray,
    m_col: Sequence[int],
    penalties: Sequence,
) -> List[_PriceResult]:
    """Batched :func:`price_qsm_m`: one histogram pass for all trials."""
    comm, c_m_paper, span, overloaded, _ = slot_charge_stats_batched(
        counts, m_col, penalties
    )
    out: List[_PriceResult] = []
    for b in range(len(m_col)):
        breakdown = CostBreakdown(
            work=w,
            local_band=float(h),
            global_band=float(comm[b]),
            contention=float(kappa),
        )
        stats = {
            "h": float(h),
            "w": w,
            "kappa": float(kappa),
            "c_m": float(comm[b]),
            "c_m_paper": float(c_m_paper[b]),
            "span": span,
            "overloaded_slots": float(overloaded[b]),
            "n": float(n),
        }
        out.append((breakdown.total(), breakdown, stats))
    return out


def price_self_scheduling_batch(
    w: float, h: float, n: int, m_col: Sequence[int], L_col: Sequence[float]
) -> List[_PriceResult]:
    """Batched :func:`price_self_scheduling` over ``(m, L)`` columns."""
    return [price_self_scheduling(w, h, n, m, L) for m, L in zip(m_col, L_col)]
