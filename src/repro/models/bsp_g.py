"""The locally-limited BSP(g) model (Valiant 1990, paper Section 2).

A superstep in which processor ``i`` performs ``w_i`` local work, sends
``s_i`` flits and receives ``r_i`` flits costs

.. math:: T = \\max(w, \\; g \\cdot h, \\; L)

with ``w = max_i w_i`` and ``h = max_i max(s_i, r_i)``.  Injection slots are
irrelevant: the machine charges only the per-processor maxima, so no message
scheduling can help — this is the executable form of the paper's observation
that "no special scheduling is needed for locally-limited models".
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.engine import Machine
from repro.core.events import SuperstepRecord
from repro.core.params import MachineParams
from repro.models.pricing import price_bsp_g

__all__ = ["BSPg"]


class BSPg(Machine):
    """Bulk-Synchronous Parallel machine with per-processor gap ``g``."""

    uses_shared_memory = False
    slot_limited = False

    def __init__(self, params: MachineParams) -> None:
        super().__init__(params)

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        p = self.params.p
        w = max(record.work) if record.work else 0.0
        s_max, r_max = self._max_per_proc_sends_recvs(record, p)
        h = max(s_max, r_max)
        return price_bsp_g(w, h, record.total_flits, self.params.g, self.params.L)
