"""Synchronous PRAM substrate (EREW / QRQW / Arbitrary-CRCW).

The paper leans on PRAMs in three ways, all of which this module supports:

1. EREW/QRQW PRAM algorithms are mapped onto the QSM(m)/BSP(m) by the
   generic emulation of Section 4 (input distribution + naive simulation on
   ``m`` processors) — see :mod:`repro.algorithms.emulation`.
2. The Arbitrary-CRCW PRAM realizes h-relations in ``O(h)`` time (Section
   4.1), the gadget behind converting CRCW lower bounds into BSP(g) lower
   bounds — see :mod:`repro.algorithms.h_relation`.
3. The CRCW PRAM(m) of Section 5 is the ``m``-cell restriction; see
   :mod:`repro.models.pram_m`.

Programs use the same generator/`yield` style as the bulk-synchronous
machines, but here every ``yield`` is a single synchronous PRAM step.  Reads
issued in a step return the cell contents from *before* that step's writes
(standard read-then-write PRAM semantics); concurrent writes resolve by the
Arbitrary rule (the engine deterministically lets the last write request in
processor order win, which is one admissible adversary choice).

Step costs:

========  ==================================================================
EREW      1 per step; any location touched by two requests raises
          :class:`~repro.core.engine.ModelViolation`.
QRQW      ``max(w, kappa)`` per step — the queue-read queue-write rule.
CRCW      1 per step (i.e. ``max(w, 1)``); concurrent and mixed access OK.
========  ==================================================================
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.core.engine import Machine, ModelViolation, _addr_group_stats
from repro.core.events import CostBreakdown, SuperstepRecord
from repro.core.params import MachineParams

__all__ = ["PRAM", "ConcurrencyRule"]


class ConcurrencyRule(str, enum.Enum):
    """Memory-access discipline of a PRAM variant."""

    EREW = "erew"
    QRQW = "qrqw"
    CRCW = "crcw"  # Arbitrary write resolution


class PRAM(Machine):
    """Synchronous PRAM with a selectable concurrency rule.

    Parameters
    ----------
    params:
        Only ``params.p`` is meaningful; ``g``/``m``/``L`` are ignored —
        the PRAM is the bandwidth-unlimited substrate.
    rule:
        One of :class:`ConcurrencyRule` (or its string value).
    """

    uses_shared_memory = True
    slot_limited = False

    def __init__(
        self,
        params: MachineParams,
        rule: ConcurrencyRule | str = ConcurrencyRule.CRCW,
    ) -> None:
        super().__init__(params)
        self.rule = ConcurrencyRule(rule)

    # ------------------------------------------------------------------
    def _contention(self, record: SuperstepRecord) -> Tuple[int, int]:
        """(max read contention, max write contention) per location —
        mixed access allowed (read-then-write step semantics).  Group-by
        runs on the record's address columns (``np.unique`` for integer
        address spaces) rather than a per-request dict loop."""
        rb, wb = record.read_batch, record.write_batch
        max_r = _addr_group_stats(rb.addr)[0] if rb.n else 0
        max_w = _addr_group_stats(wb.addr)[0] if wb.n else 0
        return max_r, max_w

    def _price(
        self, record: SuperstepRecord
    ) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        w = max(record.work) if record.work else 0.0
        max_r, max_w = self._contention(record)
        kappa = max(max_r, max_w)
        if self.rule is ConcurrencyRule.EREW and kappa > 1:
            raise ModelViolation(
                f"EREW PRAM step {record.index} has contention {kappa} > 1"
            )
        if self.rule is ConcurrencyRule.QRQW:
            step_cost = max(w, float(kappa), 1.0)
            contention = float(kappa)
        else:
            step_cost = max(w, 1.0)
            contention = float(min(kappa, 1))
        breakdown = CostBreakdown(work=w, contention=contention)
        # A PRAM step always takes at least unit time.
        cost = max(step_cost, breakdown.total(), 1.0)
        stats = {
            "w": w,
            "kappa": float(kappa),
            "reads": float(record.n_reads),
            "writes": float(record.n_writes),
        }
        return cost, breakdown, stats
