"""Keyed memo cache for pure, expensive sweep intermediates.

Sweep grids routinely share work: every trial of an Unbalanced-Send
experiment compares against the *same* offline-optimal schedule, and grid
points that differ only in penalty family, ``L``, or ``tau`` re-price the
same schedule.  This module caches the two layers separately:

* **schedules** — ``offline_optimal_schedule(rel, m)`` keyed by
  ``(rel.fingerprint(), m)``: the O(n log n) construction is shared across
  every pricing variant;
* **reports** — ``evaluate_schedule`` output keyed additionally by
  ``(L, penalty.cache_key(), tau)``: the priced
  :class:`~repro.scheduling.analysis.ScheduleReport` itself.

Everything cached is a pure function of its key, so cache hits are
bit-identical to recomputation — the pool-vs-serial identity guarantee is
unaffected by cache state.  Each process keeps its own cache (workers
forked after a warm-up inherit the parent's entries for free); hit/miss
counters are exported per trial so :class:`~repro.sweep.telemetry.SweepResult`
can aggregate a sweep-wide hit rate even across pool workers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.workloads.relations import HRelation

__all__ = [
    "cached_offline_schedule",
    "cached_offline_report",
    "cache_stats",
    "clear_cache",
    "CacheStats",
]

#: entries kept per layer before FIFO eviction (a sweep grid rarely needs
#: more than a handful of distinct relations; this only bounds memory)
MAX_ENTRIES = 256

_schedules: "OrderedDict[Hashable, Any]" = OrderedDict()
_reports: "OrderedDict[Hashable, Any]" = OrderedDict()
_hits = 0
_misses = 0


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters of this process's cache."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def cache_stats() -> CacheStats:
    """Snapshot the counters (cheap; called around every sweep trial)."""
    return CacheStats(hits=_hits, misses=_misses, entries=len(_schedules) + len(_reports))


def clear_cache() -> None:
    """Drop all entries and zero the counters (tests, memory pressure)."""
    global _hits, _misses
    _schedules.clear()
    _reports.clear()
    _hits = _misses = 0


def _get(store: "OrderedDict[Hashable, Any]", key: Hashable):
    global _hits, _misses
    if key in store:
        _hits += 1
        return True, store[key]
    _misses += 1
    return False, None


def _put(store: "OrderedDict[Hashable, Any]", key: Hashable, value: Any) -> None:
    store[key] = value
    while len(store) > MAX_ENTRIES:
        store.popitem(last=False)


def cached_offline_schedule(rel: HRelation, m: int):
    """``offline_optimal_schedule(rel, m)``, memoized on
    ``(rel.fingerprint(), m)``."""
    key = (rel.fingerprint(), int(m))
    hit, value = _get(_schedules, key)
    if hit:
        return value
    from repro.scheduling.offline import offline_optimal_schedule

    value = offline_optimal_schedule(rel, m)
    _put(_schedules, key, value)
    return value


def cached_offline_report(
    rel: HRelation,
    m: int,
    *,
    L: float = 0.0,
    penalty: PenaltyFunction = EXPONENTIAL,
    tau: float = 0.0,
):
    """The priced offline-optimal :class:`ScheduleReport`, memoized on
    ``(rel.fingerprint(), m, L, penalty.cache_key(), tau)``.

    Grid points that differ only in penalty family / ``L`` / ``tau`` share
    the underlying schedule via :func:`cached_offline_schedule` and pay one
    (vectorized, cheap) re-pricing each.
    """
    key = (rel.fingerprint(), int(m), float(L), penalty.cache_key(), float(tau))
    hit, value = _get(_reports, key)
    if hit:
        return value
    from repro.scheduling.analysis import evaluate_schedule

    sched = cached_offline_schedule(rel, m)
    value = evaluate_schedule(sched, m=m, L=L, penalty=penalty, tau=tau)
    _put(_reports, key, value)
    return value
