"""Keyed memo cache for pure, expensive sweep intermediates.

Sweep grids routinely share work: every trial of an Unbalanced-Send
experiment compares against the *same* offline-optimal schedule, and grid
points that differ only in penalty family, ``L``, or ``tau`` re-price the
same schedule.  This module caches the two layers separately:

* **schedules** — ``offline_optimal_schedule(rel, m)`` keyed by
  ``(rel.fingerprint(), m)``: the O(n log n) construction is shared across
  every pricing variant;
* **reports** — ``evaluate_schedule`` output keyed additionally by
  ``(L, penalty.cache_key(), tau)``: the priced
  :class:`~repro.scheduling.analysis.ScheduleReport` itself.

Everything cached is a pure function of its key, so cache hits are
bit-identical to recomputation — the pool-vs-serial identity guarantee is
unaffected by cache state.  Each process keeps its own cache (workers
forked after a warm-up inherit the parent's entries for free); hit/miss
counters are exported per trial so :class:`~repro.sweep.telemetry.SweepResult`
can aggregate a sweep-wide hit rate even across pool workers.

An optional **persistent tier** (a :class:`repro.store.DiskStore` installed
via :func:`set_persistent_store`, normally through
``repro.store.persistent``) sits below the in-memory layers: a memory miss
consults the disk store; a disk hit is promoted into memory and counted in
``disk_hits``; every fresh computation is written through to disk.  Because
cached values are pure functions of their keys *for a given tree* and the
store invalidates on git-SHA change, the bit-identity guarantee extends
across processes and daemon restarts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.workloads.relations import HRelation

__all__ = [
    "cached_offline_schedule",
    "cached_offline_report",
    "cache_stats",
    "clear_cache",
    "snapshot_entries",
    "install_entries",
    "set_persistent_store",
    "persistent_store",
    "CacheStats",
]

#: entries kept per layer before FIFO eviction (a sweep grid rarely needs
#: more than a handful of distinct relations; this only bounds memory)
MAX_ENTRIES = 256

_schedules: "OrderedDict[Hashable, Any]" = OrderedDict()
_reports: "OrderedDict[Hashable, Any]" = OrderedDict()
_hits = 0
_misses = 0
_disk_hits = 0

#: the persistent tier, if any — duck-typed to ``repro.store.DiskStore``
#: (``get(key) -> (hit, value)`` / ``put(key, value)``); disk keys are
#: namespaced ``(layer,) + key`` so the two layers cannot collide
_persistent: Optional[Any] = None


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters of this process's cache.

    ``hits`` counts every hit (memory or disk); ``disk_hits`` is the subset
    answered by the persistent tier (0 when no store is installed).
    """

    hits: int
    misses: int
    entries: int
    disk_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def cache_stats() -> CacheStats:
    """Snapshot the counters (cheap; called around every sweep trial)."""
    return CacheStats(
        hits=_hits,
        misses=_misses,
        entries=len(_schedules) + len(_reports),
        disk_hits=_disk_hits,
    )


def clear_cache() -> None:
    """Drop all in-memory entries and zero the counters (tests, memory
    pressure).  The persistent tier, if installed, is left untouched —
    wipe it explicitly via ``DiskStore.clear()`` / ``repro cache clear``."""
    global _hits, _misses, _disk_hits
    _schedules.clear()
    _reports.clear()
    _hits = _misses = _disk_hits = 0


def snapshot_entries() -> dict:
    """A picklable snapshot of both in-memory layers, for warm-starting
    sweep workers that cannot fork-inherit the parent's cache (spawn
    start method, remote ranks).  Counters are *not* included — a warm
    start changes where lookups are answered, never the hit accounting
    semantics of the receiving process."""
    return {
        "schedules": list(_schedules.items()),
        "reports": list(_reports.items()),
    }


def install_entries(snapshot: dict) -> None:
    """Install a :func:`snapshot_entries` payload into this process's
    cache (existing entries are kept; insertion order and the
    ``MAX_ENTRIES`` bound are respected)."""
    for key, value in snapshot.get("schedules", []):
        _put_memory(_schedules, key, value)
    for key, value in snapshot.get("reports", []):
        _put_memory(_reports, key, value)


def set_persistent_store(store: Optional[Any]) -> None:
    """Install (or detach, with ``None``) the disk-backed tier."""
    global _persistent
    _persistent = store


def persistent_store() -> Optional[Any]:
    """The installed persistent tier, if any."""
    return _persistent


def _get(store: "OrderedDict[Hashable, Any]", layer: str, key: Hashable):
    global _hits, _misses, _disk_hits
    if key in store:
        _hits += 1
        return True, store[key]
    if _persistent is not None:
        hit, value = _persistent.get((layer,) + tuple(key))
        if hit:
            _hits += 1
            _disk_hits += 1
            _put_memory(store, key, value)  # promote for the next lookup
            return True, value
    _misses += 1
    return False, None


def _put_memory(store: "OrderedDict[Hashable, Any]", key: Hashable, value: Any) -> None:
    store[key] = value
    while len(store) > MAX_ENTRIES:
        store.popitem(last=False)


def _put(
    store: "OrderedDict[Hashable, Any]", layer: str, key: Hashable, value: Any
) -> None:
    _put_memory(store, key, value)
    if _persistent is not None:
        # write-through; a full/broken disk degrades silently to memory-only
        _persistent.put((layer,) + tuple(key), value)


def cached_offline_schedule(rel: HRelation, m: int):
    """``offline_optimal_schedule(rel, m)``, memoized on
    ``(rel.fingerprint(), m)``."""
    key = (rel.fingerprint(), int(m))
    hit, value = _get(_schedules, "schedule", key)
    if hit:
        return value
    from repro.scheduling.offline import offline_optimal_schedule

    value = offline_optimal_schedule(rel, m)
    _put(_schedules, "schedule", key, value)
    return value


def cached_offline_report(
    rel: HRelation,
    m: int,
    *,
    L: float = 0.0,
    penalty: PenaltyFunction = EXPONENTIAL,
    tau: float = 0.0,
):
    """The priced offline-optimal :class:`ScheduleReport`, memoized on
    ``(rel.fingerprint(), m, L, penalty.cache_key(), tau)``.

    Grid points that differ only in penalty family / ``L`` / ``tau`` share
    the underlying schedule via :func:`cached_offline_schedule` and pay one
    (vectorized, cheap) re-pricing each.
    """
    key = (rel.fingerprint(), int(m), float(L), penalty.cache_key(), float(tau))
    hit, value = _get(_reports, "report", key)
    if hit:
        return value
    from repro.scheduling.analysis import evaluate_schedule

    sched = cached_offline_schedule(rel, m)
    value = evaluate_schedule(sched, m=m, L=L, penalty=penalty, tau=tau)
    _put(_reports, "report", key, value)
    return value
