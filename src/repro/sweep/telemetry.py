"""Columnar sweep telemetry: per-trial wall time, worker attribution,
cache effectiveness, and JSON export.

:class:`SweepResult` is the runner's return type.  Trial outputs are kept
in task order (``results[i]`` belongs to ``tasks()[i]``, pool or serial),
so downstream aggregation is deterministic.  Telemetry columns are
structure-of-arrays (NumPy), matching the repo's columnar idiom: summaries
(utilization, hit rate, slowest trial) are single vector reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

__all__ = ["TrialRecord", "SweepResult", "TELEMETRY_SCHEMA_VERSION"]

#: Telemetry/JSON schema: 1 = the original columnar export; 2 adds
#: ``schema_version`` itself plus the sweep's root ``seed`` (satellite of
#: the observability PR), making exported records self-describing; 3 adds
#: the error-policy columns (``status``/``attempts``/``error`` per trial,
#: the ``errors`` summary block) introduced with ``on_error=``; 4 adds the
#: ``backend`` execution block (pluggable executor backends: backend name,
#: per-worker task counts and busy seconds, steals, peak queue depth,
#: worker deaths) — and, with the work-stealing pool, failure accounting
#: became per *task*: a hard worker death skips exactly the in-flight
#: trial (``worker`` = the dead pid, or -1 when it died unattributed),
#: never a whole chunk; 5 adds the ``ledger`` block — the merged
#: :class:`~repro.obs.ledger.LoadLedger` summary (total charge, charge by
#: binding restriction, flit totals, mean utilizations) accumulated from
#: per-trial worker dumps in task order, present when a ledger was active
#: during the sweep and ``None`` otherwise; 6 adds the ``batch`` block
#: (batched multi-trial execution: whether fingerprint grouping engaged,
#: group count and sizes, dispatch units actually shipped to the backend,
#: the trials-per-dispatch amortization ratio, and batches that fell back
#: to per-trial execution after an error).
TELEMETRY_SCHEMA_VERSION = 6


@dataclass(frozen=True)
class TrialRecord:
    """Telemetry of one executed trial (not its scientific output)."""

    index: int
    point: str
    trial: int
    wall_time: float  # seconds inside the trial fn
    worker: int  # executing process id (-1: died before reporting one)
    cache_hits: int  # memo-cache hits during this trial
    cache_misses: int
    attempts: int = 1  # executions under on_error="retry:N" (1 = first try)
    status: str = "ok"  # "ok" | "skipped" (failed under skip/retry policy)
    error: str = ""  # repr of the final failure when skipped


@dataclass
class SweepResult:
    """Ordered trial outputs plus columnar execution telemetry."""

    name: str
    jobs: int
    elapsed: float  # wall-clock of the whole sweep, seconds
    results: List[Any]  # trial outputs, task order
    records: List[TrialRecord]  # telemetry, task order
    point_keys: List[str] = field(default_factory=list)
    #: root seed of the sweep — an int, a replayable ``SeedSequence(...)``
    #: expression string, or None when the spec was unseeded
    seed: Any = None
    #: name of the executor backend that ran the sweep
    backend: str = "serial"
    #: the backend's execution report (worker task counts, steals, queue
    #: depth, worker deaths) — see ``repro.sweep.backends.new_stats``
    backend_stats: Dict[str, Any] = field(default_factory=dict)
    #: merged :meth:`~repro.obs.ledger.LoadLedger.summary` accumulated
    #: from per-trial dumps in task order (``None``: no ledger was active)
    ledger: Any = None
    #: batched-execution report from the runner's fingerprint grouping
    #: (see :func:`repro.sweep.spec.group_batch_tasks`); always a dict,
    #: ``{"enabled": False, ...}`` when batching did not engage
    batch_stats: Dict[str, Any] = field(default_factory=dict)

    # -- columnar views -------------------------------------------------
    @property
    def wall_times(self) -> np.ndarray:
        """Per-trial wall times, task order (float64 seconds)."""
        return np.asarray([r.wall_time for r in self.records], dtype=np.float64)

    @property
    def workers(self) -> np.ndarray:
        """Executing pid per trial, task order."""
        return np.asarray([r.worker for r in self.records], dtype=np.int64)

    # -- aggregates -----------------------------------------------------
    @property
    def trials(self) -> int:
        return len(self.records)

    @property
    def busy_time(self) -> float:
        """Total seconds spent inside trial functions (across workers)."""
        return float(self.wall_times.sum()) if self.records else 0.0

    @property
    def utilization(self) -> float:
        """``busy_time / (jobs * elapsed)`` — 1.0 means every worker slot
        computed the whole time; low values flag dispatch overhead or a
        straggler-dominated grid."""
        denom = self.jobs * self.elapsed
        return self.busy_time / denom if denom > 0 else 0.0

    @property
    def n_workers(self) -> int:
        """Distinct processes that executed at least one trial."""
        return int(np.unique(self.workers).size) if self.records else 0

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.records)

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.records)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def skipped(self) -> int:
        """Trials that failed under ``on_error="skip"``/``"retry:N"``
        (their ``results`` entry is ``None``)."""
        return sum(1 for r in self.records if r.status != "ok")

    @property
    def retried(self) -> int:
        """Trials that needed more than one attempt (successful or not)."""
        return sum(1 for r in self.records if r.attempts > 1)

    @property
    def retries(self) -> int:
        """Total extra attempts across all trials."""
        return sum(r.attempts - 1 for r in self.records)

    def busy_by_worker(self) -> Dict[int, float]:
        """Seconds inside trial functions per executing pid — the
        per-worker utilization picture a straggler or an idle worker
        shows up in."""
        out: Dict[int, float] = {}
        for r in self.records:
            out[r.worker] = out.get(r.worker, 0.0) + r.wall_time
        return dict(sorted(out.items()))

    def results_by_point(self) -> Dict[str, List[Any]]:
        """Trial outputs grouped by grid point, trial order within each."""
        out: Dict[str, List[Any]] = {k: [] for k in self.point_keys}
        for rec, res in zip(self.records, self.results):
            out.setdefault(rec.point, []).append(res)
        return out

    # -- export ---------------------------------------------------------
    def telemetry(self) -> Dict[str, Any]:
        """The summary block (no per-trial outputs)."""
        wt = self.wall_times
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "jobs": self.jobs,
            "trials": self.trials,
            "elapsed_s": self.elapsed,
            "busy_s": self.busy_time,
            "utilization": self.utilization,
            "workers": self.n_workers,
            "trial_wall_s": {
                "mean": float(wt.mean()) if wt.size else 0.0,
                "max": float(wt.max()) if wt.size else 0.0,
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "errors": {
                "skipped": self.skipped,
                "retried": self.retried,
                "retries": self.retries,
            },
            "backend": {
                "name": self.backend,
                "pool_workers": self.backend_stats.get("workers", 1),
                "tasks_per_worker": self.backend_stats.get("tasks_per_worker", {}),
                "busy_s_per_worker": self.busy_by_worker(),
                "steals": self.backend_stats.get("steals", 0),
                "max_queue_depth": self.backend_stats.get("max_queue_depth", 0),
                "worker_deaths": self.backend_stats.get("worker_deaths", 0),
            },
            "ledger": self.ledger,
            "batch": dict(self.batch_stats) if self.batch_stats else {"enabled": False},
        }

    def to_dict(self, include_trials: bool = True) -> Dict[str, Any]:
        """JSON-ready record: summary telemetry plus (optionally) the
        per-trial columns and outputs."""
        out = self.telemetry()
        if include_trials:
            out["trial_columns"] = {
                "point": [r.point for r in self.records],
                "trial": [r.trial for r in self.records],
                "wall_s": [r.wall_time for r in self.records],
                "worker": [r.worker for r in self.records],
                "cache_hits": [r.cache_hits for r in self.records],
                "cache_misses": [r.cache_misses for r in self.records],
                "status": [r.status for r in self.records],
                "attempts": [r.attempts for r in self.records],
                "error": [r.error for r in self.records],
            }
            out["results"] = self.results
        return out

    def to_json(self, path: str, include_trials: bool = True) -> None:
        """Write :meth:`to_dict` to ``path``."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(include_trials=include_trials), fh, indent=2, default=float)
            fh.write("\n")


def build_records(
    indices: Sequence[int],
    points: Sequence[str],
    trials: Sequence[int],
    wall_times: Sequence[float],
    workers: Sequence[int],
    hits: Sequence[int],
    misses: Sequence[int],
) -> List[TrialRecord]:
    """Assemble :class:`TrialRecord` rows from parallel columns."""
    return [
        TrialRecord(
            index=i, point=pt, trial=t, wall_time=w, worker=pid, cache_hits=h, cache_misses=ms
        )
        for i, pt, t, w, pid, h, ms in zip(
            indices, points, trials, wall_times, workers, hits, misses
        )
    ]
