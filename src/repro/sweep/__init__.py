"""Parallel sweep engine: multiprocess trial fan-out with deterministic
seeding, schedule-result caching, and sweep telemetry.

The layer between a single priced superstep and a paper-scale experiment:
Monte Carlo trials and parameter grids expand into pure, independently
seeded :class:`TrialTask` units (:mod:`repro.sweep.spec`), execute on a
pluggable backend (:mod:`repro.sweep.backends`) — a work-stealing
persistent worker pool (``pool-steal``), a bit-identical in-process
fallback (``serial``), or optional multi-host MPI ranks (``mpi``) —
share expensive offline-optimal intermediates through a keyed memo cache
(:mod:`repro.sweep.cache`), and come back as a columnar
:class:`SweepResult` with wall-time / utilization / steal / cache
telemetry (:mod:`repro.sweep.telemetry`).  See ``docs/performance.md``.

Quickstart::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name="my_experiment",
        fn=my_trial,                    # module-level: fn(seed=..., **params)
        grid={"small": {"p": 64}, "large": {"p": 1024}},
        trials=100,
        seed=0,
    )
    result = run_sweep(spec, jobs=4)    # == run_sweep(spec, jobs=1), faster
    by_point = result.results_by_point()
    print(result.telemetry())
"""

from repro.sweep.backends import (
    BACKENDS,
    BackendUnavailableError,
    ExecutorBackend,
    available_backends,
    get_backend,
    mpi_available,
    resolve_backend,
)
from repro.sweep.cache import (
    CacheStats,
    cache_stats,
    cached_offline_report,
    cached_offline_schedule,
    clear_cache,
    persistent_store,
    set_persistent_store,
)
from repro.sweep.runner import (
    TrialExecutionError,
    parse_on_error,
    resolve_jobs,
    run_sweep,
)
from repro.sweep.spec import SweepSpec, TrialTask, grid_points
from repro.sweep.telemetry import TELEMETRY_SCHEMA_VERSION, SweepResult, TrialRecord

__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "ExecutorBackend",
    "TELEMETRY_SCHEMA_VERSION",
    "available_backends",
    "get_backend",
    "mpi_available",
    "resolve_backend",
    "SweepSpec",
    "TrialTask",
    "grid_points",
    "run_sweep",
    "resolve_jobs",
    "parse_on_error",
    "TrialExecutionError",
    "SweepResult",
    "TrialRecord",
    "cached_offline_schedule",
    "cached_offline_report",
    "cache_stats",
    "clear_cache",
    "persistent_store",
    "set_persistent_store",
    "CacheStats",
]
