"""Process-pool sweep execution with a bit-identical serial fallback.

:func:`run_sweep` fans a :class:`~repro.sweep.spec.SweepSpec`'s trials
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* **chunked dispatch** — tasks ship in contiguous chunks (default: ~4
  chunks per worker) so per-task IPC cost amortizes over many cheap
  trials;
* **ordered reassembly** — chunks are submitted and collected in task
  order, so ``results[i]`` always belongs to ``tasks()[i]`` regardless of
  which worker finished first: pool output is *bit-identical* to the
  serial path (trial functions are pure and carry their own derived seed);
* **worker-side exception capture** — a failing trial is caught in the
  worker and re-raised in the parent as :class:`TrialExecutionError`
  naming the trial's label, parameters, and exact seed derivation (a
  ``SeedSequence(entropy, spawn_key=...)`` expression that replays it in
  isolation), with the worker traceback attached — never an opaque
  ``BrokenProcessPool``;
* **serial fallback** — ``jobs=1`` (the CI default) runs in-process with
  no executor, same result object, same error surface.

``jobs=0`` / ``jobs=None`` auto-sizes to the machine's usable CPU count.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

from repro.sweep import cache
from repro.sweep.spec import SweepSpec, TrialTask
from repro.sweep.telemetry import SweepResult, TrialRecord
from repro.util.rng import describe_seed

__all__ = ["run_sweep", "resolve_jobs", "TrialExecutionError"]


class TrialExecutionError(RuntimeError):
    """A sweep trial raised; carries everything needed to replay it."""

    def __init__(
        self,
        label: str,
        params_desc: str,
        seed_desc: str,
        cause_repr: str,
        worker_traceback: str = "",
    ) -> None:
        self.label = label
        self.params_desc = params_desc
        self.seed_desc = seed_desc
        self.cause_repr = cause_repr
        self.worker_traceback = worker_traceback
        message = (
            f"sweep trial {label} failed: {cause_repr}\n"
            f"  params: {params_desc}\n"
            f"  seed:   {seed_desc}"
        )
        if worker_traceback:
            message += f"\n  worker traceback:\n{worker_traceback}"
        super().__init__(message)


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``0`` → usable CPU count; negative is an error."""
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _describe_params(params: dict) -> str:
    """Compact, log-safe parameter description (arrays and relations are
    named by type/size instead of dumped)."""
    parts = []
    for k, v in params.items():
        r = repr(v)
        if len(r) > 60:
            size = getattr(v, "n", None) or getattr(v, "size", None)
            r = f"<{type(v).__name__}{f' n={size}' if size is not None else ''}>"
        parts.append(f"{k}={r}")
    return ", ".join(parts)


def _execute(task: TrialTask) -> Tuple[Any, float, int, int, int]:
    """Run one trial, timing it and snapshotting the memo-cache counters."""
    before = cache.cache_stats()
    t0 = time.perf_counter()
    value = task.run()
    wall = time.perf_counter() - t0
    after = cache.cache_stats()
    return value, wall, os.getpid(), after.hits - before.hits, after.misses - before.misses


def _error_payload(task: TrialTask, exc: BaseException) -> Tuple[str, str, str, str, str]:
    return (
        task.label,
        _describe_params(task.params),
        describe_seed(task.seed),
        repr(exc),
        traceback.format_exc(),
    )


def _run_chunk(tasks: Sequence[TrialTask]) -> List[Tuple[str, Any]]:
    """Worker entry point: execute a chunk, capturing failures as data so
    they cross the process boundary with full context."""
    out: List[Tuple[str, Any]] = []
    for task in tasks:
        try:
            out.append(("ok", _execute(task)))
        except Exception as exc:  # noqa: BLE001 - re-raised in the parent
            out.append(("err", _error_payload(task, exc)))
            break  # remaining tasks in the chunk would be discarded anyway
    return out


def _raise_trial_error(payload: Tuple[str, str, str, str, str], cause=None):
    label, params_desc, seed_desc, cause_repr, tb = payload
    err = TrialExecutionError(label, params_desc, seed_desc, cause_repr, "" if cause else tb)
    raise err from cause


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> SweepResult:
    """Execute every trial of ``spec`` and return a :class:`SweepResult`.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans out over a
    process pool; ``jobs in (0, None)`` auto-sizes to the CPU count.  The
    ``results`` list is in task order in every mode, and — because trial
    functions are pure and seeded per-task — identical in every mode.
    """
    jobs = resolve_jobs(jobs)
    tasks = spec.tasks()
    t0 = time.perf_counter()
    results: List[Any] = []
    records: List[TrialRecord] = []

    def _append(task: TrialTask, payload) -> None:
        value, wall, pid, hits, misses = payload
        results.append(value)
        records.append(
            TrialRecord(
                index=task.index,
                point=task.point,
                trial=task.trial,
                wall_time=wall,
                worker=pid,
                cache_hits=hits,
                cache_misses=misses,
            )
        )

    if jobs == 1 or len(tasks) == 1:
        for task in tasks:
            try:
                _append(task, _execute(task))
            except Exception as exc:  # noqa: BLE001 - wrapped with context
                _raise_trial_error(_error_payload(task, exc), cause=exc)
    else:
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (jobs * 4)))
        chunks = [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                for task, (status, payload) in zip(chunk, future.result()):
                    if status == "err":
                        _raise_trial_error(payload)
                    _append(task, payload)

    return SweepResult(
        name=spec.name,
        jobs=jobs,
        elapsed=time.perf_counter() - t0,
        results=results,
        records=records,
        point_keys=spec.point_keys,
    )
