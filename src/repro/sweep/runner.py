"""Process-pool sweep execution with a bit-identical serial fallback.

:func:`run_sweep` fans a :class:`~repro.sweep.spec.SweepSpec`'s trials
across a :class:`concurrent.futures.ProcessPoolExecutor`:

* **chunked dispatch** — tasks ship in contiguous chunks (default: ~4
  chunks per worker) so per-task IPC cost amortizes over many cheap
  trials;
* **ordered reassembly** — chunks are submitted and collected in task
  order, so ``results[i]`` always belongs to ``tasks()[i]`` regardless of
  which worker finished first: pool output is *bit-identical* to the
  serial path (trial functions are pure and carry their own derived seed);
* **worker-side exception capture** — a failing trial is caught in the
  worker and re-raised in the parent as :class:`TrialExecutionError`
  naming the trial's label, parameters, and exact seed derivation (a
  ``SeedSequence(entropy, spawn_key=...)`` expression that replays it in
  isolation), with the worker traceback attached — never an opaque
  ``BrokenProcessPool``;
* **serial fallback** — ``jobs=1`` (the CI default) runs in-process with
  no executor, same result object, same error surface;
* **error policy** — ``on_error="raise"`` (the default, today's behavior)
  aborts the sweep on the first failing trial; ``"skip"`` records the
  failure in telemetry (``results[i] is None``, ``status="skipped"``) and
  keeps going; ``"retry:N"`` re-attempts a failed trial up to ``N`` more
  times before skipping it — one crashed trial no longer kills a
  thousand-trial sweep.

``jobs=0`` / ``jobs=None`` auto-sizes to the machine's usable CPU count.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import active_metrics
from repro.obs.tracer import active_tracer
from repro.sweep import cache
from repro.sweep.spec import SweepSpec, TrialTask
from repro.sweep.telemetry import SweepResult, TrialRecord
from repro.util.rng import describe_seed

__all__ = ["run_sweep", "resolve_jobs", "parse_on_error", "TrialExecutionError"]


class TrialExecutionError(RuntimeError):
    """A sweep trial raised; carries everything needed to replay it."""

    def __init__(
        self,
        label: str,
        params_desc: str,
        seed_desc: str,
        cause_repr: str,
        worker_traceback: str = "",
    ) -> None:
        self.label = label
        self.params_desc = params_desc
        self.seed_desc = seed_desc
        self.cause_repr = cause_repr
        self.worker_traceback = worker_traceback
        message = (
            f"sweep trial {label} failed: {cause_repr}\n"
            f"  params: {params_desc}\n"
            f"  seed:   {seed_desc}"
        )
        if worker_traceback:
            message += f"\n  worker traceback:\n{worker_traceback}"
        super().__init__(message)


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``0`` → usable CPU count; negative is an error."""
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parse_on_error(policy: str) -> Tuple[str, int]:
    """Validate an error policy; returns ``(mode, retries)``.

    ``"raise"`` → ``("raise", 0)``; ``"skip"`` → ``("skip", 0)``;
    ``"retry:N"`` (N ≥ 1) → ``("retry", N)`` — N *additional* attempts
    after the first failure, then the trial is skipped and recorded.
    """
    if policy == "raise":
        return "raise", 0
    if policy == "skip":
        return "skip", 0
    if isinstance(policy, str) and policy.startswith("retry:"):
        try:
            n = int(policy[len("retry:"):])
        except ValueError:
            n = 0
        if n >= 1:
            return "retry", n
    raise ValueError(
        f"on_error must be 'raise', 'skip' or 'retry:N' (N >= 1), got {policy!r}"
    )


def _describe_params(params: dict) -> str:
    """Compact, log-safe parameter description (arrays and relations are
    named by type/size instead of dumped)."""
    parts = []
    for k, v in params.items():
        r = repr(v)
        if len(r) > 60:
            size = getattr(v, "n", None) or getattr(v, "size", None)
            r = f"<{type(v).__name__}{f' n={size}' if size is not None else ''}>"
        parts.append(f"{k}={r}")
    return ", ".join(parts)


def _execute(task: TrialTask, collect_metrics: bool = False) -> Tuple[Any, float, int, int, int, Optional[dict]]:
    """Run one trial, timing it and snapshotting the memo-cache counters.

    With ``collect_metrics`` the trial runs against a *fresh scratch*
    :class:`~repro.obs.metrics.MetricsRegistry` whose dump becomes the
    sixth payload element; the sweep merges those dumps in task order in
    every mode (serial and pool), so ``jobs=N`` aggregates are
    **bit-identical** to ``jobs=1`` — same per-trial dumps, same merge
    order, no dependence on float-summation association across workers.
    """
    before = cache.cache_stats()
    if collect_metrics:
        from repro.obs.metrics import MetricsRegistry, metrics_scope

        scratch = MetricsRegistry()
        t0 = time.perf_counter()
        with metrics_scope(scratch):
            value = task.run()
        wall = time.perf_counter() - t0
        delta: Optional[dict] = scratch.to_dict()
    else:
        t0 = time.perf_counter()
        value = task.run()
        wall = time.perf_counter() - t0
        delta = None
    after = cache.cache_stats()
    return (
        value, wall, os.getpid(),
        after.hits - before.hits, after.misses - before.misses, delta,
    )


def _error_payload(
    task: TrialTask, exc: BaseException
) -> Tuple[str, str, str, str, str, int]:
    return (
        task.label,
        _describe_params(task.params),
        describe_seed(task.seed),
        repr(exc),
        traceback.format_exc(),
        os.getpid(),
    )


def _attempt(
    task: TrialTask, collect_metrics: bool, mode: str, retries: int
) -> Tuple[str, Any, int, Optional[BaseException]]:
    """Execute one trial under the error policy.

    Returns ``(status, payload, attempts, exc)``: ``("ok", exec_payload,
    n, None)`` or ``("err", error_payload, n, exc)``.  Under ``"retry"``
    the trial re-runs (same task, same derived seed — retries target
    *environmental* failures; a deterministic raise fails every attempt)
    up to ``retries`` more times before the error is returned.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return "ok", _execute(task, collect_metrics), attempts, None
        except Exception as exc:  # noqa: BLE001 - captured as data
            if mode == "retry" and attempts <= retries:
                continue
            return "err", _error_payload(task, exc), attempts, exc


def _run_chunk(
    tasks: Sequence[TrialTask],
    collect_metrics: bool = False,
    mode: str = "raise",
    retries: int = 0,
) -> List[Tuple[str, Any, int]]:
    """Worker entry point: execute a chunk, capturing failures as data so
    they cross the process boundary with full context."""
    # a fork-inherited tracer would record spans nobody can collect; the
    # parent synthesizes trial spans from telemetry instead.  (Metrics DO
    # cross the boundary — _execute ships each trial's scratch dump.)
    from repro.obs.tracer import uninstall_tracer

    uninstall_tracer()
    out: List[Tuple[str, Any, int]] = []
    for task in tasks:
        status, payload, attempts, _ = _attempt(task, collect_metrics, mode, retries)
        out.append((status, payload, attempts))
        if status == "err" and mode == "raise":
            break  # remaining tasks in the chunk would be discarded anyway
    return out


def _raise_trial_error(payload: Sequence[Any], cause=None):
    label, params_desc, seed_desc, cause_repr, tb = payload[:5]
    err = TrialExecutionError(label, params_desc, seed_desc, cause_repr, "" if cause else tb)
    raise err from cause


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    on_error: str = "raise",
) -> SweepResult:
    """Execute every trial of ``spec`` and return a :class:`SweepResult`.

    ``jobs=1`` runs serially in-process; ``jobs>1`` fans out over a
    process pool; ``jobs in (0, None)`` auto-sizes to the CPU count.  The
    ``results`` list is in task order in every mode, and — because trial
    functions are pure and seeded per-task — identical in every mode.

    ``on_error`` is ``"raise"`` (abort the sweep with
    :class:`TrialExecutionError` on the first failure — today's behavior),
    ``"skip"`` (record the failure, ``results[i] is None``, keep going), or
    ``"retry:N"`` (re-attempt up to ``N`` more times, then skip).  Skips
    and retries are visible in :meth:`SweepResult.telemetry`.  Under
    ``"skip"``/``"retry"`` even a hard worker-process death
    (``BrokenProcessPool``) only skips the affected chunks, never the
    sweep.
    """
    jobs = resolve_jobs(jobs)
    mode, retries = parse_on_error(on_error)
    tasks = spec.tasks()
    t0 = time.perf_counter()
    results: List[Any] = []
    records: List[TrialRecord] = []
    tracer = active_tracer()
    mreg = active_metrics()

    def _append(task: TrialTask, payload, attempts: int = 1) -> None:
        value, wall, pid, hits, misses, delta = payload
        results.append(value)
        records.append(
            TrialRecord(
                index=task.index,
                point=task.point,
                trial=task.trial,
                wall_time=wall,
                worker=pid,
                cache_hits=hits,
                cache_misses=misses,
                attempts=attempts,
            )
        )
        # per-trial dumps merge in task order in every mode, so gauges and
        # float sums resolve identically at any job count
        if delta is not None and mreg is not None:
            mreg.merge(delta)

    def _append_skipped(task: TrialTask, payload, attempts: int) -> None:
        cause_repr = payload[3]
        pid = payload[5] if len(payload) > 5 else -1
        results.append(None)
        records.append(
            TrialRecord(
                index=task.index,
                point=task.point,
                trial=task.trial,
                wall_time=0.0,
                worker=pid,
                cache_hits=0,
                cache_misses=0,
                attempts=attempts,
                status="skipped",
                error=cause_repr,
            )
        )

    sweep_span = (
        tracer.begin(
            "sweep", cat="sweep", track="sweep",
            sweep=spec.name, jobs=jobs, trials=len(tasks),
        )
        if tracer is not None
        else None
    )
    try:
        collect = mreg is not None
        if jobs == 1 or len(tasks) == 1:
            for task in tasks:
                if tracer is not None:
                    with tracer.span(
                        f"trial {task.label}", cat="trial", track="sweep",
                        point=task.point, trial=task.trial,
                    ):
                        status, payload, attempts, exc = _attempt(
                            task, collect, mode, retries
                        )
                else:
                    status, payload, attempts, exc = _attempt(
                        task, collect, mode, retries
                    )
                if status == "err":
                    if mode == "raise":
                        _raise_trial_error(payload, cause=exc)
                    _append_skipped(task, payload, attempts)
                else:
                    _append(task, payload, attempts)
        else:
            if chunksize is None:
                chunksize = max(1, -(-len(tasks) // (jobs * 4)))
            chunks = [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]
            with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                futures = [
                    pool.submit(_run_chunk, chunk, collect, mode, retries)
                    for chunk in chunks
                ]
                for chunk, future in zip(chunks, futures):
                    try:
                        chunk_out = future.result()
                    except BrokenProcessPool as exc:
                        if mode == "raise":
                            raise
                        # the worker died hard mid-chunk: every trial of the
                        # chunk is unaccounted for — skip them all and keep
                        # collecting the other futures (already-submitted
                        # chunks on the broken pool fail the same way)
                        for task in chunk:
                            _append_skipped(
                                task, _error_payload(task, exc), 1
                            )
                        continue
                    for task, (status, payload, attempts) in zip(chunk, chunk_out):
                        if status == "err":
                            if mode == "raise":
                                _raise_trial_error(payload)
                            _append_skipped(task, payload, attempts)
                        else:
                            _append(task, payload, attempts)
            if tracer is not None:
                _synthesize_pool_trial_spans(tracer, sweep_span, tasks, records)
    finally:
        if sweep_span is not None:
            tracer.end(sweep_span, completed=len(records))

    return SweepResult(
        name=spec.name,
        jobs=jobs,
        elapsed=time.perf_counter() - t0,
        results=results,
        records=records,
        point_keys=spec.point_keys,
        seed=_describe_root_seed(spec.seed),
    )


def _describe_root_seed(seed) -> Any:
    """The sweep's root seed as a JSON-friendly, replayable expression."""
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return describe_seed(seed)
    return repr(seed)


def _synthesize_pool_trial_spans(tracer, sweep_span, tasks, records) -> None:
    """Pool mode runs trials in worker processes, out of reach of the
    parent tracer — reconstruct approximate ``trial`` spans from the
    telemetry instead: each worker's trials are laid back-to-back from the
    sweep start on a ``worker <pid>`` track (per-trial wall durations are
    exact; only the gaps between them are elided)."""
    clocks: dict = {}
    base = sweep_span.wall_start if sweep_span is not None else 0.0
    for task, rec in zip(tasks, records):
        offset = clocks.get(rec.worker, 0.0)
        tracer.add(
            f"trial {task.label}", cat="trial", track=f"worker {rec.worker}",
            parent=sweep_span,
            wall_start=base + offset, wall_dur=rec.wall_time,
            args={"point": rec.point, "trial": rec.trial, "worker": rec.worker,
                  "synthesized": True},
        )
        clocks[rec.worker] = offset + rec.wall_time
