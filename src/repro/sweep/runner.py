"""Sweep execution over pluggable backends with a bit-identical contract.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into
pure, independently seeded tasks and hands them to an
:class:`~repro.sweep.backends.ExecutorBackend` — ``serial`` (in-process),
``pool-steal`` (persistent work-stealing worker pool, the ``jobs>1``
default), or ``mpi`` (optional multi-host ranks).  The runner keeps every
determinism guarantee regardless of backend:

* **ordered reassembly** — backends return outcomes in task order, so
  ``results[i]`` always belongs to ``tasks()[i]`` no matter which worker
  finished first: every backend is *bit-identical* to the serial path
  (trial functions are pure and carry their own derived seed);
* **task-order metrics merge** — per-trial metric scratch dumps merge in
  task order in every mode, so aggregated metrics are identical at any
  job count;
* **task-order span splice and ledger merge** — every backend (serial
  included) runs each trial against scratch observability instruments
  (:func:`~repro.sweep.backends.base.execute_task`) and ships the span
  and load-ledger dumps in the payload; the runner builds the ``trial``
  span and splices the worker's real spans under it, and merges ledger
  rows into the active :class:`~repro.obs.ledger.LoadLedger`, in task
  order — so traces and ledgers are bit-identical across backends and
  job counts;
* **worker-side exception capture** — a failing trial is caught where it
  ran and re-raised in the parent as :class:`TrialExecutionError` naming
  the trial's label, parameters, and exact seed derivation (a
  ``SeedSequence(entropy, spawn_key=...)`` expression that replays it in
  isolation), with the worker traceback attached — never an opaque
  pool-level error;
* **error policy** — ``on_error="raise"`` (the default) aborts the sweep
  on the first failing trial; ``"skip"`` records the failure in telemetry
  (``results[i] is None``, ``status="skipped"``) and keeps going;
  ``"retry:N"`` re-attempts a failed trial up to ``N`` more times before
  skipping it.  Failure accounting is **per task**: under the pool
  backend even a hard worker-process death skips exactly the one
  in-flight trial — the pool respawns a worker and the shared queue
  redistributes the rest.

``jobs=0`` / ``jobs=None`` auto-sizes to the machine's usable CPU count.
``chunksize`` is accepted for backward compatibility and ignored: the
work-stealing pool dispatches per task (chunking was a static guess at a
cost distribution the queue now balances dynamically).
"""

from __future__ import annotations

import os
import time
from typing import Any, List, Optional

import numpy as np

from repro.obs.ledger import LoadLedger, active_ledger
from repro.obs.metrics import active_metrics
from repro.obs.tracer import active_tracer, splice_spans
from repro.sweep.backends import resolve_backend
from repro.sweep.backends.base import attempt_task
from repro.sweep.spec import BatchTask, SweepSpec, TrialTask, group_batch_tasks
from repro.sweep.telemetry import SweepResult, TrialRecord
from repro.util.rng import describe_seed

__all__ = ["run_sweep", "resolve_jobs", "parse_on_error", "TrialExecutionError"]


class TrialExecutionError(RuntimeError):
    """A sweep trial raised; carries everything needed to replay it."""

    def __init__(
        self,
        label: str,
        params_desc: str,
        seed_desc: str,
        cause_repr: str,
        worker_traceback: str = "",
    ) -> None:
        self.label = label
        self.params_desc = params_desc
        self.seed_desc = seed_desc
        self.cause_repr = cause_repr
        self.worker_traceback = worker_traceback
        message = (
            f"sweep trial {label} failed: {cause_repr}\n"
            f"  params: {params_desc}\n"
            f"  seed:   {seed_desc}"
        )
        if worker_traceback:
            message += f"\n  worker traceback:\n{worker_traceback}"
        super().__init__(message)


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``0`` → usable CPU count; negative is an error."""
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parse_on_error(policy: str):
    """Validate an error policy; returns ``(mode, retries)``.

    ``"raise"`` → ``("raise", 0)``; ``"skip"`` → ``("skip", 0)``;
    ``"retry:N"`` (N ≥ 1) → ``("retry", N)`` — N *additional* attempts
    after the first failure, then the trial is skipped and recorded.
    """
    if policy == "raise":
        return "raise", 0
    if policy == "skip":
        return "skip", 0
    if isinstance(policy, str) and policy.startswith("retry:"):
        try:
            n = int(policy[len("retry:"):])
        except ValueError:
            n = 0
        if n >= 1:
            return "retry", n
    raise ValueError(
        f"on_error must be 'raise', 'skip' or 'retry:N' (N >= 1), got {policy!r}"
    )


def _raise_trial_error(payload, cause=None):
    label, params_desc, seed_desc, cause_repr, tb = payload[:5]
    err = TrialExecutionError(label, params_desc, seed_desc, cause_repr, tb)
    raise err from cause


def run_sweep(
    spec: SweepSpec,
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    on_error: str = "raise",
    backend: Optional[str] = None,
    batch: Optional[bool] = None,
) -> Optional[SweepResult]:
    """Execute every trial of ``spec`` and return a :class:`SweepResult`.

    ``backend`` selects the execution engine by name (``"serial"``,
    ``"pool-steal"``, ``"mpi"``); ``None``/``"auto"`` picks ``serial``
    for ``jobs=1`` and the work-stealing pool otherwise.  The ``results``
    list is in task order on every backend, and — because trial functions
    are pure and seeded per-task — identical on every backend.

    ``on_error`` is ``"raise"`` (abort the sweep with
    :class:`TrialExecutionError` on the first failure), ``"skip"``
    (record the failure, ``results[i] is None``, keep going), or
    ``"retry:N"`` (re-attempt up to ``N`` more times, then skip).  Skips
    and retries are visible in :meth:`SweepResult.telemetry`.  Failure
    accounting is per task: under ``"skip"``/``"retry"`` a hard worker
    death on the pool backend skips exactly the in-flight trial, never a
    chunk, never the sweep.

    Under the ``mpi`` backend, non-root ranks return ``None`` (they serve
    tasks; rank 0 holds the result) — callers running under ``mpirun``
    must treat ``None`` as "worker rank, exit cleanly".

    ``batch`` controls batched multi-trial execution: when the trial
    function opts in (``fn.batch_run``/``fn.batch_fingerprint``, see
    :class:`~repro.sweep.spec.BatchTask`), fingerprint-compatible trials
    are fused into single dispatch units that one worker executes in one
    vectorized pass — results stay bit-identical and in task order.
    ``None`` (default) engages batching automatically whenever the trial
    function supports it and no tracer/metrics/ledger is active (the
    observability instruments are per-trial, so batching would blur their
    attribution); ``False`` disables it.  A batch that fails is re-run
    member-by-member so ``on_error`` accounting stays per trial.
    """
    jobs = resolve_jobs(jobs)
    mode, retries = parse_on_error(on_error)
    tasks = spec.tasks()
    t0 = time.perf_counter()
    results: List[Any] = [None] * len(tasks)
    records: List[Optional[TrialRecord]] = [None] * len(tasks)
    tracer = active_tracer()
    mreg = active_metrics()
    ledger = active_ledger()
    dispatch: List[Any] = list(tasks)
    batch_stats = {
        "enabled": False,
        "groups": 0,
        "batched_trials": 0,
        "dispatched_units": len(tasks),
        "max_group": 0,
        "amortization": 1.0,
        "fallbacks": 0,
    }
    if batch is not False and tracer is None and mreg is None and ledger is None:
        dispatch, fused = group_batch_tasks(tasks)
        if fused:
            batch_stats.update(
                enabled=True,
                groups=len(fused),
                batched_trials=sum(len(b.members) for b in fused),
                dispatched_units=len(dispatch),
                max_group=max(len(b.members) for b in fused),
                amortization=len(tasks) / len(dispatch),
            )
    be = resolve_backend(backend, jobs, len(dispatch))
    # the sweep's own accumulator: its summary() becomes the telemetry
    # "ledger" block regardless of what the caller does with the active
    # ledger afterwards
    sweep_ledger = LoadLedger(per_proc=False) if ledger is not None else None
    worker_clocks: dict = {}  # pid -> back-to-back wall offset per worker

    def _append(task: TrialTask, payload, attempts: int = 1) -> None:
        value, wall, pid, hits, misses, delta, spans, ledger_dump = payload
        results[task.index] = value
        records[task.index] = (
            TrialRecord(
                index=task.index,
                point=task.point,
                trial=task.trial,
                wall_time=wall,
                worker=pid,
                cache_hits=hits,
                cache_misses=misses,
                attempts=attempts,
            )
        )
        # per-trial dumps merge in task order on every backend, so gauges
        # and float sums resolve identically at any job count
        if delta is not None and mreg is not None:
            mreg.merge(delta)
        if spans is not None and tracer is not None:
            _splice_trial(task, pid, wall, spans)
        if ledger_dump is not None:
            if ledger is not None:
                ledger.merge_dump(ledger_dump)
            if sweep_ledger is not None:
                sweep_ledger.merge_dump(ledger_dump)

    def _splice_trial(task: TrialTask, pid: int, wall: float, spans: dict) -> None:
        """Build the ``trial`` span and graft the worker's real spans under
        it.  Wall layout: each worker's trials lie back-to-back from the
        sweep start on a ``worker <pid>`` track (per-trial durations are
        exact; inter-trial gaps are elided).  Model layout: trials advance
        the parent model clock sequentially in task order — exactly the
        axis a single uninterrupted process would produce."""
        base = sweep_span.wall_start if sweep_span is not None else 0.0
        offset = worker_clocks.get(pid, 0.0)
        worker_clocks[pid] = offset + wall
        trial_span = tracer.add(
            f"trial {task.label}", cat="trial", track=f"worker {pid}",
            parent=sweep_span,
            wall_start=base + offset, wall_dur=wall,
            model_start=tracer.model_clock,
            args={"point": task.point, "trial": task.trial, "worker": pid},
        )
        wall_min = min(
            (s[4] for s in spans.get("spans", ()) if s[4] is not None),
            default=None,
        )
        splice_spans(
            tracer, spans, parent=trial_span,
            wall_offset=(trial_span.wall_start - wall_min)
            if wall_min is not None else 0.0,
        )
        model_total = float(spans.get("model_clock", 0.0))
        if model_total:
            trial_span.model_dur = model_total

    def _append_skipped(task: TrialTask, payload, attempts: int) -> None:
        cause_repr = payload[3]
        pid = payload[5] if len(payload) > 5 else -1
        results[task.index] = None
        records[task.index] = (
            TrialRecord(
                index=task.index,
                point=task.point,
                trial=task.trial,
                wall_time=0.0,
                worker=pid,
                cache_hits=0,
                cache_misses=0,
                attempts=attempts,
                status="skipped",
                error=cause_repr,
            )
        )

    sweep_span = (
        tracer.begin(
            "sweep", cat="sweep", track="sweep",
            sweep=spec.name, jobs=jobs, trials=len(tasks), backend=be.name,
        )
        if tracer is not None
        else None
    )
    def _expand_batch(unit: BatchTask, status, payload, attempts: int) -> None:
        """Re-expand one batch outcome onto its member tasks.

        A successful batch returns the per-member value list; its wall
        time is split evenly (one fused pass has no per-member clock) and
        its cache counters attach to the first member.  A failed batch is
        re-run member-by-member in-process, so ``on_error`` semantics —
        which trial raised, what gets skipped — stay exactly per trial.
        """
        members = unit.members
        if status == "ok":
            value, wall, pid, hits, misses, _, _, _ = payload
            if not isinstance(value, list) or len(value) != len(members):
                got = (
                    f"list of {len(value)}"
                    if isinstance(value, list)
                    else type(value).__name__
                )
                raise TypeError(
                    f"batch runner for {unit.label} returned {got}; expected "
                    f"a list of {len(members)} per-trial values"
                )
            share = wall / len(members)
            for j, (member, v) in enumerate(zip(members, value)):
                _append(
                    member,
                    (
                        v,
                        share,
                        pid,
                        hits if j == 0 else 0,
                        misses if j == 0 else 0,
                        None,
                        None,
                        None,
                    ),
                    attempts,
                )
            return
        batch_stats["fallbacks"] += 1
        for member in members:
            m_status, m_payload, m_attempts, _ = attempt_task(
                member, mreg is not None, mode, retries
            )
            if m_status == "err":
                if mode == "raise":
                    _raise_trial_error(m_payload)
                _append_skipped(member, m_payload, m_attempts)
            else:
                _append(member, m_payload, m_attempts)

    stats = {}
    try:
        ret = be.run(
            dispatch,
            jobs=jobs,
            collect_metrics=mreg is not None,
            mode=mode,
            retries=retries,
            tracer=tracer,
            collect_spans=tracer is not None,
            collect_ledger=ledger is not None,
        )
        if ret is None:
            # mpi worker rank: it executed tasks for rank 0 and has no
            # sweep result of its own
            return None
        outcomes, stats = ret
        for unit, outcome in zip(dispatch, outcomes):
            if outcome is None:
                continue  # raise-mode early stop: never reached
            status, payload, attempts = outcome
            if isinstance(unit, BatchTask):
                _expand_batch(unit, status, payload, attempts)
            elif status == "err":
                if mode == "raise":
                    _raise_trial_error(payload)
                _append_skipped(unit, payload, attempts)
            else:
                _append(unit, payload, attempts)
    finally:
        if sweep_span is not None:
            tracer.end(
                sweep_span,
                completed=sum(1 for r in records if r is not None),
                backend=be.name,
                steals=stats.get("steals", 0),
                max_queue_depth=stats.get("max_queue_depth", 0),
                worker_deaths=stats.get("worker_deaths", 0),
            )

    if any(r is None for r in records):
        # raise-mode early stop on a non-serial backend: unreached tasks
        # were never executed; keep only the executed prefix, task order
        keep = [i for i, r in enumerate(records) if r is not None]
        results = [results[i] for i in keep]
        records = [records[i] for i in keep]
    return SweepResult(
        name=spec.name,
        jobs=jobs,
        elapsed=time.perf_counter() - t0,
        results=results,
        records=records,
        point_keys=spec.point_keys,
        seed=_describe_root_seed(spec.seed),
        backend=be.name,
        backend_stats=stats,
        ledger=sweep_ledger.summary() if sweep_ledger is not None else None,
        batch_stats=batch_stats,
    )


def _describe_root_seed(seed) -> Any:
    """The sweep's root seed as a JSON-friendly, replayable expression."""
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return describe_seed(seed)
    return repr(seed)
