"""The ``pool-steal`` backend: a persistent worker pool self-scheduling
off a central task queue — work-stealing with a single shared deque.

Why this replaces the fixed-chunk :class:`ProcessPoolExecutor` runner:

* **per-task dispatch** — each worker is handed the *next* pending task
  the moment it finishes its last one, so a straggler trial delays only
  itself; under fixed chunks one slow trial serialized its whole chunk
  (and the chunk sizing itself guessed at a cost distribution it
  couldn't see);
* **per-task failure accounting** — a hard worker death (the
  ``BrokenProcessPool`` case) loses exactly the one dispatched in-flight
  task: the parent records that task as failed, spawns a replacement
  worker, and the central queue redistributes everything else;
* **warm start** — workers are long-lived and initialized once with the
  sweep's memo-cache snapshot (offline schedules + priced reports), so
  every trial's optimum lookup is a cache hit exactly as in the serial
  run: ``fork`` workers inherit the parent's warm cache for free, and
  ``spawn`` workers get the snapshot shipped and installed explicitly;
* **batched result drain** — the parent blocks for one result then
  drains everything else already queued, so result IPC amortizes like
  chunking did without chunking's scheduling downside.

Dispatch protocol: each worker owns a private task queue holding **at
most one** outstanding index; results come back on one shared queue.
The parent re-arms a worker the instant its ``done`` arrives.  Keeping
in-flight state parent-side is what makes death attribution *exact and
race-free*: a dying worker flushes nothing (``os._exit`` skips the
multiprocessing feeder thread), yet the parent always knows precisely
which index it held.  One-deep dispatch costs a queue round-trip per
task (~tens of µs) — noise against trial functions that run for
milliseconds, and the price of never losing more than one task.

Determinism: workers ship each trial's payload (value, wall time, cache
deltas, metrics scratch dump) back tagged with its task index; the
parent assembles ``outcomes`` in task order, so downstream results and
metrics merges are bit-identical to the serial backend no matter how
dispatch interleaved.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sweep.backends.base import (
    BackendStats,
    TaskOutcome,
    attempt_task,
    describe_params,
    new_stats,
)
from repro.sweep.spec import TrialTask
from repro.util.rng import describe_seed

__all__ = ["PoolStealBackend", "WorkerDied"]

#: parent poll interval while waiting for results — the cadence of
#: worker-liveness checks; results themselves arrive event-driven
_POLL_S = 0.05


class WorkerDied(RuntimeError):
    """A pool worker exited without reporting a result (hard death)."""


def _worker_main(
    widx: int,
    tasks: Sequence[TrialTask],
    myq,
    outq,
    collect_metrics: bool,
    mode: str,
    retries: int,
    cache_snapshot: Optional[dict],
    collect_spans: bool = False,
    collect_ledger: bool = False,
) -> None:
    """Long-lived worker: execute dispatched indices until the sentinel."""
    # a fork-inherited tracer/ledger would record rows nobody collects;
    # real capture happens per trial — execute_task installs scratch
    # instruments and ships their dumps back in the payload, exactly as
    # the serial backend does.
    from repro.obs.ledger import uninstall_ledger
    from repro.obs.tracer import uninstall_tracer
    from repro.sweep import cache

    uninstall_tracer()
    uninstall_ledger()
    if cache_snapshot is not None:
        # spawn-started worker: install the parent's warm memo cache and
        # reattach the persistent tier if the environment asks for one
        # (fork-started workers inherit both and ship no snapshot)
        cache.install_entries(cache_snapshot)
        from repro.store.persistent import maybe_enable_from_env

        maybe_enable_from_env()
    pid = os.getpid()
    while True:
        idx = myq.get()
        if idx is None:
            outq.put(("bye", widx, pid))
            return
        status, payload, attempts, _ = attempt_task(
            tasks[idx], collect_metrics, mode, retries,
            collect_spans=collect_spans, collect_ledger=collect_ledger,
        )
        outq.put(("done", widx, idx, status, payload, attempts, pid))


class PoolStealBackend:
    """Persistent self-scheduling worker pool with exact death accounting."""

    name = "pool-steal"

    def run(
        self,
        tasks: Sequence[TrialTask],
        *,
        jobs: int,
        collect_metrics: bool,
        mode: str,
        retries: int,
        tracer: Any = None,
        collect_spans: bool = False,
        collect_ledger: bool = False,
    ) -> Tuple[List[Optional[TaskOutcome]], BackendStats]:
        n = len(tasks)
        workers = max(1, min(jobs, n))
        stats = new_stats(self.name, workers=workers)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        snapshot = None
        if ctx.get_start_method() != "fork":  # pragma: no cover - non-Linux
            from repro.sweep import cache

            snapshot = cache.snapshot_entries()

        outq = ctx.Queue()
        pending = deque(range(n))
        procs: Dict[int, Any] = {}
        queues: Dict[int, Any] = {}
        in_flight: Dict[int, int] = {}  # widx -> dispatched task index
        retired: set = set()
        next_widx = 0

        outcomes: List[Optional[TaskOutcome]] = [None] * n
        done = 0
        counts: Dict[int, int] = {}  # pid -> executed tasks
        raise_exc: Optional[BaseException] = None
        stop = False  # raise-mode early abort: first err halts dispatch

        def dispatch(widx: int) -> None:
            """Arm a worker with the next pending index (or nothing)."""
            if pending and widx not in in_flight:
                idx = pending.popleft()
                in_flight[widx] = idx
                queues[widx].put(idx)
                stats["max_queue_depth"] = max(
                    stats["max_queue_depth"], len(pending)
                )

        def spawn() -> None:
            nonlocal next_widx
            widx = next_widx
            next_widx += 1
            queues[widx] = ctx.Queue()
            p = ctx.Process(
                target=_worker_main,
                args=(widx, tasks, queues[widx], outq, collect_metrics, mode,
                      retries, snapshot, collect_spans, collect_ledger),
                name=f"repro-sweep-worker-{widx}",
            )
            p.start()
            procs[widx] = p
            dispatch(widx)

        def record_death(widx: int, p) -> None:
            """Attribute a hard worker death to its one in-flight task."""
            nonlocal done, raise_exc
            retired.add(widx)
            stats["worker_deaths"] += 1
            idx = in_flight.pop(widx, None)
            exc = WorkerDied(
                f"sweep worker {p.name} (pid {p.pid}) died with exit code "
                f"{p.exitcode} while executing a task"
            )
            if idx is not None and outcomes[idx] is None:
                task = tasks[idx]
                payload = (
                    task.label,
                    describe_params(task.params),
                    describe_seed(task.seed),
                    repr(exc),
                    "",
                    p.pid or -1,
                )
                outcomes[idx] = ("err", payload, 1)
                done += 1
            if mode == "raise" and raise_exc is None:
                raise_exc = exc

        def handle(msg) -> None:
            nonlocal done, stop
            kind = msg[0]
            if kind == "done":
                _, widx, idx, status, payload, attempts, pid = msg
                in_flight.pop(widx, None)
                counts[pid] = counts.get(pid, 0) + 1
                if outcomes[idx] is None:
                    outcomes[idx] = (status, payload, attempts)
                    done += 1
                if status == "err" and mode == "raise":
                    stop = True  # the runner raises; stop handing out work
                    return
                # re-arm immediately: this is the work-stealing step — the
                # fastest worker keeps pulling whatever is left
                dispatch(widx)
            elif kind == "bye":
                _, widx, _pid = msg
                retired.add(widx)

        try:
            for _ in range(workers):
                spawn()
            while done < n and raise_exc is None and not stop:
                try:
                    msg = outq.get(timeout=_POLL_S)
                except queue_mod.Empty:
                    msg = None
                if msg is not None:
                    handle(msg)
                    # batched drain: everything already queued, in one go
                    while True:
                        try:
                            handle(outq.get_nowait())
                        except queue_mod.Empty:
                            break
                    continue
                # no result this tick — reap any workers that died hard
                dead = [
                    (w, p) for w, p in procs.items()
                    if w not in retired and not p.is_alive()
                ]
                for w, p in dead:
                    record_death(w, p)
                # replace lost capacity; the central queue redistributes
                for _ in dead:
                    if pending and raise_exc is None:
                        spawn()
        finally:
            # retire the pool: sentinels for the cooperative path, then a
            # hard stop for anything still wedged
            for w, p in procs.items():
                if p.is_alive():
                    try:
                        queues[w].put(None)
                    except (OSError, ValueError):  # pragma: no cover
                        pass
            for p in procs.values():
                if p.is_alive():
                    p.join(timeout=1.0)
            for p in procs.values():
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            outq.close()
            for q in queues.values():
                q.close()

        if raise_exc is not None:
            # the in-flight task's identity is already recorded as an err
            # outcome — the runner raises TrialExecutionError at it.  A
            # death with no attributable task raises directly.
            if not any(o is not None and o[0] == "err" for o in outcomes):
                raise raise_exc
        stats["tasks_per_worker"] = {int(pid): c for pid, c in sorted(counts.items())}
        # a "steal" is a task a worker picked up beyond the static even
        # split across the pool — exactly the work a fixed-chunk schedule
        # would have left queued behind a straggler (or an idle sibling)
        if counts:
            fair = -(-n // workers)
            stats["steals"] = int(sum(max(0, c - fair) for c in counts.values()))
        return outcomes, stats
