"""The in-process backend: the bit-identity reference every other
backend is gated against.

Runs tasks one after another in the calling process, wrapping each in a
live tracer span when tracing is active (pool backends can't — their
trials execute out of the parent tracer's reach, so the runner
synthesizes spans from telemetry instead).  Under ``mode="raise"`` it
stops at the first failing trial, leaving trailing outcomes ``None``.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from repro.sweep.backends.base import (
    BackendStats,
    TaskOutcome,
    attempt_task,
    new_stats,
)
from repro.sweep.spec import TrialTask

__all__ = ["SerialBackend"]


class SerialBackend:
    """Execute every task in the current process, in task order."""

    name = "serial"

    def run(
        self,
        tasks: Sequence[TrialTask],
        *,
        jobs: int,
        collect_metrics: bool,
        mode: str,
        retries: int,
        tracer: Any = None,
    ) -> Tuple[List[Optional[TaskOutcome]], BackendStats]:
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        stats = new_stats(self.name, workers=1)
        executed = 0
        for i, task in enumerate(tasks):
            if tracer is not None:
                with tracer.span(
                    f"trial {task.label}", cat="trial", track="sweep",
                    point=task.point, trial=task.trial,
                ):
                    status, payload, attempts, _ = attempt_task(
                        task, collect_metrics, mode, retries
                    )
            else:
                status, payload, attempts, _ = attempt_task(
                    task, collect_metrics, mode, retries
                )
            outcomes[i] = (status, payload, attempts)
            executed += 1
            if status == "err" and mode == "raise":
                break  # the runner raises at this outcome; the rest stay None
        stats["tasks_per_worker"] = {os.getpid(): executed}
        return outcomes, stats
