"""The in-process backend: the bit-identity reference every other
backend is gated against.

Runs tasks one after another in the calling process.  Trial spans and
load-ledger rows are captured by the shared per-trial core
(:func:`~repro.sweep.backends.base.execute_task` installs scratch
instruments and ships their dumps in the payload), exactly as on the
pool and MPI backends — the runner splices them in task order, so the
serial trace/ledger is the same artifact the parallel backends produce,
by construction.  Under ``mode="raise"`` it stops at the first failing
trial, leaving trailing outcomes ``None``.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from repro.sweep.backends.base import (
    BackendStats,
    TaskOutcome,
    attempt_task,
    new_stats,
)
from repro.sweep.spec import TrialTask

__all__ = ["SerialBackend"]


class SerialBackend:
    """Execute every task in the current process, in task order."""

    name = "serial"

    def run(
        self,
        tasks: Sequence[TrialTask],
        *,
        jobs: int,
        collect_metrics: bool,
        mode: str,
        retries: int,
        tracer: Any = None,
        collect_spans: bool = False,
        collect_ledger: bool = False,
    ) -> Tuple[List[Optional[TaskOutcome]], BackendStats]:
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        stats = new_stats(self.name, workers=1)
        executed = 0
        for i, task in enumerate(tasks):
            status, payload, attempts, _ = attempt_task(
                task, collect_metrics, mode, retries,
                collect_spans=collect_spans, collect_ledger=collect_ledger,
            )
            outcomes[i] = (status, payload, attempts)
            executed += 1
            if status == "err" and mode == "raise":
                break  # the runner raises at this outcome; the rest stay None
        stats["tasks_per_worker"] = {os.getpid(): executed}
        return outcomes, stats
