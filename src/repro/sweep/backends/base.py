"""Executor-backend contract and the shared per-trial execution core.

A backend is the piece of :func:`repro.sweep.run_sweep` that decides
*where* trials execute — in-process, on a work-stealing process pool, or
across MPI ranks — while the runner keeps everything that makes results
deterministic: task expansion, per-trial seed derivation, task-order
reassembly, and task-order metrics merging.  The contract:

* ``run(tasks, ...)`` returns ``(outcomes, stats)`` where ``outcomes[i]``
  is the :class:`TaskOutcome` of ``tasks[i]`` — **task order, always**,
  no matter which worker finished first;
* an outcome is ``("ok", exec_payload, attempts)`` or
  ``("err", error_payload, attempts)``; under ``mode="raise"`` a backend
  may stop early and leave trailing ``None`` entries (the runner raises
  at the first ``"err"`` before ever reading them);
* trial functions are pure and carry their own derived seed, so a
  backend can execute them anywhere, in any order, and the assembled
  result is bit-identical to the serial run;
* ``stats`` is the backend's execution report (worker task counts,
  steals, queue depths, worker deaths) — it feeds the telemetry
  ``backend`` block and tracer span args, **never** the active
  :class:`~repro.obs.metrics.MetricsRegistry`, whose dumps must stay
  bit-identical across backends and job counts.

The per-trial execution core (:func:`execute_task`, :func:`attempt_task`,
:func:`error_payload_for`) lives here so every backend — and every
worker process — runs trials through exactly the same code path:
metrics/tracer/ledger scratch capture, memo-cache counter deltas, and the
retry-until-skip error policy.  Observability capture is uniform across
backends: a trial always runs against *scratch* instruments (masking
whatever is installed in the executing process) and ships the dumps back
in its payload; the runner splices spans and merges ledger/metric dumps
in task order, so the assembled trace and ledgers are identical whether
the trial ran in-process, on the pool, or on an MPI rank.
"""

from __future__ import annotations

import os
import time
import traceback
from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.sweep.spec import TrialTask
from repro.util.rng import describe_seed

__all__ = [
    "TaskOutcome",
    "BackendStats",
    "ExecutorBackend",
    "BackendUnavailableError",
    "execute_task",
    "attempt_task",
    "error_payload_for",
    "describe_params",
    "new_stats",
]

#: ("ok", exec_payload, attempts) | ("err", error_payload, attempts)
TaskOutcome = Tuple[str, Any, int]

#: the backend execution report consumed by SweepResult.telemetry()
BackendStats = Dict[str, Any]


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run in this environment (e.g. the
    ``mpi`` backend without ``mpi4py`` installed); the message says how
    to enable it."""


@runtime_checkable
class ExecutorBackend(Protocol):
    """What :func:`repro.sweep.run_sweep` needs from an execution engine."""

    #: registry key, echoed in telemetry ("serial", "pool-steal", "mpi")
    name: str

    def run(
        self,
        tasks: Sequence[TrialTask],
        *,
        jobs: int,
        collect_metrics: bool,
        mode: str,
        retries: int,
        tracer: Any = None,
        collect_spans: bool = False,
        collect_ledger: bool = False,
    ) -> Optional[Tuple[List[Optional[TaskOutcome]], BackendStats]]:
        """Execute every task and return ``(outcomes, stats)`` in task
        order.  A distributed backend may return ``None`` on non-root
        ranks (the rank served tasks and has no result to report)."""
        ...


def new_stats(name: str, workers: int) -> BackendStats:
    """A fresh stats block with the keys every backend reports."""
    return {
        "name": name,
        "workers": workers,
        "tasks_per_worker": {},  # pid -> executed task count
        "steals": 0,
        "max_queue_depth": 0,
        "worker_deaths": 0,
    }


def describe_params(params: dict) -> str:
    """Compact, log-safe parameter description (arrays and relations are
    named by type/size instead of dumped)."""
    parts = []
    for k, v in params.items():
        r = repr(v)
        if len(r) > 60:
            size = getattr(v, "n", None) or getattr(v, "size", None)
            r = f"<{type(v).__name__}{f' n={size}' if size is not None else ''}>"
        parts.append(f"{k}={r}")
    return ", ".join(parts)


def execute_task(
    task: TrialTask,
    collect_metrics: bool = False,
    collect_spans: bool = False,
    collect_ledger: bool = False,
) -> Tuple[Any, float, int, int, int, Optional[dict], Optional[dict], Optional[dict]]:
    """Run one trial, timing it and snapshotting the memo-cache counters.

    Each ``collect_*`` flag runs the trial against a *fresh scratch*
    instrument — a :class:`~repro.obs.metrics.MetricsRegistry`, a
    :class:`~repro.obs.tracer.Tracer`, a
    :class:`~repro.obs.ledger.LoadLedger` — installed for the trial's
    duration (masking whatever the executing process had active), whose
    dump ships back as payload elements six through eight.  The runner
    merges those dumps in task order on every backend, so ``jobs=N``
    aggregates, span trees, and ledgers are **bit-identical** to
    ``jobs=1`` — same per-trial dumps, same merge order, no dependence
    on float-summation association or worker scheduling.
    """
    from repro.sweep import cache

    before = cache.cache_stats()
    delta: Optional[dict] = None
    spans: Optional[dict] = None
    ledger_dump: Optional[dict] = None
    with ExitStack() as stack:
        if collect_metrics:
            from repro.obs.metrics import MetricsRegistry, metrics_scope

            scratch_m = stack.enter_context(metrics_scope(MetricsRegistry()))
        if collect_spans:
            from repro.obs.tracer import Tracer, export_spans, tracing

            scratch_t = stack.enter_context(tracing(Tracer()))
        if collect_ledger:
            from repro.obs.ledger import LoadLedger, ledger_scope

            scratch_l = stack.enter_context(ledger_scope(LoadLedger(per_proc=False)))
        t0 = time.perf_counter()
        value = task.run()
        wall = time.perf_counter() - t0
        if collect_metrics:
            delta = scratch_m.to_dict()
        if collect_spans:
            spans = export_spans(scratch_t)
        if collect_ledger:
            ledger_dump = scratch_l.to_dict(per_proc=False)
    after = cache.cache_stats()
    return (
        value, wall, os.getpid(),
        after.hits - before.hits, after.misses - before.misses,
        delta, spans, ledger_dump,
    )


def error_payload_for(
    task: TrialTask, exc: BaseException, with_traceback: bool = True
) -> Tuple[str, str, str, str, str, int]:
    """Everything the parent needs to raise or record a failed trial."""
    return (
        task.label,
        describe_params(task.params),
        describe_seed(task.seed),
        repr(exc),
        traceback.format_exc() if with_traceback else "",
        os.getpid(),
    )


def attempt_task(
    task: TrialTask,
    collect_metrics: bool,
    mode: str,
    retries: int,
    collect_spans: bool = False,
    collect_ledger: bool = False,
) -> Tuple[str, Any, int, Optional[BaseException]]:
    """Execute one trial under the error policy.

    Returns ``(status, payload, attempts, exc)``: ``("ok", exec_payload,
    n, None)`` or ``("err", error_payload, n, exc)``.  Under ``"retry"``
    the trial re-runs (same task, same derived seed — retries target
    *environmental* failures; a deterministic raise fails every attempt)
    up to ``retries`` more times before the error is returned.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            payload = execute_task(
                task, collect_metrics, collect_spans, collect_ledger
            )
            return "ok", payload, attempts, None
        except Exception as exc:  # noqa: BLE001 - captured as data
            if mode == "retry" and attempts <= retries:
                continue
            return "err", error_payload_for(task, exc), attempts, exc
