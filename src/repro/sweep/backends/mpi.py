"""The optional ``mpi`` backend: sweep trials fanned across MPI ranks via
:class:`mpi4py.futures.MPICommExecutor`.

This is the multi-host path — ``pool-steal`` scales to one node's cores;
``mpi`` scales to however many ranks ``mpirun``/``srun`` launched.  The
usage contract mirrors ``mpi4py.futures``:

* run under MPI: ``mpirun -n <ranks> python -m repro experiment ...
  --backend mpi`` (or any script calling ``run_sweep(..., backend="mpi")``);
* rank 0 is the coordinator: it submits every task and is the only rank
  that gets a :class:`~repro.sweep.telemetry.SweepResult`;
* every other rank serves tasks inside ``MPICommExecutor`` and receives
  ``None`` from :func:`~repro.sweep.run_sweep` — callers must treat a
  ``None`` sweep result as "worker rank, nothing to report" and exit
  cleanly (the bundled experiments and the CLI already do);
* ``mpi4py`` is an optional extra (``pip install repro[mpi]``); without
  it the backend raises :class:`BackendUnavailableError` with that hint.

Initialization follows the mpi4py embedding idiom: ``mpi4py.rc(
initialize=False, finalize=False)`` *before* importing ``MPI``, then an
explicit ``Init``/``Finalize`` guard — so importing this module (or
repro itself) never hijacks MPI state from a host application.

Determinism: identical to every other backend.  Tasks are submitted and
collected in task order, each carries its own derived seed, and the
worker-side execution path is the shared :func:`attempt_task` core — so
an ``mpi`` sweep is bit-identical to the serial run.

With one rank (``mpirun -n 1`` or plain ``python``) ``MPICommExecutor``
degrades to running tasks on rank 0's own spawned helper, so the backend
still works — it just cannot be faster than serial.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sweep.backends.base import (
    BackendStats,
    BackendUnavailableError,
    TaskOutcome,
    attempt_task,
    new_stats,
)
from repro.sweep.spec import TrialTask

__all__ = ["MpiBackend", "mpi_available"]

_INSTALL_HINT = (
    "the 'mpi' sweep backend needs mpi4py (pip install 'repro[mpi]') and an "
    "MPI runtime; launch with e.g. 'mpirun -n 4 python -m repro ... --backend mpi'"
)


def mpi_available() -> bool:
    """True when ``mpi4py`` is importable (the extra is installed)."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


def _load_mpi():
    """Import mpi4py with the explicit-lifecycle idiom, initializing MPI
    only if nothing else has."""
    try:
        import mpi4py

        mpi4py.rc(initialize=False, finalize=False)
        from mpi4py import MPI
        from mpi4py.futures import MPICommExecutor
    except ImportError as exc:
        raise BackendUnavailableError(_INSTALL_HINT) from exc
    if not MPI.Is_initialized():  # pragma: no cover - needs an MPI runtime
        MPI.Init()
    return MPI, MPICommExecutor


def _mpi_task(
    task: TrialTask,
    collect_metrics: bool,
    mode: str,
    retries: int,
    collect_spans: bool = False,
    collect_ledger: bool = False,
) -> TaskOutcome:
    """Worker-rank entry point: same execution core as every backend."""
    from repro.obs.ledger import uninstall_ledger
    from repro.obs.tracer import uninstall_tracer

    uninstall_tracer()
    uninstall_ledger()
    status, payload, attempts, _ = attempt_task(
        task, collect_metrics, mode, retries,
        collect_spans=collect_spans, collect_ledger=collect_ledger,
    )
    return status, payload, attempts


class MpiBackend:
    """Fan tasks across MPI ranks; rank 0 coordinates and reports."""

    name = "mpi"

    def run(
        self,
        tasks: Sequence[TrialTask],
        *,
        jobs: int,
        collect_metrics: bool,
        mode: str,
        retries: int,
        tracer: Any = None,
        collect_spans: bool = False,
        collect_ledger: bool = False,
    ) -> Optional[Tuple[List[Optional[TaskOutcome]], BackendStats]]:
        MPI, MPICommExecutor = _load_mpi()
        comm = MPI.COMM_WORLD
        n = len(tasks)
        with MPICommExecutor(comm, root=0) as executor:
            if executor is None:
                # worker rank: it served tasks inside the context manager
                # and has no result of its own to report
                return None
            # rank 0 coordinates; the other ranks execute (with a single
            # rank, MPICommExecutor falls back to a local helper)
            stats = new_stats(self.name, workers=max(1, comm.Get_size() - 1))
            outcomes: List[Optional[TaskOutcome]] = [None] * n
            counts: Dict[int, int] = {}
            futures = [
                executor.submit(
                    _mpi_task, task, collect_metrics, mode, retries,
                    collect_spans, collect_ledger,
                )
                for task in tasks
            ]
            for i, fut in enumerate(futures):
                status, payload, attempts = fut.result()
                pid = payload[2] if status == "ok" else payload[5]
                counts[pid] = counts.get(pid, 0) + 1
                outcomes[i] = (status, payload, attempts)
                if status == "err" and mode == "raise":
                    for rest in futures[i + 1:]:
                        rest.cancel()
                    break  # the runner raises here; trailing outcomes stay None
            stats["tasks_per_worker"] = {
                int(pid): c for pid, c in sorted(counts.items())
            }
            if counts:
                fair = -(-n // stats["workers"])
                stats["steals"] = int(
                    sum(max(0, c - fair) for c in counts.values())
                )
            return outcomes, stats
        return None  # pragma: no cover - unreachable
