"""Pluggable sweep execution backends.

:func:`repro.sweep.run_sweep` owns determinism (task expansion, per-task
seed derivation, task-order reassembly and metrics merging); a backend
owns *placement* — where the trial functions actually execute:

========== =============================================================
``serial``      in-process, in order; the bit-identity reference
``pool-steal``  persistent worker pool, shared task queue
                (self-scheduling / work-stealing), per-task dispatch,
                warm-started memo cache, exact per-task death accounting
``mpi``         ``mpi4py.futures.MPICommExecutor`` across MPI ranks
                (optional ``repro[mpi]`` extra; multi-host)
========== =============================================================

``resolve_backend(None, ...)`` (or ``"auto"``) picks ``serial`` for
``jobs=1`` / single-task sweeps and ``pool-steal`` otherwise — so
existing ``run_sweep(spec, jobs=N)`` callers get work-stealing without
code changes, and the serial path stays byte-for-byte what it was.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.sweep.backends.base import (
    BackendStats,
    BackendUnavailableError,
    ExecutorBackend,
    TaskOutcome,
)
from repro.sweep.backends.mpi import MpiBackend, mpi_available
from repro.sweep.backends.pool_steal import PoolStealBackend, WorkerDied
from repro.sweep.backends.serial import SerialBackend

__all__ = [
    "BACKENDS",
    "BackendStats",
    "BackendUnavailableError",
    "ExecutorBackend",
    "MpiBackend",
    "PoolStealBackend",
    "SerialBackend",
    "TaskOutcome",
    "WorkerDied",
    "available_backends",
    "get_backend",
    "mpi_available",
    "resolve_backend",
]

#: registry of constructible backends, keyed by CLI/telemetry name
BACKENDS: Dict[str, Type] = {
    "serial": SerialBackend,
    "pool-steal": PoolStealBackend,
    "mpi": MpiBackend,
}


def available_backends() -> List[str]:
    """Backend names runnable in this environment (``mpi`` only when the
    ``mpi4py`` extra is installed)."""
    names = ["serial", "pool-steal"]
    if mpi_available():
        names.append("mpi")
    return names


def get_backend(name: str) -> ExecutorBackend:
    """Instantiate a registered backend by name.

    Unknown names raise :class:`ValueError` listing the registry; the
    ``mpi`` backend raises :class:`BackendUnavailableError` (with the
    install hint) when ``mpi4py`` is missing.
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown sweep backend {name!r}; registered: "
            f"{', '.join(sorted(BACKENDS))}"
        ) from None
    if name == "mpi" and not mpi_available():
        raise BackendUnavailableError(
            "the 'mpi' sweep backend needs mpi4py (pip install 'repro[mpi]')"
        )
    return cls()


def resolve_backend(
    name: Optional[str], jobs: int, n_tasks: int
) -> ExecutorBackend:
    """Pick the backend for a sweep: an explicit ``name`` is always
    honored; ``None``/``"auto"`` selects ``serial`` when there is nothing
    to parallelize (``jobs == 1`` or a single task) and ``pool-steal``
    otherwise."""
    if name is None or name == "auto":
        if jobs == 1 or n_tasks <= 1:
            return SerialBackend()
        return PoolStealBackend()
    return get_backend(name)
