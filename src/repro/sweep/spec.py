"""Sweep specifications: what to run, over which grid, how many trials.

A :class:`SweepSpec` names a pure trial function and a parameter grid; it
expands into a flat, ordered list of :class:`TrialTask` objects, one per
``(grid point, trial)`` pair.  Each task carries its own
:class:`~numpy.random.SeedSequence`, derived from the sweep's root seed via
:func:`repro.util.rng.derive_seed_sequence` on the stable path
``(sweep name, point key, trial index)`` — so any single trial can be
re-run in isolation, in any process, and two sweeps sharing a root seed
never collide on a trial stream (the failure mode of ``seed + t``
arithmetic).

The trial function contract: a module-level (hence picklable) callable
invoked as ``fn(seed=<SeedSequence>, **point_params, **common_params)``
returning a JSON-serializable value.  Purity — same params + seed in, same
value out, no shared mutable state — is what makes the pool runner's output
bit-identical to the serial path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.util.rng import SeedLike, derive_seed_sequence

__all__ = ["TrialTask", "BatchTask", "SweepSpec", "grid_points", "group_batch_tasks"]


@dataclass(frozen=True)
class TrialTask:
    """One unit of sweep work: a grid point's parameters at one trial index."""

    fn: Callable[..., Any]
    params: Dict[str, Any]
    seed: np.random.SeedSequence
    index: int  # position in the sweep's flat task order
    point: str  # grid-point key
    trial: int  # trial index within the point
    label: str  # "name[point:trial]" — shown in telemetry and errors

    def run(self) -> Any:
        """Execute the trial in the current process."""
        return self.fn(seed=self.seed, **self.params)


@dataclass(frozen=True)
class BatchTask:
    """A fused dispatch unit: fingerprint-compatible trials executed by the
    trial function's ``batch_run`` in one pass.

    Trial functions opt in by carrying two attributes (set at module level,
    so both survive pickling to pool workers):

    * ``fn.batch_run(params_list, seeds) -> list`` — execute the trials in
      one fused pass; element ``j`` must be bit-identical to
      ``fn(seed=seeds[j], **params_list[j])``;
    * ``fn.batch_fingerprint(params) -> hashable | None`` — the structure
      key: trials whose fingerprints are equal share enough structure to
      fuse (``None``: this point must run alone).

    The class is duck-compatible with :class:`TrialTask` everywhere the
    backends look (``run``/``label``/``params``/``seed``), so ``serial``
    and ``pool-steal`` ship batches through ``attempt_task`` unchanged;
    the runner re-expands the returned value list onto the member tasks.
    """

    fn: Callable[..., Any]
    members: Tuple[TrialTask, ...]
    fingerprint: Any

    @property
    def params(self) -> Dict[str, Any]:
        return self.members[0].params

    @property
    def seed(self) -> np.random.SeedSequence:
        return self.members[0].seed

    @property
    def index(self) -> int:
        return self.members[0].index

    @property
    def point(self) -> str:
        return self.members[0].point

    @property
    def trial(self) -> int:
        return self.members[0].trial

    @property
    def label(self) -> str:
        return f"{self.members[0].label}(+{len(self.members) - 1} batched)"

    def run(self) -> List[Any]:
        """Execute the whole batch in the current process."""
        return self.fn.batch_run(
            [t.params for t in self.members], [t.seed for t in self.members]
        )


def group_batch_tasks(
    tasks: Sequence[TrialTask], min_group: int = 2
) -> Tuple[List[Any], List[BatchTask]]:
    """Fuse fingerprint-compatible tasks into :class:`BatchTask` units.

    Tasks whose trial function advertises ``batch_run``/``batch_fingerprint``
    and share a fingerprint are grouped; each group of at least
    ``min_group`` becomes one :class:`BatchTask` placed at its first
    member's position in the dispatch list (later members are removed), so
    dispatch order still follows task order.  Everything else passes
    through untouched.  Returns ``(dispatch, batches)``.
    """
    groups: Dict[Any, List[TrialTask]] = {}
    for t in tasks:
        runner = getattr(t.fn, "batch_run", None)
        fingerprint_fn = getattr(t.fn, "batch_fingerprint", None)
        if runner is None or fingerprint_fn is None:
            continue
        fp = fingerprint_fn(t.params)
        if fp is None:
            continue
        groups.setdefault((id(t.fn), fp), []).append(t)
    fused: Dict[int, BatchTask] = {}  # first member's index -> batch
    absorbed: set = set()
    for (_, fp), members in groups.items():
        if len(members) < min_group:
            continue
        fused[members[0].index] = BatchTask(
            fn=members[0].fn, members=tuple(members), fingerprint=fp
        )
        absorbed.update(m.index for m in members[1:])
    if not fused:
        return list(tasks), []
    dispatch: List[Any] = []
    batches: List[BatchTask] = []
    for t in tasks:
        if t.index in absorbed:
            continue
        bt = fused.get(t.index)
        if bt is not None:
            dispatch.append(bt)
            batches.append(bt)
        else:
            dispatch.append(t)
    return dispatch, batches


def _point_key(point: Mapping[str, Any]) -> str:
    """Stable key for an unlabeled grid point: sorted scalar items."""
    parts = []
    for k in sorted(point):
        v = point[k]
        parts.append(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v!r}")
    return ",".join(parts) if parts else "point"


@dataclass
class SweepSpec:
    """A named sweep: ``fn`` fanned over ``grid`` × ``trials``.

    ``grid`` is either a mapping ``{point_key: params}`` (the key names the
    point in seed derivation, telemetry, and errors — use this when params
    contain arrays or relations whose repr is not a usable key) or a plain
    sequence of param dicts (keys are derived from the sorted scalar
    items).  ``common`` params are merged under every point (point wins on
    conflict).  ``trials`` replicates every point with independent
    per-trial seed streams.
    """

    name: str
    fn: Callable[..., Any]
    grid: Union[Mapping[str, Mapping[str, Any]], Sequence[Mapping[str, Any]]] = field(
        default_factory=lambda: [{}]
    )
    trials: int = 1
    common: Mapping[str, Any] = field(default_factory=dict)
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if isinstance(self.grid, Mapping):
            self._points = [(str(k), dict(v)) for k, v in self.grid.items()]
        else:
            self._points = [(_point_key(pt), dict(pt)) for pt in self.grid]
        if not self._points:
            raise ValueError("sweep grid is empty")
        keys = [k for k, _ in self._points]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate grid-point keys {dupes}; label points explicitly")

    @property
    def point_keys(self) -> List[str]:
        """Grid-point keys in task order."""
        return [k for k, _ in self._points]

    def task_seed(self, point: str, trial: int) -> np.random.SeedSequence:
        """The exact seed stream of one ``(point, trial)`` cell — what a
        failed trial's error message tells you to replay."""
        return derive_seed_sequence(self.seed, self.name, point, trial)

    def tasks(self) -> List[TrialTask]:
        """Expand into the flat, ordered task list (points major, trials
        minor) — the order results are reassembled in, pool or serial."""
        out: List[TrialTask] = []
        for key, point in self._points:
            for t in range(self.trials):
                out.append(
                    TrialTask(
                        fn=self.fn,
                        params={**self.common, **point},
                        seed=self.task_seed(key, t),
                        index=len(out),
                        point=key,
                        trial=t,
                        label=f"{self.name}[{key}:{t}]",
                    )
                )
        return out


def grid_points(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts:
    ``grid_points(p=[64, 128], L=[1.0, 4.0])`` → 4 points."""
    names = list(axes)
    return [dict(zip(names, combo)) for combo in itertools.product(*axes.values())]
