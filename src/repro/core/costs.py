"""Penalty functions ``f_m`` and superstep cost formulas.

Section 2 of the paper defines, for globally-limited models, a per-slot charge

.. math::

    f_m(m_t) = \\begin{cases}
        0 & m_t = 0 \\\\
        1 & 1 \\le m_t \\le m \\\\
        \\ge m_t / m \\text{ (increasing)} & m_t > m
    \\end{cases}

with two canonical instantiations: the **linear** charge ``m_t / m`` (used for
lower bounds — a network that absorbs any injection rate at throughput m) and
the **exponential** charge ``e^{m_t/m - 1}`` (used for upper bounds — a network
that deteriorates drastically past its aggregate limit).

A *superstep charge* is then ``c_m = sum_t f_m(m_t)`` and the five cost
metrics of the paper are expressed on top of it:

======================  =====================================
model                   superstep cost
======================  =====================================
BSP(g)                  ``max(w, g*h, L)``
BSP(m)                  ``max(w, h, c_m, L)``
self-scheduling BSP(m)  ``max(w, h, n/m, L)``
QSM(g)                  ``max(w, g*h, kappa)``
QSM(m)                  ``max(w, h, kappa, c_m)``
======================  =====================================

All penalty functions here are vectorized over NumPy arrays of slot counts so
that schedule evaluation over millions of slots stays in compiled code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Union

import numpy as np

from repro.core.kernels import (
    KIND_EXPONENTIAL,
    KIND_LINEAR,
    KIND_POLYNOMIAL,
    penalty_charges,
)
from repro.util.validation import check_positive

__all__ = [
    "PenaltyFunction",
    "LinearPenalty",
    "ExponentialPenalty",
    "PolynomialPenalty",
    "CapacityPenalty",
    "LINEAR",
    "EXPONENTIAL",
    "superstep_charge",
    "slot_charges",
    "bsp_g_cost",
    "bsp_m_cost",
    "self_scheduling_cost",
    "qsm_g_cost",
    "qsm_m_cost",
]

ArrayLike = Union[int, float, np.ndarray]


class PenaltyFunction:
    """Base class for per-slot charges ``f_m``.

    Subclasses implement :meth:`overload`, the charge for ``m_t > m`` given
    the overload ratio ``rho = m_t / m > 1``.  The 0/1 regimes are handled
    uniformly here, guaranteeing every subclass satisfies the paper's
    contract (``f_m(0)=0``, ``f_m(m_t)=1`` on ``[1, m]``, and
    ``f_m(m_t) >= m_t/m`` increasing above ``m`` — the latter is checked by
    the property-based tests rather than at runtime).
    """

    name: str = "abstract"

    #: Kernel id from :mod:`repro.core.kernels` for the built-in families
    #: (``None`` routes custom subclasses through :meth:`overload`).  When
    #: set, evaluation uses the fused — optionally Numba-JIT'd — kernel.
    kernel_kind: ClassVar[Optional[int]] = None
    #: Shape parameter forwarded to the kernel (polynomial degree).
    kernel_param: float = 0.0

    def overload(self, rho: np.ndarray) -> np.ndarray:
        """Charge for overload ratios ``rho > 1`` (vectorized)."""
        raise NotImplementedError

    def __call__(self, counts: ArrayLike, m: int) -> np.ndarray:
        """Evaluate ``f_m`` on an array of per-slot injection counts."""
        check_positive("m", m)
        counts_arr = np.asarray(counts, dtype=np.float64)
        if np.any(counts_arr < 0):
            raise ValueError("slot counts must be non-negative")
        if self.kernel_kind is not None:
            return penalty_charges(counts_arr, m, self.kernel_kind, self.kernel_param)
        out = np.zeros_like(counts_arr)
        in_band = (counts_arr >= 1) & (counts_arr <= m)
        out[in_band] = 1.0
        over = counts_arr > m
        if np.any(over):
            out[over] = self.overload(counts_arr[over] / m)
        return out

    def scalar(self, count: float, m: int) -> float:
        """Scalar convenience wrapper around :meth:`__call__`."""
        return float(self(np.asarray([count]), m)[0])

    def cache_key(self) -> str:
        """Stable identity of the penalty *family* (not the instance), used
        by the sweep engine's memo cache to key priced reports.  Subclasses
        with shape parameters must fold them in (see
        :class:`PolynomialPenalty`)."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LinearPenalty(PenaltyFunction):
    """The minimum admissible charge ``f_m(m_t) = m_t / m`` — the paper's
    lower-bound model of a network that absorbs arbitrary injection rates at
    sustained throughput ``m``."""

    name = "linear"
    kernel_kind = KIND_LINEAR

    def overload(self, rho: np.ndarray) -> np.ndarray:
        return rho


class ExponentialPenalty(PenaltyFunction):
    """The pessimistic charge ``f_m(m_t) = e^{m_t/m - 1}`` for ``m_t > m`` —
    the paper's upper-bound model where ``m`` is the breaking point past
    which network performance deteriorates drastically."""

    name = "exponential"
    kernel_kind = KIND_EXPONENTIAL

    def overload(self, rho: np.ndarray) -> np.ndarray:
        # Extreme overloads saturate to inf, which is the semantically
        # correct charge for a drastically deteriorated network.
        with np.errstate(over="ignore"):
            return np.exp(rho - 1.0)


@dataclass
class PolynomialPenalty(PenaltyFunction):
    """Ablation family ``f_m(m_t) = (m_t/m)^k`` for ``m_t > m``.

    ``k = 1`` recovers :class:`LinearPenalty`; larger ``k`` interpolates
    toward the exponential regime.  Used by the penalty-family ablation
    benchmark.
    """

    degree: float = 2.0
    name = "polynomial"
    kernel_kind = KIND_POLYNOMIAL

    def __post_init__(self) -> None:
        if self.degree < 1.0:
            raise ValueError(
                f"degree must be >= 1 so that f_m >= m_t/m, got {self.degree}"
            )

    @property
    def kernel_param(self) -> float:
        return self.degree

    def overload(self, rho: np.ndarray) -> np.ndarray:
        return rho**self.degree

    def cache_key(self) -> str:
        return f"{self.name}(degree={self.degree:g})"


class CapacityPenalty(PenaltyFunction):
    """An *inadmissible* hard-capacity charge ``f_m = 1`` for every nonempty
    slot, modeling LOGP/PRAM(m)-style capacity constraints where overload is
    simply forbidden.  Evaluating it on an overloaded slot raises — this is
    the executable statement that such models cannot price overload."""

    name = "capacity"

    def overload(self, rho: np.ndarray) -> np.ndarray:
        raise OverflowError(
            "hard-capacity network overloaded: "
            f"max injection ratio {float(np.max(rho)):.3f} > 1"
        )


#: Module-level singletons for the two canonical penalties.
LINEAR = LinearPenalty()
EXPONENTIAL = ExponentialPenalty()


def slot_charges(
    counts: ArrayLike, m: int, penalty: PenaltyFunction = EXPONENTIAL
) -> np.ndarray:
    """Per-slot charges ``f_m(m_t)`` for an array of injection counts."""
    return penalty(counts, m)


def superstep_charge(
    counts: ArrayLike, m: int, penalty: PenaltyFunction = EXPONENTIAL
) -> float:
    """The aggregate-bandwidth charge ``c_m = sum_t f_m(m_t)`` of a superstep
    whose slot-injection histogram is ``counts``."""
    return float(np.sum(penalty(counts, m)))


# ----------------------------------------------------------------------
# Superstep cost formulas (Section 2)
# ----------------------------------------------------------------------


def bsp_g_cost(w: float, h: float, g: float, L: float) -> float:
    """BSP(g) superstep cost ``max(w, g*h, L)``."""
    return max(w, g * h, L)


def bsp_m_cost(w: float, h: float, c_m: float, L: float) -> float:
    """BSP(m) superstep cost ``max(w, h, c_m, L)``."""
    return max(w, h, c_m, L)


def self_scheduling_cost(w: float, h: float, n: float, m: int, L: float) -> float:
    """Self-scheduling BSP(m) superstep cost ``max(w, h, n/m, L)`` where
    ``n`` is the number of messages transmitted in the superstep."""
    check_positive("m", m)
    return max(w, h, n / m, L)


def qsm_g_cost(w: float, h: float, g: float, kappa: float) -> float:
    """QSM(g) phase cost ``max(w, g*h, kappa)`` (``h`` already includes the
    model's ``max(1, ...)`` clamp; see :mod:`repro.models.qsm_g`)."""
    return max(w, g * h, kappa)


def qsm_m_cost(w: float, h: float, kappa: float, c_m: float) -> float:
    """QSM(m) phase cost ``max(w, h, kappa, c_m)``."""
    return max(w, h, kappa, c_m)
