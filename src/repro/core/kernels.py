"""Fused numeric kernels for the superstep hot loop — Numba-optional.

This module is the single home of the array-in/array-out primitives the
fused engine path and the per-model pricing functions are built on:

* :func:`penalty_charges` — the per-slot charge vector ``f_m(m_t)`` for the
  built-in penalty families, evaluated in one pass;
* :func:`slot_charge_stats` — the full aggregate-bandwidth statistics of a
  slot histogram (``c_m`` with idle-slot accounting, the literal paper
  charge, span, overloaded-slot count, peak load) shared by BSP(m) and
  QSM(m);
* :func:`stable_group_order` — the delivery permutation (a stable argsort
  by small integer keys) computed via a combined-key ``np.sort``, which is
  ~7× faster than ``np.argsort(kind="stable")`` at engine scales;
* :func:`group_bounds` — counting-sort group boundaries for the delivery
  loop.

JIT policy
----------
When Numba is importable (``pip install repro[numba]``) the elementwise
penalty kernel is compiled with ``numba.njit`` at import time; otherwise a
pure-NumPy implementation with *identical per-element arithmetic* is used.
The environment variable ``REPRO_NUMBA=0`` forces the NumPy fallback even
when Numba is installed.  Reductions over the charge vector (the float
sums behind ``c_m``) always run through ``np.sum`` so that summation order
— and therefore every model time — is bit-identical across the JIT and
fallback paths.  The equivalence is gated by ``tests/test_fused_kernel.py``
in both configurations.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "NUMBA_ENABLED",
    "KIND_LINEAR",
    "KIND_EXPONENTIAL",
    "KIND_POLYNOMIAL",
    "penalty_charges",
    "penalty_charges_batched",
    "slot_charge_stats",
    "slot_charge_stats_batched",
    "stable_group_order",
    "group_bounds",
]

_I64 = np.int64

#: Kernel ids for the built-in penalty families (see ``repro.core.costs``).
KIND_LINEAR = 0
KIND_EXPONENTIAL = 1
KIND_POLYNOMIAL = 2


def _numpy_penalty_charges(
    counts: np.ndarray, m: int, kind: int, param: float
) -> np.ndarray:
    """Pure-NumPy ``f_m`` evaluation, arithmetically identical to the
    historical :meth:`repro.core.costs.PenaltyFunction.__call__` masks."""
    counts_arr = np.asarray(counts, dtype=np.float64)
    out = np.zeros_like(counts_arr)
    in_band = (counts_arr >= 1) & (counts_arr <= m)
    out[in_band] = 1.0
    over = counts_arr > m
    if np.any(over):
        rho = counts_arr[over] / m
        if kind == KIND_LINEAR:
            out[over] = rho
        elif kind == KIND_EXPONENTIAL:
            with np.errstate(over="ignore"):
                out[over] = np.exp(rho - 1.0)
        else:
            out[over] = rho**param
    return out


def _load_numba():
    """Import-time JIT selection: compiled kernel or ``None``."""
    if os.environ.get("REPRO_NUMBA", "").lower() in ("0", "off", "false"):
        return None
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=True)
    def _jit_penalty_charges(counts, m, kind, param):  # pragma: no cover - needs numba
        out = np.zeros(counts.size, dtype=np.float64)
        for i in range(counts.size):
            c = counts[i]
            if c < 1.0:
                continue
            if c <= m:
                out[i] = 1.0
            else:
                rho = c / m
                if kind == KIND_LINEAR:
                    out[i] = rho
                elif kind == KIND_EXPONENTIAL:
                    out[i] = np.exp(rho - 1.0)
                else:
                    out[i] = rho**param
        return out

    return _jit_penalty_charges


_jit_charges = _load_numba()

#: True when the Numba-compiled penalty kernel is active for this process.
NUMBA_ENABLED: bool = _jit_charges is not None


def penalty_charges(
    counts: np.ndarray, m: int, kind: int, param: float = 0.0
) -> np.ndarray:
    """Per-slot charges ``f_m(m_t)`` for a built-in penalty family.

    ``kind`` is one of :data:`KIND_LINEAR` / :data:`KIND_EXPONENTIAL` /
    :data:`KIND_POLYNOMIAL` (``param`` = polynomial degree).  Dispatches to
    the Numba kernel when available, else the NumPy implementation; the two
    are gated bit-identical by the test suite.
    """
    if _jit_charges is not None:
        return _jit_charges(
            np.asarray(counts, dtype=np.float64), float(m), kind, float(param)
        )
    return _numpy_penalty_charges(counts, m, kind, param)


def slot_charge_stats(
    counts: np.ndarray, m: int, penalty
) -> Tuple[float, float, float, int, int]:
    """Aggregate-bandwidth statistics of a slot-injection histogram.

    Returns ``(comm, c_m_paper, span, overloaded, max_load)`` where
    ``comm = sum_t max(f_m(m_t), 1)`` is the engine's idle-slot-counting
    charge, ``c_m_paper = sum_t f_m(m_t)`` the literal paper charge,
    ``span`` the schedule span, ``overloaded`` the number of slots with
    ``m_t > m`` and ``max_load`` the peak slot load.  This is the shared
    pricing core of BSP(m) and QSM(m).

    ``penalty`` is a :class:`~repro.core.costs.PenaltyFunction`; built-in
    families route through :func:`penalty_charges` (JIT-able), custom
    subclasses fall back to their own ``__call__``.
    """
    if counts.size == 0:
        return 0.0, 0.0, 0.0, 0, 0
    kind: Optional[int] = getattr(penalty, "kernel_kind", None)
    if kind is not None:
        charges = penalty_charges(counts, m, kind, getattr(penalty, "kernel_param", 0.0))
    else:
        charges = penalty(counts, m)
    comm = float(np.sum(np.maximum(charges, 1.0)))
    c_m_paper = float(np.sum(charges))
    span = float(counts.size)
    overloaded = int(np.sum(counts > m))
    max_load = int(counts.max())
    return comm, c_m_paper, span, overloaded, max_load


def penalty_charges_batched(
    counts: np.ndarray, m_col, kind: int, param: float = 0.0
) -> np.ndarray:
    """``(B, S)`` matrix of per-slot charges over one shared histogram.

    Row ``b`` is bit-identical to ``penalty_charges(counts, m_col[b], kind,
    param)`` *by construction*: rows with equal ``m`` are evaluated once
    through the active 1-D kernel (JIT or NumPy fallback — whichever this
    process selected) and broadcast back, so the batch axis adds no new
    floating-point path that could drift from the sequential one.  A sweep
    grid typically has far fewer distinct ``m`` values than trials, so this
    is also the cheaper evaluation order.
    """
    m_arr = np.asarray(m_col, dtype=np.float64)
    counts_arr = np.asarray(counts)
    out = np.empty((m_arr.size, counts_arr.size), dtype=np.float64)
    uniq, inverse = np.unique(m_arr, return_inverse=True)
    for u in range(uniq.size):
        out[inverse == u] = penalty_charges(counts_arr, uniq[u], kind, param)
    return out


def slot_charge_stats_batched(counts: np.ndarray, m_col, penalties):
    """Batched :func:`slot_charge_stats` over one shared slot histogram.

    ``counts`` is the histogram of a single recorded superstep; ``m_col``
    and ``penalties`` give the per-trial aggregate-bandwidth limit and
    penalty function for each of the ``B`` trials.  Returns ``(comm,
    c_m_paper, span, overloaded, max_load)`` where ``comm``/``c_m_paper``/
    ``overloaded`` are length-``B`` arrays and ``span``/``max_load`` are
    scalars shared by every trial.

    Bit-identity contract: row ``b`` equals ``slot_charge_stats(counts,
    m_col[b], penalties[b])`` exactly — each distinct ``(penalty family,
    m)`` charge vector comes from the same kernel call the sequential path
    makes, and the per-trial reductions are the same ``np.sum`` applied
    along ``axis=1`` of the stacked charge matrix (axis reductions over a
    C-contiguous row use the same pairwise summation order as the 1-D
    call).
    """
    B = len(penalties)
    if counts.size == 0:
        zeros = np.zeros(B, dtype=np.float64)
        return zeros, zeros.copy(), 0.0, np.zeros(B, dtype=_I64), 0
    charges = np.empty((B, counts.size), dtype=np.float64)
    cache: dict = {}
    for b in range(B):
        pen = penalties[b]
        m = m_col[b]
        kind: Optional[int] = getattr(pen, "kernel_kind", None)
        if kind is not None:
            key = (kind, float(getattr(pen, "kernel_param", 0.0)), float(m))
        else:
            key = (id(pen), float(m))
        row = cache.get(key)
        if row is None:
            if kind is not None:
                row = penalty_charges(
                    counts, m, kind, getattr(pen, "kernel_param", 0.0)
                )
            else:
                row = np.asarray(pen(counts, m), dtype=np.float64)
            cache[key] = row
        charges[b] = row
    comm = np.sum(np.maximum(charges, 1.0), axis=1)
    c_m_paper = np.sum(charges, axis=1)
    span = float(counts.size)
    m_arr = np.asarray(m_col)
    overloaded = np.sum(
        np.asarray(counts)[None, :] > m_arr[:, None], axis=1, dtype=_I64
    )
    max_load = int(counts.max())
    return comm, c_m_paper, span, overloaded, max_load


# ----------------------------------------------------------------------
# Delivery grouping
# ----------------------------------------------------------------------

#: Past this element count the combined sort key ``key*n + i`` could
#: overflow int64 for large key ranges; fall back to argsort.
_COMBINED_SORT_LIMIT = np.iinfo(np.int64).max


def stable_group_order(keys: np.ndarray, max_key: int) -> np.ndarray:
    """Permutation that stably sorts ``keys`` (small non-negative ints).

    Exactly ``np.argsort(keys, kind="stable")``, but computed by sorting
    the combined key ``keys * n + arange(n)`` — a plain ``np.sort`` on
    int64, which is ~7× faster than a stable argsort at the engine's
    typical batch sizes (the combined keys are distinct, so ascending
    order is (key, original-index) order, i.e. stable).
    """
    n = keys.size
    if n <= 1:
        return np.arange(n, dtype=_I64)
    if (max_key + 1) * n >= _COMBINED_SORT_LIMIT:  # pragma: no cover - huge runs
        return np.argsort(keys, kind="stable")
    combined = keys * _I64(n) + np.arange(n, dtype=_I64)
    np.ndarray.sort(combined)
    return combined % n


def group_bounds(keys: np.ndarray, n_groups: int) -> np.ndarray:
    """Counting-sort boundaries: ``bounds[k]:bounds[k+1]`` spans group ``k``
    in the stable order returned by :func:`stable_group_order`."""
    counts = np.bincount(keys, minlength=n_groups)
    bounds = np.empty(counts.size + 1, dtype=_I64)
    bounds[0] = 0
    np.cumsum(counts, out=bounds[1:])
    return bounds
