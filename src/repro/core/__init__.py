"""Core machinery: parameters, penalty/cost functions, and the engine."""

from repro.core.params import MachineParams
from repro.core.costs import (
    PenaltyFunction,
    LinearPenalty,
    ExponentialPenalty,
    PolynomialPenalty,
    CapacityPenalty,
    LINEAR,
    EXPONENTIAL,
    superstep_charge,
    slot_charges,
)
from repro.core.engine import (
    Machine,
    Proc,
    ReadHandle,
    RunResult,
    ModelViolation,
    ProgramError,
    RunAborted,
)
from repro.core.events import (
    Message,
    ReadRequest,
    WriteRequest,
    SuperstepRecord,
    CostBreakdown,
)

__all__ = [
    "MachineParams",
    "PenaltyFunction",
    "LinearPenalty",
    "ExponentialPenalty",
    "PolynomialPenalty",
    "CapacityPenalty",
    "LINEAR",
    "EXPONENTIAL",
    "superstep_charge",
    "slot_charges",
    "Machine",
    "Proc",
    "ReadHandle",
    "RunResult",
    "ModelViolation",
    "ProgramError",
    "RunAborted",
    "Message",
    "ReadRequest",
    "WriteRequest",
    "SuperstepRecord",
    "CostBreakdown",
]
