"""Bulk-synchronous SPMD execution engine.

Programs are written in an mpi4py-like SPMD style: a *program* is a Python
generator function ``program(ctx, ...)`` executed once per processor.  Each
``yield`` is a barrier — the end of a BSP superstep / QSM phase.  Between
yields the program calls methods on its :class:`Proc` context:

* ``ctx.send(dest, payload, size=1, slot=None)`` — point-to-point message
  (BSP machines).  ``slot`` is the injection time-slot within the superstep;
  globally-limited machines price slot congestion, locally-limited machines
  ignore slots.
* ``ctx.send_many(dests, payloads=..., sizes=..., slots=...)`` — the batch
  form: one call registers a whole array of messages into the engine's
  columnar buffers (no per-message Python objects).  Use it whenever a
  processor emits more than a handful of messages per superstep.
* ``ctx.read(addr)`` / ``ctx.write(addr, value)`` — shared memory (QSM
  machines).  A read returns a :class:`ReadHandle` whose ``.value`` becomes
  available only after the next ``yield`` (the QSM rule).  The batch forms
  ``ctx.read_many(addrs)`` / ``ctx.write_many(addrs, values)`` register
  arrays of requests; ``read_many`` returns one :class:`BatchReadHandle`
  whose ``.values`` resolve at the barrier.
* ``ctx.work(amount)`` — charge local computation.
* ``ctx.inbox`` — messages delivered at the last barrier (a list-like
  :class:`InboxView`; iterate for :class:`Message` objects, or use its
  ``.payloads`` / ``.srcs`` columns to skip object materialization).

At every barrier the engine freezes the superstep into a columnar
:class:`~repro.core.events.SuperstepRecord`, asks the concrete machine to
price it, delivers messages, resolves read handles and applies writes.  The
run's total time is the sum of superstep costs.  Pricing and delivery are
vectorized over the record's columns; scalar and batch APIs produce
identical records, costs and stats (a contract pinned by
``tests/test_batch_equivalence.py``).

Timing note (globally-limited machines)
---------------------------------------
The paper defines the superstep charge ``c_m = sum_t f_m(m_t)``; since
``f_m(0) = 0``, a literal reading would make idle time-slots free, letting a
schedule stretch over an arbitrarily long span at no cost — contradicting the
analysis of Section 6, which counts the *span* of the injection schedule as
elapsed time ("the total number of sending steps required ... is at most
``max((1+eps)n/m, x_bar)``").  The engine therefore prices communication as

.. math:: T_{comm} = \\sum_{t=0}^{span-1} \\max(f_m(m_t), 1)

i.e. every time step elapses at least one unit, and overloaded steps cost
``f_m``.  For gap-free schedules this equals the paper's ``c_m`` exactly; the
literal ``c_m`` is also recorded in ``record.stats['c_m_paper']``.
"""

from __future__ import annotations

import os as _os
import time as _time
from collections import Counter
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.arena import RequestArena, SendArena
from repro.core.events import (
    Column,
    CostBreakdown,
    Message,
    MessageBatch,
    RequestBatch,
    SuperstepRecord,
    _column_take,
)
from repro.core.kernels import stable_group_order
from repro.core.params import MachineParams
from repro.obs.ledger import active_ledger as _active_ledger
from repro.obs.metrics import active_metrics as _active_metrics
from repro.obs.tracer import active_tracer as _active_tracer

__all__ = [
    "ModelViolation",
    "ProgramError",
    "RunAborted",
    "ReadHandle",
    "BatchReadHandle",
    "InboxView",
    "DenseSharedMemory",
    "Proc",
    "Machine",
    "RunResult",
    "fused_default",
    "set_fused_default",
]

_I64 = np.int64

# ----------------------------------------------------------------------
# Fused-path default: the arena-based freeze+price+deliver barrier is on
# unless REPRO_FUSED=0 (or a caller passes fused=False to Machine.run).
# Both paths are bit-identical (tests/test_fused_kernel.py); the toggle
# exists for A/B benchmarking and as an escape hatch.
# ----------------------------------------------------------------------
_fused_default_flag = _os.environ.get("REPRO_FUSED", "").lower() not in (
    "0",
    "off",
    "false",
)


def fused_default() -> bool:
    """Whether :meth:`Machine.run` uses the fused arena path by default."""
    return _fused_default_flag


def set_fused_default(value: bool) -> bool:
    """Set the process-wide fused default; returns the previous value."""
    global _fused_default_flag
    old = _fused_default_flag
    _fused_default_flag = bool(value)
    return old


class ModelViolation(Exception):
    """The program broke a rule of the machine model (e.g. two injections by
    one processor in the same time slot of a globally-limited machine, or
    concurrent reads *and* writes to one QSM location in a single phase)."""


class ProgramError(Exception):
    """The SPMD program misused the engine API (e.g. reading a
    :class:`ReadHandle` before the barrier that resolves it)."""


class RunAborted(ProgramError):
    """A run was cut short by a watchdog, carrying everything computed so
    far instead of losing it.

    Raised when a run exceeds ``max_supersteps``, the relative wall-clock
    ``max_time`` budget, or the absolute ``deadline`` of
    :meth:`Machine.run`.  Subclasses :class:`ProgramError` so existing
    ``except ProgramError`` handlers keep working.

    Attributes
    ----------
    partial:
        The :class:`RunResult` of every superstep completed before the
        abort (per-processor results are ``None`` for processors that had
        not finished).
    superstep:
        Index of the superstep at which the run was aborted.
    reason:
        Machine-readable cause: ``"max_supersteps"``, ``"max_time"`` or
        ``"deadline"``.
    """

    def __init__(
        self, message: str, *, partial: "RunResult", superstep: int, reason: str
    ) -> None:
        super().__init__(message)
        self.partial = partial
        self.superstep = superstep
        self.reason = reason


def _resolve_deadline(max_time, deadline):
    """Effective absolute monotonic deadline and which budget set it.

    ``max_time`` is relative (seconds from now), ``deadline`` absolute
    (a ``time.monotonic()`` timestamp); whichever expires first wins.
    """
    at = None
    reason = "max_time"
    if max_time is not None:
        at = _time.monotonic() + max_time
    if deadline is not None and (at is None or float(deadline) < at):
        at = float(deadline)
        reason = "deadline"
    return at, reason


def _deadline_message(reason, max_time, index):
    if reason == "deadline":
        return f"run exceeded its absolute deadline at superstep {index}"
    return (
        f"run exceeded the max_time={max_time:g}s wall-clock budget "
        f"at superstep {index}"
    )


_UNRESOLVED = object()


class ReadHandle:
    """Deferred result of a QSM shared-memory read.

    The value is installed by the engine at the barrier; touching ``.value``
    earlier raises :class:`ProgramError`, which is exactly the QSM rule that
    "the value returned by a shared-memory read can only be used in a
    subsequent phase".
    """

    __slots__ = ("_value", "addr")

    def __init__(self, addr: Any) -> None:
        self.addr = addr
        self._value = _UNRESOLVED

    @property
    def value(self) -> Any:
        if self._value is _UNRESOLVED:
            raise ProgramError(
                f"read of {self.addr!r} not yet resolved: QSM read values are "
                "available only after the next phase barrier (yield)"
            )
        return self._value

    @property
    def resolved(self) -> bool:
        return self._value is not _UNRESOLVED

    def _resolve(self, value: Any) -> None:
        self._value = value

    def _resolve_span(self, values: Sequence[Any], start: int, stop: int) -> None:
        self._value = values[start]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = repr(self._value) if self.resolved else "<pending>"
        return f"ReadHandle(addr={self.addr!r}, value={state})"


class BatchReadHandle:
    """Deferred results of a ``ctx.read_many`` batch of QSM reads.

    ``.values`` (a list aligned with the request addresses) becomes
    available after the next barrier, exactly like a scalar
    :class:`ReadHandle`.
    """

    __slots__ = ("_values", "addrs")

    def __init__(self, addrs: Any) -> None:
        self.addrs = addrs
        self._values = _UNRESOLVED

    @property
    def values(self) -> List[Any]:
        if self._values is _UNRESOLVED:
            raise ProgramError(
                "batch read not yet resolved: QSM read values are available "
                "only after the next phase barrier (yield)"
            )
        return self._values

    @property
    def resolved(self) -> bool:
        return self._values is not _UNRESOLVED

    def __len__(self) -> int:
        return len(self.addrs)

    def __getitem__(self, i: int) -> Any:
        return self.values[i]

    def _resolve_span(self, values: Sequence[Any], start: int, stop: int) -> None:
        vals = values[start:stop]
        self._values = vals.tolist() if isinstance(vals, np.ndarray) else list(vals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{len(self.addrs)} values" if self.resolved else "<pending>"
        return f"BatchReadHandle({state})"


class InboxView:
    """List-like view of the messages delivered to one processor.

    Iterating (or indexing) materializes :class:`Message` objects lazily —
    the debuggability contract for existing programs.  The columnar
    accessors ``payloads`` / ``srcs`` / ``sizes`` / ``slots`` skip object
    materialization entirely and are the fast path for batch-style
    programs.
    """

    __slots__ = ("_batch", "_idx", "_objects")

    def __init__(self, batch: MessageBatch, idx: np.ndarray) -> None:
        self._batch = batch
        self._idx = idx
        self._objects: Optional[List[Message]] = None

    # -- list compatibility ----------------------------------------------------
    def __len__(self) -> int:
        return int(self._idx.size)

    def __bool__(self) -> bool:
        return self._idx.size > 0

    def _materialize(self) -> List[Message]:
        if self._objects is None:
            b, pl = self._batch, self._batch.payload
            self._objects = [
                Message(
                    src=int(b.src[i]),
                    dest=int(b.dest[i]),
                    payload=None if pl is None else pl[i],
                    size=int(b.size[i]),
                    slot=int(b.slot[i]),
                    consecutive=bool(b.consecutive[i]),
                )
                for i in self._idx.tolist()
            ]
        return self._objects

    def __iter__(self) -> Iterator[Message]:
        return iter(self._materialize())

    def __getitem__(self, i):
        return self._materialize()[i]

    # -- columnar fast path ----------------------------------------------------
    @property
    def payloads(self):
        """Payload column of the delivered messages (list, or array slice
        when the payloads were sent as an array)."""
        return _column_take(self._batch.payload, self._idx, int(self._idx.size))

    @property
    def srcs(self) -> np.ndarray:
        return self._batch.src[self._idx]

    @property
    def sizes(self) -> np.ndarray:
        return self._batch.size[self._idx]

    @property
    def slots(self) -> np.ndarray:
        return self._batch.slot[self._idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InboxView({len(self)} messages)"


_EMPTY_INBOX = InboxView(MessageBatch.empty(), np.zeros(0, dtype=_I64))


class DenseSharedMemory(MutableMapping):
    """``np.ndarray``-backed shared memory for integer address spaces.

    Install with ``machine.use_dense_memory(size)``.  Integer addresses in
    ``[0, size)`` live in an object-dtype array, so a phase whose requests
    are integer-addressed (``ctx.read_many`` / ``ctx.write_many`` with an
    integer array) resolves with one fancy-indexing operation instead of a
    per-request dict lookup.  Anything else (tuple addresses, out-of-range
    ints) transparently falls back to an overflow dict, and the scalar
    mapping API behaves like the plain dict it replaces — with the one
    documented difference that in-range cells default to ``None`` rather
    than raising ``KeyError`` (matching ``dict.get``, which is how the
    engine reads memory).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"dense memory size must be >= 1, got {size}")
        self.size = size
        self._cells = np.full(size, None, dtype=object)
        self._overflow: Dict[Any, Any] = {}

    # -- scalar mapping API ----------------------------------------------------
    def _in_range(self, key: Any) -> bool:
        return isinstance(key, (int, np.integer)) and 0 <= key < self.size

    def __getitem__(self, key: Any) -> Any:
        if self._in_range(key):
            return self._cells[key]
        return self._overflow[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        if self._in_range(key):
            self._cells[key] = value
        else:
            self._overflow[key] = value

    def __delitem__(self, key: Any) -> None:
        if self._in_range(key):
            self._cells[key] = None
        else:
            del self._overflow[key]

    def __iter__(self):
        for i in range(self.size):
            if self._cells[i] is not None:
                yield i
        yield from self._overflow

    def __len__(self) -> int:
        return int(np.sum(self._cells != None)) + len(self._overflow)  # noqa: E711

    def get(self, key: Any, default: Any = None) -> Any:
        if self._in_range(key):
            v = self._cells[key]
            return default if v is None else v
        return self._overflow.get(key, default)

    def clear(self) -> None:
        self._cells[:] = None
        self._overflow.clear()

    # -- batch fast path -------------------------------------------------------
    def take(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized ``get`` over an integer address array.

        Out-of-range addresses are detected with one bounds mask; only those
        (rare) entries walk the overflow dict — the in-range majority stays
        a single fancy index either way.
        """
        in_r = (addrs >= 0) & (addrs < self.size)
        if in_r.all():
            return self._cells[addrs]
        out = np.empty(addrs.size, dtype=object)
        out[in_r] = self._cells[addrs[in_r]]
        for i in np.nonzero(~in_r)[0].tolist():
            out[i] = self._overflow.get(int(addrs[i]))
        return out

    def put(self, addrs: np.ndarray, values: Any) -> None:
        """Vectorized ``__setitem__``; duplicate addresses resolve to the
        last value in request order (the engine's Arbitrary rule).

        Same bounds-mask discipline as :meth:`take`: only out-of-range
        entries spill to the overflow dict one by one.
        """
        vals = np.empty(addrs.size, dtype=object)
        vals[:] = list(values) if not isinstance(values, np.ndarray) else values.tolist()
        in_r = (addrs >= 0) & (addrs < self.size)
        if in_r.all():
            self._cells[addrs] = vals
            return
        self._cells[addrs[in_r]] = vals[in_r]
        for i in np.nonzero(~in_r)[0].tolist():
            self._overflow[int(addrs[i])] = vals[i]


def _as_index_array(values: Any, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=_I64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.ndim != 1:
        raise ProgramError(f"{name} must be one-dimensional")
    return arr


class Proc:
    """Per-processor execution context handed to SPMD programs.

    Operations accumulate into per-processor *chunks* — scalar calls append
    to plain Python lists, batch calls append whole arrays — and the engine
    concatenates everything into the superstep's columnar record at the
    barrier, preserving issue order exactly.  On the fused path the chunk
    lists are bypassed: operations append straight into the machine's
    preallocated arenas (:mod:`repro.core.arena`) and the barrier freeze is
    a slice-copy.  Both paths produce value-identical records.
    """

    def __init__(self, pid: int, nprocs: int, machine: "Machine") -> None:
        self.pid = pid
        self.nprocs = nprocs
        self._machine = machine
        self.inbox: InboxView = _EMPTY_INBOX
        self._work = 0.0
        # fused-path arena references (attached by Machine.run)
        self._arena_send: Optional[SendArena] = None
        self._arena_read: Optional[RequestArena] = None
        self._arena_write: Optional[RequestArena] = None
        # scalar accumulation lists (dest, size, slot, consecutive, payload)
        self._sc_dest: List[int] = []
        self._sc_size: List[int] = []
        self._sc_slot: List[int] = []
        self._sc_consec: List[bool] = []
        self._sc_payload: List[Any] = []
        self._send_chunks: List[MessageBatch] = []
        # scalar read lists (addr, slot, handle) and write lists
        self._sc_raddr: List[Any] = []
        self._sc_rslot: List[int] = []
        self._sc_rhandle: List[ReadHandle] = []
        self._read_chunks: List[RequestBatch] = []
        self._sc_waddr: List[Any] = []
        self._sc_wslot: List[int] = []
        self._sc_wvalue: List[Any] = []
        self._write_chunks: List[RequestBatch] = []
        self._next_slot = 0
        self._stagger_k = 0

    # -- engine bookkeeping ---------------------------------------------------
    def _reset_superstep(self) -> None:
        # The record assembly in run() copies everything out, so in-place
        # clear() is safe and avoids reallocating 15 lists per processor
        # per superstep; each accumulator group is only cleared when it was
        # used (measurable on phase-heavy QSM workloads).
        self._work = 0.0
        if self._sc_dest or self._send_chunks:
            self._sc_dest.clear()
            self._sc_size.clear()
            self._sc_slot.clear()
            self._sc_consec.clear()
            self._sc_payload.clear()
            self._send_chunks.clear()
        if self._sc_raddr or self._read_chunks:
            self._sc_raddr.clear()
            self._sc_rslot.clear()
            self._sc_rhandle.clear()
            self._read_chunks.clear()
        if self._sc_waddr or self._write_chunks:
            self._sc_waddr.clear()
            self._sc_wslot.clear()
            self._sc_wvalue.clear()
            self._write_chunks.clear()
        self._next_slot = 0
        self._stagger_k = 0

    def _auto_slot(self, size: int) -> int:
        slot = self._next_slot
        self._next_slot += size
        return slot

    def _bump_slot(self, slot: int, size: int) -> None:
        self._next_slot = max(self._next_slot, slot + size)

    def stagger_slot(self, k: Optional[int] = None) -> Optional[int]:
        """Injection slot for this processor's ``k``-th *staggered* request.

        This is the grouping emulation that opens Section 4 of the paper:
        the ``p`` processors are partitioned into ``ceil(p/m)`` groups of at
        most ``m``, each communication round is subdivided into one sub-slot
        per group, and a processor's ``k``-th request goes to sub-slot
        ``k * ceil(p/m) + (pid // m)``.  As long as every processor issues at
        most one request per round, no slot ever exceeds ``m`` injections,
        so a QSM(g)/BSP(g) program transliterates onto the globally-limited
        machine without overload penalty.

        ``k`` defaults to an internal per-superstep counter.  On machines
        without an aggregate bandwidth parameter the result is ``None``
        (slots are ignored there anyway).
        """
        if k is None:
            k = self._stagger_k
            self._stagger_k += 1
        m = self._machine.params.m
        if m is None:
            return None
        groups = -(-self.nprocs // m)  # ceil(p/m)
        return k * groups + self.pid // m

    def stagger_slots(self, count: int) -> Optional[np.ndarray]:
        """Vectorized :meth:`stagger_slot`: slots for this processor's next
        ``count`` staggered requests (or ``None`` on machines without an
        aggregate bandwidth parameter)."""
        k0 = self._stagger_k
        self._stagger_k += count
        m = self._machine.params.m
        if m is None:
            return None
        groups = -(-self.nprocs // m)
        return (k0 + np.arange(count, dtype=_I64)) * groups + self.pid // m

    # -- freezing into columnar batches ---------------------------------------
    def _flush_scalar_sends(self) -> None:
        if not self._sc_dest:
            return
        n = len(self._sc_dest)
        payload: Any = self._sc_payload
        if all(p is None for p in payload):
            payload = None
        self._send_chunks.append(
            MessageBatch(
                np.full(n, self.pid, dtype=_I64),
                np.asarray(self._sc_dest, dtype=_I64),
                np.asarray(self._sc_size, dtype=_I64),
                np.asarray(self._sc_slot, dtype=_I64),
                np.asarray(self._sc_consec, dtype=bool),
                payload,
            )
        )
        self._sc_dest, self._sc_size, self._sc_slot = [], [], []
        self._sc_consec, self._sc_payload = [], []

    def _flush_scalar_reads(self) -> None:
        if not self._sc_raddr:
            return
        n = len(self._sc_raddr)
        self._read_chunks.append(
            RequestBatch(
                np.full(n, self.pid, dtype=_I64),
                _int_addr_column(self._sc_raddr),
                np.asarray(self._sc_rslot, dtype=_I64),
                None,
                [(h, i, i + 1) for i, h in enumerate(self._sc_rhandle)],
            )
        )
        self._sc_raddr, self._sc_rslot, self._sc_rhandle = [], [], []

    def _flush_scalar_writes(self) -> None:
        if not self._sc_waddr:
            return
        n = len(self._sc_waddr)
        self._write_chunks.append(
            RequestBatch(
                np.full(n, self.pid, dtype=_I64),
                _int_addr_column(self._sc_waddr),
                np.asarray(self._sc_wslot, dtype=_I64),
                self._sc_wvalue,
                [],
            )
        )
        self._sc_waddr, self._sc_wslot, self._sc_wvalue = [], [], []

    # -- program API ------------------------------------------------------------
    def work(self, amount: float = 1.0) -> None:
        """Charge ``amount`` units of local computation this superstep."""
        if amount < 0:
            raise ProgramError(f"work amount must be >= 0, got {amount}")
        self._work += amount

    def send(
        self,
        dest: int,
        payload: Any = None,
        *,
        size: int = 1,
        slot: Optional[int] = None,
        consecutive: bool = True,
    ) -> None:
        """Send a message of ``size`` flits to processor ``dest``.

        ``slot`` pins the injection time-slot of the first flit within this
        superstep; by default flits are injected in the processor's next free
        slots.  Locally-limited machines ignore slots entirely.
        """
        if self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a shared-memory machine; "
                "use read()/write(), not send()"
            )
        if not (0 <= dest < self.nprocs):
            raise ProgramError(
                f"destination {dest} out of range for {self.nprocs} processors"
            )
        if size < 1:
            raise ValueError(f"message size must be >= 1, got {size}")
        if slot is None:
            slot = self._next_slot
            self._next_slot += size
        else:
            if slot < 0:
                raise ValueError(f"slot must be >= 0, got {slot}")
            self._bump_slot(slot, size)
        arena = self._arena_send
        if arena is not None:
            arena.append_scalar(self.pid, dest, size, slot, consecutive, payload)
            return
        self._sc_dest.append(dest)
        self._sc_size.append(size)
        self._sc_slot.append(slot)
        self._sc_consec.append(consecutive)
        self._sc_payload.append(payload)

    def send_many(
        self,
        dests: Any,
        payloads: Any = None,
        *,
        sizes: Any = None,
        slots: Any = None,
        consecutive: bool = True,
    ) -> None:
        """Batch form of :meth:`send`: register a whole array of messages.

        ``dests`` is an integer array-like; ``sizes`` defaults to all-unit,
        ``slots`` to the processor's next free slots (exactly what a loop of
        scalar ``send`` calls would have assigned), and ``payloads`` to all
        ``None``.  Passing a NumPy array as ``payloads`` keeps the column
        array-backed end to end — receivers can read it back via
        ``ctx.receive().payloads`` without materializing any objects.
        """
        if self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a shared-memory machine; "
                "use read()/write(), not send()"
            )
        dest = _as_index_array(dests, "dests")
        n = dest.size
        if n == 0:
            return
        if dest.min() < 0 or dest.max() >= self.nprocs:
            bad = dest[(dest < 0) | (dest >= self.nprocs)][0]
            raise ProgramError(
                f"destination {bad} out of range for {self.nprocs} processors"
            )
        if sizes is None:
            size = None  # all-unit; materialized only on the legacy path
            unit = True
        else:
            size = _as_index_array(sizes, "sizes")
            if size.size != n:
                raise ProgramError(f"sizes has {size.size} entries for {n} messages")
            if size.min() < 1:
                raise ValueError(f"message size must be >= 1, got {int(size.min())}")
            unit = bool(size.max() == 1)
        if slots is None:
            if unit:
                slot = self._next_slot + np.arange(n, dtype=_I64)
                self._next_slot += n
            else:
                cs = np.cumsum(size)
                slot = self._next_slot + cs - size
                self._next_slot += int(cs[-1])
        else:
            slot = _as_index_array(slots, "slots")
            if slot.size != n:
                raise ProgramError(f"slots has {slot.size} entries for {n} messages")
            if slot.min() < 0:
                raise ValueError(f"slot must be >= 0, got {int(slot.min())}")
            if size is None:
                self._next_slot = max(self._next_slot, int(slot.max()) + 1)
            else:
                self._next_slot = max(self._next_slot, int((slot + size).max()))
        if payloads is not None and len(payloads) != n:
            raise ProgramError(f"payloads has {len(payloads)} entries for {n} messages")
        arena = self._arena_send
        if arena is not None:
            arena.append_batch(self.pid, dest, size, slot, bool(consecutive), payloads)
            return
        if size is None:
            size = np.ones(n, dtype=_I64)
        self._flush_scalar_sends()
        self._send_chunks.append(
            MessageBatch(
                np.full(n, self.pid, dtype=_I64),
                dest,
                size,
                slot,
                np.full(n, bool(consecutive), dtype=bool),
                payloads,
            )
        )

    def _require_shared_memory(self) -> None:
        if not self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a message-passing machine; "
                "use send()/inbox, not read()/write()"
            )

    def read(self, addr: Any, *, slot: Optional[int] = None) -> ReadHandle:
        """Issue a QSM shared-memory read; value available after the barrier."""
        self._require_shared_memory()
        if slot is None:
            slot = self._next_slot
            self._next_slot = slot + 1
        elif slot >= self._next_slot:
            self._next_slot = slot + 1
        handle = ReadHandle(addr)
        arena = self._arena_read
        if arena is not None:
            arena.append_scalar_read(self.pid, addr, slot, handle)
            return handle
        self._sc_raddr.append(addr)
        self._sc_rslot.append(slot)
        self._sc_rhandle.append(handle)
        return handle

    def write(self, addr: Any, value: Any, *, slot: Optional[int] = None) -> None:
        """Issue a QSM shared-memory write, visible from the next phase."""
        self._require_shared_memory()
        if slot is None:
            slot = self._next_slot
            self._next_slot = slot + 1
        elif slot >= self._next_slot:
            self._next_slot = slot + 1
        arena = self._arena_write
        if arena is not None:
            arena.append_scalar_write(self.pid, addr, slot, value)
            return
        self._sc_waddr.append(addr)
        self._sc_wslot.append(slot)
        self._sc_wvalue.append(value)

    def _request_slots_for(self, n: int, slots: Any) -> np.ndarray:
        if slots is None:
            slot = self._next_slot + np.arange(n, dtype=_I64)
            self._next_slot += n
            return slot
        slot = _as_index_array(slots, "slots")
        if slot.size != n:
            raise ProgramError(f"slots has {slot.size} entries for {n} requests")
        if slot.min() < 0:
            raise ValueError(f"slot must be >= 0, got {int(slot.min())}")
        self._next_slot = max(self._next_slot, int(slot.max()) + 1)
        return slot

    @staticmethod
    def _addr_column(addrs: Any) -> Any:
        """Keep integer address batches as int64 arrays (dense-memory fast
        path); anything else becomes a plain list."""
        if isinstance(addrs, np.ndarray) and addrs.dtype.kind in "iu":
            return addrs.astype(_I64, copy=False)
        addr_list = list(addrs)
        if addr_list and all(isinstance(a, (int, np.integer)) for a in addr_list):
            return np.asarray(addr_list, dtype=_I64)
        return addr_list

    def read_many(self, addrs: Any, *, slots: Any = None) -> BatchReadHandle:
        """Batch form of :meth:`read`: one call, one handle for all values.

        Returns a :class:`BatchReadHandle`; ``handle.values[i]`` is the
        value at ``addrs[i]``, available after the next barrier.
        """
        self._require_shared_memory()
        addr = self._addr_column(addrs)
        n = len(addr)
        handle = BatchReadHandle(addr)
        if n == 0:
            handle._values = []
            return handle
        slot = self._request_slots_for(n, slots)
        arena = self._arena_read
        if arena is not None:
            arena.append_batch_read(self.pid, addr, slot, handle)
            return handle
        self._flush_scalar_reads()
        self._read_chunks.append(
            RequestBatch(
                np.full(n, self.pid, dtype=_I64), addr, slot, None, [(handle, 0, n)]
            )
        )
        return handle

    def write_many(self, addrs: Any, values: Any, *, slots: Any = None) -> None:
        """Batch form of :meth:`write`: register a whole array of writes."""
        self._require_shared_memory()
        addr = self._addr_column(addrs)
        n = len(addr)
        if n == 0:
            return
        if len(values) != n:
            raise ProgramError(f"values has {len(values)} entries for {n} writes")
        slot = self._request_slots_for(n, slots)
        value = values if isinstance(values, (list, np.ndarray)) else list(values)
        arena = self._arena_write
        if arena is not None:
            arena.append_batch_write(self.pid, addr, slot, value)
            return
        self._flush_scalar_writes()
        self._write_chunks.append(
            RequestBatch(np.full(n, self.pid, dtype=_I64), addr, slot, value, [])
        )

    def receive(self) -> InboxView:
        """Return and clear the messages delivered at the last barrier.

        The result is list-like (iterate for :class:`Message` objects) and
        also exposes columnar accessors — ``.payloads``, ``.srcs``,
        ``.sizes`` — that skip object materialization.
        """
        msgs, self.inbox = self.inbox, _EMPTY_INBOX
        return msgs


@dataclass
class RunResult:
    """Outcome of running one SPMD program on a machine.

    The aggregate properties (``time``, ``total_messages``, ``total_flits``)
    are memoized on first access — ``records`` is immutable once ``run()``
    returns, so the full scans happen at most once per result.
    """

    params: MachineParams
    records: List[SuperstepRecord]
    results: List[Any]
    #: per-superstep load rows recorded for this run when a
    #: :class:`~repro.obs.ledger.LoadLedger` was installed (else ``None``)
    ledger: Optional[Any] = None

    @cached_property
    def time(self) -> float:
        """Total model time: sum of superstep costs (memoized)."""
        return sum(r.cost for r in self.records)

    @property
    def supersteps(self) -> int:
        return len(self.records)

    @cached_property
    def total_messages(self) -> int:
        return sum(r.n_messages for r in self.records)

    @cached_property
    def total_flits(self) -> int:
        return sum(r.total_flits for r in self.records)

    def stat_sum(self, key: str) -> float:
        """Sum of a per-superstep stat across the run (missing = 0)."""
        return sum(r.stats.get(key, 0.0) for r in self.records)

    def stat_max(self, key: str) -> float:
        """Max of a per-superstep stat across the run (missing = 0)."""
        return max((r.stats.get(key, 0.0) for r in self.records), default=0.0)

    def dominant_components(self) -> Dict[str, float]:
        """Total time attributed to each cost component (by superstep
        dominance), useful for the benchmark harness's decompositions."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.breakdown.dominant()] = out.get(r.breakdown.dominant(), 0.0) + r.cost
        return out


def _int_addr_column(addrs: list) -> Any:
    """Int64 array when every address is an integer, else the list itself."""
    if addrs and all(isinstance(a, (int, np.integer)) for a in addrs):
        return np.asarray(addrs, dtype=_I64)
    return addrs


def _gather_msg_batch(procs: List[Proc]) -> MessageBatch:
    """Freeze all processors' sends into one columnar batch, in pid order.

    Scalar sends from consecutive processors are merged into shared Python
    lists and converted with a single ``np.asarray`` per column — building
    per-processor arrays would dominate phase-heavy workloads where each
    processor sends only a handful of messages.
    """
    chunks: List[MessageBatch] = []
    src_runs: List[Tuple[int, int]] = []  # (pid, count) — expanded by repeat
    dest: List[int] = []
    size: List[int] = []
    slot: List[int] = []
    consec: List[bool] = []
    payload: List[Any] = []

    def flush() -> None:
        nonlocal src_runs, dest, size, slot, consec, payload
        if dest:
            pl: Column = None if all(x is None for x in payload) else payload
            src = np.repeat(
                np.asarray([pid for pid, _ in src_runs], dtype=_I64),
                np.asarray([k for _, k in src_runs], dtype=_I64),
            )
            chunks.append(
                MessageBatch(
                    src,
                    np.asarray(dest, dtype=_I64),
                    np.asarray(size, dtype=_I64),
                    np.asarray(slot, dtype=_I64),
                    np.asarray(consec, dtype=bool),
                    pl,
                )
            )
            src_runs, dest, size, slot, consec, payload = [], [], [], [], [], []

    for proc in procs:
        if proc._send_chunks:
            flush()
            chunks.extend(proc._send_chunks)
        k = len(proc._sc_dest)
        if k:
            src_runs.append((proc.pid, k))
            dest.extend(proc._sc_dest)
            size.extend(proc._sc_size)
            slot.extend(proc._sc_slot)
            consec.extend(proc._sc_consec)
            payload.extend(proc._sc_payload)
    flush()
    return MessageBatch.concat(chunks)


def _gather_read_batch(procs: List[Proc]) -> RequestBatch:
    """Freeze all processors' reads into one columnar batch (pid order)."""
    chunks: List[RequestBatch] = []
    pid_runs: List[Tuple[int, int]] = []  # (pid, count) — expanded by repeat
    addr_l: List[Any] = []
    slot_l: List[int] = []
    handle_l: List[ReadHandle] = []

    def flush() -> None:
        nonlocal pid_runs, addr_l, slot_l, handle_l
        if addr_l:
            pids = np.repeat(
                np.asarray([pid for pid, _ in pid_runs], dtype=_I64),
                np.asarray([k for _, k in pid_runs], dtype=_I64),
            )
            chunks.append(
                RequestBatch(
                    pids,
                    _int_addr_column(addr_l),
                    np.asarray(slot_l, dtype=_I64),
                    None,
                    [(h, i, i + 1) for i, h in enumerate(handle_l)],
                )
            )
            pid_runs, addr_l, slot_l, handle_l = [], [], [], []

    for proc in procs:
        if proc._read_chunks:
            flush()
            chunks.extend(proc._read_chunks)
        k = len(proc._sc_raddr)
        if k:
            pid_runs.append((proc.pid, k))
            addr_l.extend(proc._sc_raddr)
            slot_l.extend(proc._sc_rslot)
            handle_l.extend(proc._sc_rhandle)
    flush()
    return RequestBatch.concat(chunks)


def _gather_write_batch(procs: List[Proc]) -> RequestBatch:
    """Freeze all processors' writes into one columnar batch (pid order)."""
    chunks: List[RequestBatch] = []
    pid_runs: List[Tuple[int, int]] = []  # (pid, count) — expanded by repeat
    addr_l: List[Any] = []
    slot_l: List[int] = []
    value_l: List[Any] = []

    def flush() -> None:
        nonlocal pid_runs, addr_l, slot_l, value_l
        if addr_l:
            pids = np.repeat(
                np.asarray([pid for pid, _ in pid_runs], dtype=_I64),
                np.asarray([k for _, k in pid_runs], dtype=_I64),
            )
            chunks.append(
                RequestBatch(
                    pids,
                    _int_addr_column(addr_l),
                    np.asarray(slot_l, dtype=_I64),
                    value_l,
                    [],
                )
            )
            pid_runs, addr_l, slot_l, value_l = [], [], [], []

    for proc in procs:
        if proc._write_chunks:
            flush()
            chunks.extend(proc._write_chunks)
        k = len(proc._sc_waddr)
        if k:
            pid_runs.append((proc.pid, k))
            addr_l.extend(proc._sc_waddr)
            slot_l.extend(proc._sc_wslot)
            value_l.extend(proc._sc_wvalue)
    flush()
    return RequestBatch.concat(chunks)


def _addr_group_stats(addr_col: Any) -> Tuple[int, Any]:
    """``(max multiplicity, distinct keys)`` of an address column.

    Integer-array columns use ``np.unique``; object columns use ``Counter``
    (a C-speed group-by) — both replace the historical per-request Python
    dict loop.
    """
    if isinstance(addr_col, np.ndarray):
        uniq, counts = np.unique(addr_col, return_counts=True)
        return int(counts.max()) if counts.size else 0, uniq
    c = Counter(addr_col)
    return (max(c.values()) if c else 0), c.keys()


def _common_key(keys_a: Any, keys_b: Any) -> Optional[Any]:
    """Any address present in both key collections, or ``None``."""
    if isinstance(keys_a, np.ndarray) and isinstance(keys_b, np.ndarray):
        both = np.intersect1d(keys_a, keys_b)
        return int(both[0]) if both.size else None
    set_a = set(keys_a.tolist()) if isinstance(keys_a, np.ndarray) else set(keys_a)
    set_b = set(keys_b.tolist()) if isinstance(keys_b, np.ndarray) else set(keys_b)
    both = set_a & set_b
    return next(iter(both)) if both else None


class Machine:
    """Abstract bulk-synchronous machine.

    Concrete machines (BSP(g), BSP(m), QSM(g), QSM(m), self-scheduling
    BSP(m)) implement :meth:`_price` and declare whether they expose shared
    memory.  The engine loop lives here.
    """

    #: True for QSM machines, False for BSP machines.
    uses_shared_memory: bool = False
    #: True when the machine enforces one injection per processor per slot.
    slot_limited: bool = False

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.shared_memory: MutableMapping[Any, Any] = {}
        #: Optional :class:`~repro.faults.FaultInjector`; ``None`` (the
        #: default) keeps the engine on the zero-overhead fault-free path.
        self.fault_injector: Optional[Any] = None
        # fused-path arenas: created on first fused run, reused across
        # supersteps and runs (steady-state runs allocate no new capacity)
        self._arenas: Optional[Tuple[SendArena, RequestArena, RequestArena]] = None
        self._arenas_busy = False

    def _acquire_arenas(self) -> Optional[Tuple[SendArena, RequestArena, RequestArena]]:
        """Hand out the machine's arenas for one run, or ``None`` when a
        run is already using them (nested runs fall back to the legacy
        gather path rather than sharing buffers)."""
        if self._arenas_busy:
            return None
        if self._arenas is None:
            self._arenas = (SendArena(), RequestArena(), RequestArena())
        self._arenas_busy = True
        for arena in self._arenas:
            arena.reset()
        return self._arenas

    def inject_faults(self, plan: Any) -> Any:
        """Attach a fault injector built from ``plan`` (a
        :class:`~repro.faults.FaultPlan`, or an existing injector) and
        return it.  Pass ``None`` to detach."""
        if plan is None:
            self.fault_injector = None
            return None
        if hasattr(plan, "apply"):
            self.fault_injector = plan
        else:
            from repro.faults.plan import FaultInjector

            self.fault_injector = FaultInjector(plan)
        return self.fault_injector

    def use_dense_memory(self, size: int) -> DenseSharedMemory:
        """Back the shared memory with a dense object array over the integer
        address space ``[0, size)`` — integer-addressed batch reads/writes
        then resolve via fancy indexing.  Returns the installed memory."""
        self.shared_memory = DenseSharedMemory(size)
        return self.shared_memory

    # ------------------------------------------------------------------
    # Hooks for concrete machines
    # ------------------------------------------------------------------
    def _price(self, record: SuperstepRecord) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        """Return ``(cost, breakdown, stats)`` for a frozen superstep."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared pricing helpers (all vectorized over the record's columns)
    # ------------------------------------------------------------------
    def _flit_slots(self, record: SuperstepRecord) -> np.ndarray:
        """Expand every message into per-flit injection slots.

        Also enforces, for slot-limited machines, that no processor injects
        two flits in the same slot ("each processor may initiate at most one
        message send" per step).

        Vectorized (see docs/performance.md): unit-size messages — the
        overwhelmingly common case — reuse the record's slot column with no
        copy; multi-flit messages expand via ``repeat``/``cumsum``; the
        slot-exclusivity check is duplicate detection on the ``(src, slot)``
        pairs.
        """
        batch = record.msg_batch
        if not batch.n:
            return np.zeros(0, dtype=_I64)
        flit_src, flit_slot = batch.flit_expansion()
        if self.slot_limited:
            self._check_slot_exclusive(
                flit_src, flit_slot, "injects two flits", f"superstep {record.index}"
            )
        return flit_slot

    @staticmethod
    def _check_slot_exclusive(
        pids: np.ndarray, slots: np.ndarray, verb: str, where: str
    ) -> None:
        """Raise :class:`ModelViolation` if any ``(pid, slot)`` pair repeats."""
        if slots.size < 2:
            return
        key = pids * (int(slots.max()) + 1) + slots
        order = np.sort(key)
        dup = np.nonzero(order[1:] == order[:-1])[0]
        if dup.size:
            k = int(order[dup[0]])
            span = int(slots.max()) + 1
            raise ModelViolation(f"processor {k // span} {verb} at slot {k % span} in {where}")

    def _request_slots(self, record: SuperstepRecord) -> np.ndarray:
        """Injection slots of all shared-memory requests (QSM machines)."""
        rb, wb = record.read_batch, record.write_batch
        if rb.n and wb.n:
            slots = np.concatenate([rb.slot, wb.slot])
            pids = np.concatenate([rb.pid, wb.pid])
        elif rb.n:
            slots, pids = rb.slot, rb.pid
        elif wb.n:
            slots, pids = wb.slot, wb.pid
        else:
            return np.zeros(0, dtype=_I64)
        if self.slot_limited:
            self._check_slot_exclusive(
                pids,
                slots,
                "issues two shared-memory requests",
                f"phase {record.index}",
            )
        return slots

    @staticmethod
    def _max_per_proc_sends_recvs(record: SuperstepRecord, p: int) -> Tuple[int, int]:
        """(max flits sent by one proc, max flits received by one proc)."""
        batch = record.msg_batch
        if not batch.n:
            return 0, 0
        s = np.bincount(batch.src, weights=batch.size)
        r = np.bincount(batch.dest, weights=batch.size)
        return int(s.max()), int(r.max())

    def _qsm_h(self, record: SuperstepRecord) -> int:
        """QSM ``h = max(1, max_i(r_i, w_i))``."""
        most = 0
        rb, wb = record.read_batch, record.write_batch
        if rb.n:
            most = int(np.bincount(rb.pid).max())
        if wb.n:
            most = max(most, int(np.bincount(wb.pid).max()))
        return max(1, most)

    def _qsm_contention(self, record: SuperstepRecord) -> int:
        """QSM maximum contention ``kappa``: max over locations of
        (#readers of x, #writers of x).  Also enforces the QSM rule that a
        location may see concurrent reads or concurrent writes in a phase,
        but not both."""
        rb, wb = record.read_batch, record.write_batch
        r_max = w_max = 0
        r_keys = w_keys = None
        if rb.n:
            r_max, r_keys = _addr_group_stats(rb.addr)
        if wb.n:
            w_max, w_keys = _addr_group_stats(wb.addr)
        if r_keys is not None and w_keys is not None:
            addr = _common_key(r_keys, w_keys)
            if addr is not None:
                raise ModelViolation(
                    f"location {addr!r} is both read and written in phase "
                    f"{record.index} (QSM forbids mixed concurrent access)"
                )
        return max(r_max, w_max)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *,
        args: Tuple = (),
        per_proc_args: Optional[Sequence[Tuple]] = None,
        nprocs: Optional[int] = None,
        max_supersteps: int = 1_000_000,
        max_time: Optional[float] = None,
        deadline: Optional[float] = None,
        audit: bool = False,
        fused: Optional[bool] = None,
    ) -> RunResult:
        """Execute ``program`` SPMD-style on all processors.

        Parameters
        ----------
        program:
            A generator function ``program(ctx, *args)``; each ``yield`` is a
            barrier.  A plain function is treated as a one-superstep program
            whose return value is the processor's result.
        args:
            Extra positional arguments passed to every processor.
        per_proc_args:
            Optional per-processor argument tuples (length ``p``), appended
            after ``args``.
        nprocs:
            Run on a prefix of processors (defaults to ``params.p``); the
            machine is still priced as a ``p``-processor machine.
        max_supersteps:
            Safety valve against non-terminating programs; exceeding it
            raises :class:`RunAborted` carrying the partial result.
        max_time:
            Optional wall-clock budget in seconds.  A run that is still
            going when the budget expires raises :class:`RunAborted` with
            everything computed so far in ``exc.partial``.
        deadline:
            Optional *absolute* ``time.monotonic()`` timestamp (the serving
            path's per-request deadline).  Combines with ``max_time`` —
            whichever expires first wins, and ``RunAborted.reason`` names
            it.  An already-expired deadline aborts before superstep 0:
            the check runs before program construction, so not even a
            plain-function program's body executes.
        audit:
            Debug mode: after every barrier, re-derive the superstep's
            price and check delivery invariants (flit conservation,
            engine-vs-evaluator cost reconciliation) via
            :mod:`repro.faults.audit`; violations raise
            :class:`~repro.faults.audit.AuditViolation`.
        fused:
            Use the fused arena barrier (operations append into
            preallocated machine-owned arenas; the freeze is a slice-copy).
            ``None`` (the default) defers to the process-wide default —
            see :func:`fused_default` / ``REPRO_FUSED``.  Both paths are
            bit-identical in model times, records and results.

        Returns
        -------
        RunResult
            Total time, per-superstep records, and per-processor results.

        Notes
        -----
        When a fault injector is attached (:meth:`inject_faults`), the
        machine still *prices* the sent batch — a dropped flit was injected
        and counts toward the slot load ``m_t`` — but *delivers* the
        injector's faulted batch.  Without an injector this hook is a
        single ``None`` check per superstep.
        """
        p = self.params.p if nprocs is None else nprocs
        if not (1 <= p <= self.params.p):
            raise ValueError(f"nprocs must be in [1, {self.params.p}], got {p}")
        if per_proc_args is not None and len(per_proc_args) != p:
            raise ValueError(
                f"per_proc_args has {len(per_proc_args)} entries for {p} processors"
            )

        # resolve the wall-clock budget(s) up front: an already-expired
        # deadline must abort before superstep 0 — and in particular before
        # program construction below, because plain-function programs
        # execute their whole body there, not in _run_loop
        deadline_at, deadline_reason = _resolve_deadline(max_time, deadline)
        if deadline_at is not None and _time.monotonic() > deadline_at:
            raise RunAborted(
                _deadline_message(deadline_reason, max_time, 0),
                partial=RunResult(params=self.params, records=[], results=[None] * p),
                superstep=0,
                reason=deadline_reason,
            )

        procs = [Proc(pid, p, self) for pid in range(p)]
        use_fused = _fused_default_flag if fused is None else bool(fused)
        arenas = self._acquire_arenas() if use_fused else None
        records: List[SuperstepRecord] = []
        try:
            if arenas is not None:
                # attach before program construction: plain-function
                # programs execute (and send) inside the loop below
                send_a, read_a, write_a = arenas
                for proc in procs:
                    proc._arena_send = send_a
                    proc._arena_read = read_a
                    proc._arena_write = write_a
            gens: List[Optional[Generator]] = []
            results: List[Any] = [None] * p
            for pid, proc in enumerate(procs):
                extra = tuple(per_proc_args[pid]) if per_proc_args is not None else ()
                out = program(proc, *args, *extra)
                if hasattr(out, "__next__"):
                    gens.append(out)
                else:
                    gens.append(None)
                    results[pid] = out

            alive = [g is not None for g in gens]
            injector = self.fault_injector
            auditor = None
            if audit:
                from repro.faults.audit import audit_record as auditor
            # observability: one module-global read per run; spans/metrics
            # only record already-priced costs, so model times stay
            # bit-identical
            tracer = _active_tracer()
            mreg = _active_metrics()
            ledger = _active_ledger()
            observe = run_span = None
            ledger_start = 0
            if tracer is not None or mreg is not None or ledger is not None:
                from repro.obs.instrument import make_superstep_observer

                if tracer is not None:
                    run_span = tracer.begin(
                        "run", cat="engine", track="machine",
                        machine=type(self).__name__, p=p,
                        m=self.params.m, L=self.params.L, g=self.params.g,
                    )
                    run_span.model_start = tracer.model_clock
                if ledger is not None:
                    ledger_start = ledger.begin_run(type(self).__name__, self.params)
                observe = make_superstep_observer(
                    tracer, mreg, self, p, run_span, fused=arenas is not None,
                    ledger=ledger,
                )
            try:
                self._run_loop(
                    procs, gens, results, records, alive, p,
                    max_supersteps, max_time, injector, auditor, deadline_at,
                    observe, arenas, deadline_reason,
                )
            finally:
                if run_span is not None:
                    tracer.end(
                        run_span,
                        model_dur=tracer.model_clock - run_span.model_start,
                        supersteps=len(records),
                    )
        finally:
            if arenas is not None:
                self._arenas_busy = False
        return RunResult(
            params=self.params, records=records, results=results,
            ledger=ledger.view(ledger_start) if ledger is not None else None,
        )

    def _run_loop(
        self,
        procs,
        gens,
        results,
        records,
        alive,
        p,
        max_supersteps,
        max_time,
        injector,
        auditor,
        deadline,
        observe,
        arenas=None,
        deadline_reason="max_time",
    ) -> None:
        """The barrier loop of :meth:`run` (split out so the run-level trace
        span can close on every exit path).  With ``arenas`` the superstep
        record is frozen from the machine's arenas (fused path); otherwise
        it is gathered from the processors' chunk lists."""
        index = 0
        first = True
        while True:
            if deadline is not None and _time.monotonic() > deadline:
                raise RunAborted(
                    _deadline_message(deadline_reason, max_time, index),
                    partial=RunResult(params=self.params, records=records, results=results),
                    superstep=index,
                    reason=deadline_reason,
                )
            halted = injector.halted(index) if injector is not None else None
            any_advanced = False
            for pid, gen in enumerate(gens):
                if gen is None or not alive[pid]:
                    continue
                any_advanced = True
                if halted is not None and pid in halted:
                    continue  # stalled/crashed: alive but frozen this superstep
                try:
                    next(gen)
                except StopIteration as stop:
                    results[pid] = stop.value
                    alive[pid] = False
            if not any_advanced and not first:
                break
            # observability phase stamps (wall clock only, never pricing):
            # freeze = t0..t1, price = t1..t2, deliver (incl. fault
            # injection + audit) = t2..end — skipped entirely when disabled
            t0 = _time.perf_counter() if observe is not None else 0.0
            if arenas is not None:
                send_a, read_a, write_a = arenas
                record = SuperstepRecord(
                    index=index,
                    work=[proc._work for proc in procs],
                    msg_batch=send_a.freeze(),
                    read_batch=read_a.freeze(with_values=False),
                    write_batch=write_a.freeze(with_values=True),
                )
                send_a.reset()
                read_a.reset()
                write_a.reset()
            else:
                record = SuperstepRecord(
                    index=index,
                    work=[proc._work for proc in procs],
                    msg_batch=_gather_msg_batch(procs),
                    read_batch=_gather_read_batch(procs),
                    write_batch=_gather_write_batch(procs),
                )
            still_running = any(alive)
            if not record.is_empty or still_running or first:
                t1 = _time.perf_counter() if observe is not None else 0.0
                cost, breakdown, stats = self._price(record)
                record.cost = cost
                record.breakdown = breakdown
                record.stats = stats
                records.append(record)
                t2 = _time.perf_counter() if observe is not None else 0.0
                delivered = None
                if injector is not None:
                    delivered, fault_stats = injector.apply(record.msg_batch, index, p)
                    if fault_stats:
                        record.stats.update(fault_stats)
                self._deliver(record, procs, msg_batch=delivered)
                if auditor is not None:
                    auditor(self, record, procs, delivered)
                if observe is not None:
                    observe(record, t0, t1, t2, _time.perf_counter())
            index += 1
            first = False
            for proc in procs:
                proc._reset_superstep()
            if not still_running:
                break
            if index >= max_supersteps:
                raise RunAborted(
                    f"program exceeded {max_supersteps} supersteps without finishing",
                    partial=RunResult(params=self.params, records=records, results=results),
                    superstep=index,
                    reason="max_supersteps",
                )

    def _deliver(
        self,
        record: SuperstepRecord,
        procs: List[Proc],
        msg_batch: Optional[MessageBatch] = None,
    ) -> None:
        """Deliver messages, resolve reads against pre-phase memory, then
        apply writes (Arbitrary rule: the last write request in record order
        wins — a legitimate instance of the model's arbitrary resolution).

        All three steps are columnar: delivery groups the destination
        column with one combined-key sort (the stable permutation of
        ``np.argsort(dest, kind="stable")`` computed ~7× faster, see
        :func:`repro.core.kernels.stable_group_order`) and hands each
        processor an :class:`InboxView` slice; reads resolve against the
        memory in one pass (one fancy-indexing operation on
        :class:`DenseSharedMemory`); writes apply in record order.

        ``msg_batch`` overrides the record's sent batch with the batch as
        transformed by a fault injector (drops/duplicates/reorders); the
        record itself — and hence the pricing — always reflects what was
        *sent*.
        """
        for proc in procs:
            proc.inbox = _EMPTY_INBOX
        batch = record.msg_batch if msg_batch is None else msg_batch
        if batch.n:
            nprocs = len(procs)
            counts = np.bincount(batch.dest, minlength=nprocs)
            order = stable_group_order(batch.dest, int(counts.size) - 1)
            bounds = np.empty(counts.size + 1, dtype=_I64)
            bounds[0] = 0
            np.cumsum(counts, out=bounds[1:])
            for d in np.nonzero(counts)[0].tolist():
                if d < nprocs:
                    procs[d].inbox = InboxView(batch, order[bounds[d] : bounds[d + 1]])
        rb = record.read_batch
        mem = self.shared_memory
        if rb.n:
            addrs = rb.addr
            if isinstance(mem, DenseSharedMemory) and isinstance(addrs, np.ndarray):
                values: Any = mem.take(addrs)
            else:
                get = mem.get
                values = [get(a) for a in rb.addr_list()]
            for handle, start, stop in rb.handles:
                handle._resolve_span(values, start, stop)
        wb = record.write_batch
        if wb.n:
            addrs = wb.addr
            if isinstance(mem, DenseSharedMemory) and isinstance(addrs, np.ndarray):
                mem.put(addrs, wb.value)
            else:
                vals = wb.value
                for i, a in enumerate(wb.addr_list()):
                    mem[a] = None if vals is None else vals[i]

    # ------------------------------------------------------------------
    def time(self, program: Callable[..., Any], **kwargs) -> float:
        """Convenience: run and return only the total model time."""
        return self.run(program, **kwargs).time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.params})"
