"""Bulk-synchronous SPMD execution engine.

Programs are written in an mpi4py-like SPMD style: a *program* is a Python
generator function ``program(ctx, ...)`` executed once per processor.  Each
``yield`` is a barrier — the end of a BSP superstep / QSM phase.  Between
yields the program calls methods on its :class:`Proc` context:

* ``ctx.send(dest, payload, size=1, slot=None)`` — point-to-point message
  (BSP machines).  ``slot`` is the injection time-slot within the superstep;
  globally-limited machines price slot congestion, locally-limited machines
  ignore slots.
* ``ctx.read(addr)`` / ``ctx.write(addr, value)`` — shared memory (QSM
  machines).  A read returns a :class:`ReadHandle` whose ``.value`` becomes
  available only after the next ``yield`` (the QSM rule).
* ``ctx.work(amount)`` — charge local computation.
* ``ctx.inbox`` — messages delivered at the last barrier.

At every barrier the engine freezes the superstep into a
:class:`~repro.core.events.SuperstepRecord`, asks the concrete machine to
price it, delivers messages, resolves read handles and applies writes.  The
run's total time is the sum of superstep costs.

Timing note (globally-limited machines)
---------------------------------------
The paper defines the superstep charge ``c_m = sum_t f_m(m_t)``; since
``f_m(0) = 0``, a literal reading would make idle time-slots free, letting a
schedule stretch over an arbitrarily long span at no cost — contradicting the
analysis of Section 6, which counts the *span* of the injection schedule as
elapsed time ("the total number of sending steps required ... is at most
``max((1+eps)n/m, x_bar)``").  The engine therefore prices communication as

.. math:: T_{comm} = \\sum_{t=0}^{span-1} \\max(f_m(m_t), 1)

i.e. every time step elapses at least one unit, and overloaded steps cost
``f_m``.  For gap-free schedules this equals the paper's ``c_m`` exactly; the
literal ``c_m`` is also recorded in ``record.stats['c_m_paper']``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import (
    CostBreakdown,
    Message,
    ReadRequest,
    SuperstepRecord,
    WriteRequest,
)
from repro.core.params import MachineParams

__all__ = [
    "ModelViolation",
    "ProgramError",
    "ReadHandle",
    "Proc",
    "Machine",
    "RunResult",
]


class ModelViolation(Exception):
    """The program broke a rule of the machine model (e.g. two injections by
    one processor in the same time slot of a globally-limited machine, or
    concurrent reads *and* writes to one QSM location in a single phase)."""


class ProgramError(Exception):
    """The SPMD program misused the engine API (e.g. reading a
    :class:`ReadHandle` before the barrier that resolves it)."""


_UNRESOLVED = object()


class ReadHandle:
    """Deferred result of a QSM shared-memory read.

    The value is installed by the engine at the barrier; touching ``.value``
    earlier raises :class:`ProgramError`, which is exactly the QSM rule that
    "the value returned by a shared-memory read can only be used in a
    subsequent phase".
    """

    __slots__ = ("_value", "addr")

    def __init__(self, addr: Any) -> None:
        self.addr = addr
        self._value = _UNRESOLVED

    @property
    def value(self) -> Any:
        if self._value is _UNRESOLVED:
            raise ProgramError(
                f"read of {self.addr!r} not yet resolved: QSM read values are "
                "available only after the next phase barrier (yield)"
            )
        return self._value

    @property
    def resolved(self) -> bool:
        return self._value is not _UNRESOLVED

    def _resolve(self, value: Any) -> None:
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = repr(self._value) if self.resolved else "<pending>"
        return f"ReadHandle(addr={self.addr!r}, value={state})"


class Proc:
    """Per-processor execution context handed to SPMD programs."""

    def __init__(self, pid: int, nprocs: int, machine: "Machine") -> None:
        self.pid = pid
        self.nprocs = nprocs
        self._machine = machine
        self.inbox: List[Message] = []
        self._reset_superstep()

    # -- engine bookkeeping ---------------------------------------------------
    def _reset_superstep(self) -> None:
        self._work = 0.0
        self._sends: List[Message] = []
        self._reads: List[ReadRequest] = []
        self._writes: List[WriteRequest] = []
        self._next_slot = 0
        self._stagger_k = 0

    def _auto_slot(self, size: int) -> int:
        slot = self._next_slot
        self._next_slot += size
        return slot

    def _bump_slot(self, slot: int, size: int) -> None:
        self._next_slot = max(self._next_slot, slot + size)

    def stagger_slot(self, k: Optional[int] = None) -> Optional[int]:
        """Injection slot for this processor's ``k``-th *staggered* request.

        This is the grouping emulation that opens Section 4 of the paper:
        the ``p`` processors are partitioned into ``ceil(p/m)`` groups of at
        most ``m``, each communication round is subdivided into one sub-slot
        per group, and a processor's ``k``-th request goes to sub-slot
        ``k * ceil(p/m) + (pid // m)``.  As long as every processor issues at
        most one request per round, no slot ever exceeds ``m`` injections,
        so a QSM(g)/BSP(g) program transliterates onto the globally-limited
        machine without overload penalty.

        ``k`` defaults to an internal per-superstep counter.  On machines
        without an aggregate bandwidth parameter the result is ``None``
        (slots are ignored there anyway).
        """
        if k is None:
            k = self._stagger_k
            self._stagger_k += 1
        m = self._machine.params.m
        if m is None:
            return None
        groups = -(-self.nprocs // m)  # ceil(p/m)
        return k * groups + self.pid // m

    # -- program API ------------------------------------------------------------
    def work(self, amount: float = 1.0) -> None:
        """Charge ``amount`` units of local computation this superstep."""
        if amount < 0:
            raise ProgramError(f"work amount must be >= 0, got {amount}")
        self._work += amount

    def send(
        self,
        dest: int,
        payload: Any = None,
        *,
        size: int = 1,
        slot: Optional[int] = None,
        consecutive: bool = True,
    ) -> None:
        """Send a message of ``size`` flits to processor ``dest``.

        ``slot`` pins the injection time-slot of the first flit within this
        superstep; by default flits are injected in the processor's next free
        slots.  Locally-limited machines ignore slots entirely.
        """
        if self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a shared-memory machine; "
                "use read()/write(), not send()"
            )
        if not (0 <= dest < self.nprocs):
            raise ProgramError(
                f"destination {dest} out of range for {self.nprocs} processors"
            )
        if slot is None:
            slot = self._auto_slot(size)
        else:
            self._bump_slot(slot, size)
        self._sends.append(
            Message(
                src=self.pid,
                dest=dest,
                payload=payload,
                size=size,
                slot=slot,
                consecutive=consecutive,
            )
        )

    def read(self, addr: Any, *, slot: Optional[int] = None) -> ReadHandle:
        """Issue a QSM shared-memory read; value available after the barrier."""
        if not self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a message-passing machine; "
                "use send()/inbox, not read()/write()"
            )
        if slot is None:
            slot = self._auto_slot(1)
        else:
            self._bump_slot(slot, 1)
        handle = ReadHandle(addr)
        self._reads.append(ReadRequest(pid=self.pid, addr=addr, slot=slot, handle=handle))
        return handle

    def write(self, addr: Any, value: Any, *, slot: Optional[int] = None) -> None:
        """Issue a QSM shared-memory write, visible from the next phase."""
        if not self._machine.uses_shared_memory:
            raise ProgramError(
                f"{type(self._machine).__name__} is a message-passing machine; "
                "use send()/inbox, not read()/write()"
            )
        if slot is None:
            slot = self._auto_slot(1)
        else:
            self._bump_slot(slot, 1)
        self._writes.append(WriteRequest(pid=self.pid, addr=addr, value=value, slot=slot))

    def receive(self) -> List[Message]:
        """Return and clear the messages delivered at the last barrier."""
        msgs, self.inbox = self.inbox, []
        return msgs


@dataclass
class RunResult:
    """Outcome of running one SPMD program on a machine."""

    params: MachineParams
    records: List[SuperstepRecord]
    results: List[Any]

    @property
    def time(self) -> float:
        """Total model time: sum of superstep costs."""
        return sum(r.cost for r in self.records)

    @property
    def supersteps(self) -> int:
        return len(self.records)

    @property
    def total_messages(self) -> int:
        return sum(r.n_messages for r in self.records)

    @property
    def total_flits(self) -> int:
        return sum(r.total_flits for r in self.records)

    def stat_sum(self, key: str) -> float:
        """Sum of a per-superstep stat across the run (missing = 0)."""
        return sum(r.stats.get(key, 0.0) for r in self.records)

    def stat_max(self, key: str) -> float:
        """Max of a per-superstep stat across the run (missing = 0)."""
        return max((r.stats.get(key, 0.0) for r in self.records), default=0.0)

    def dominant_components(self) -> Dict[str, float]:
        """Total time attributed to each cost component (by superstep
        dominance), useful for the benchmark harness's decompositions."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.breakdown.dominant()] = out.get(r.breakdown.dominant(), 0.0) + r.cost
        return out


class Machine:
    """Abstract bulk-synchronous machine.

    Concrete machines (BSP(g), BSP(m), QSM(g), QSM(m), self-scheduling
    BSP(m)) implement :meth:`_price` and declare whether they expose shared
    memory.  The engine loop lives here.
    """

    #: True for QSM machines, False for BSP machines.
    uses_shared_memory: bool = False
    #: True when the machine enforces one injection per processor per slot.
    slot_limited: bool = False

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.shared_memory: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Hooks for concrete machines
    # ------------------------------------------------------------------
    def _price(self, record: SuperstepRecord) -> Tuple[float, CostBreakdown, Dict[str, float]]:
        """Return ``(cost, breakdown, stats)`` for a frozen superstep."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared pricing helpers
    # ------------------------------------------------------------------
    def _flit_slots(self, record: SuperstepRecord) -> np.ndarray:
        """Expand every message into per-flit injection slots.

        Also enforces, for slot-limited machines, that no processor injects
        two flits in the same slot ("each processor may initiate at most one
        message send" per step).

        Profile-guided shape (see docs/performance.md): unit-size messages
        — the overwhelmingly common case — take a list-append fast path
        instead of one ``np.arange`` per message.
        """
        if not record.messages:
            return np.zeros(0, dtype=np.int64)
        slots: List[int] = []
        check = self.slot_limited
        per_proc: Dict[int, set] = {}
        for msg in record.messages:
            start = msg.slot if msg.slot is not None else 0
            if msg.size == 1:
                flit_iter = (start,)
            elif msg.consecutive:
                flit_iter = range(start, start + msg.size)
            else:
                flit_iter = (start,) * msg.size
            slots.extend(flit_iter)
            if check:
                seen = per_proc.setdefault(msg.src, set())
                for s in flit_iter:
                    if s in seen:
                        raise ModelViolation(
                            f"processor {msg.src} injects two flits at slot {s} "
                            f"in superstep {record.index}"
                        )
                    seen.add(s)
        return np.asarray(slots, dtype=np.int64)

    def _request_slots(self, record: SuperstepRecord) -> np.ndarray:
        """Injection slots of all shared-memory requests (QSM machines)."""
        slots = [r.slot or 0 for r in record.reads] + [w.slot or 0 for w in record.writes]
        if self.slot_limited:
            per_proc: Dict[int, set] = {}
            reqs: Iterable = list(record.reads) + list(record.writes)
            for req in reqs:
                seen = per_proc.setdefault(req.pid, set())
                s = req.slot or 0
                if s in seen:
                    raise ModelViolation(
                        f"processor {req.pid} issues two shared-memory requests "
                        f"at slot {s} in phase {record.index}"
                    )
                seen.add(s)
        return np.asarray(slots, dtype=np.int64)

    @staticmethod
    def _max_per_proc_sends_recvs(record: SuperstepRecord, p: int) -> Tuple[int, int]:
        """(max flits sent by one proc, max flits received by one proc)."""
        s = record.sends_by_proc(p)
        r = record.recvs_by_proc(p)
        return (max(s) if s else 0, max(r) if r else 0)

    def _qsm_h(self, record: SuperstepRecord) -> int:
        """QSM ``h = max(1, max_i(r_i, w_i))``."""
        r_counts: Dict[int, int] = {}
        w_counts: Dict[int, int] = {}
        for req in record.reads:
            r_counts[req.pid] = r_counts.get(req.pid, 0) + 1
        for req in record.writes:
            w_counts[req.pid] = w_counts.get(req.pid, 0) + 1
        most = 0
        if r_counts:
            most = max(most, max(r_counts.values()))
        if w_counts:
            most = max(most, max(w_counts.values()))
        return max(1, most)

    def _qsm_contention(self, record: SuperstepRecord) -> int:
        """QSM maximum contention ``kappa``: max over locations of
        (#readers of x, #writers of x).  Also enforces the QSM rule that a
        location may see concurrent reads or concurrent writes in a phase,
        but not both."""
        readers: Dict[Any, int] = {}
        writers: Dict[Any, int] = {}
        for req in record.reads:
            readers[req.addr] = readers.get(req.addr, 0) + 1
        for req in record.writes:
            writers[req.addr] = writers.get(req.addr, 0) + 1
        both = set(readers) & set(writers)
        if both:
            addr = next(iter(both))
            raise ModelViolation(
                f"location {addr!r} is both read and written in phase "
                f"{record.index} (QSM forbids mixed concurrent access)"
            )
        kappa = 0
        if readers:
            kappa = max(kappa, max(readers.values()))
        if writers:
            kappa = max(kappa, max(writers.values()))
        return kappa

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        *,
        args: Tuple = (),
        per_proc_args: Optional[Sequence[Tuple]] = None,
        nprocs: Optional[int] = None,
        max_supersteps: int = 1_000_000,
    ) -> RunResult:
        """Execute ``program`` SPMD-style on all processors.

        Parameters
        ----------
        program:
            A generator function ``program(ctx, *args)``; each ``yield`` is a
            barrier.  A plain function is treated as a one-superstep program
            whose return value is the processor's result.
        args:
            Extra positional arguments passed to every processor.
        per_proc_args:
            Optional per-processor argument tuples (length ``p``), appended
            after ``args``.
        nprocs:
            Run on a prefix of processors (defaults to ``params.p``); the
            machine is still priced as a ``p``-processor machine.
        max_supersteps:
            Safety valve against non-terminating programs.

        Returns
        -------
        RunResult
            Total time, per-superstep records, and per-processor results.
        """
        p = self.params.p if nprocs is None else nprocs
        if not (1 <= p <= self.params.p):
            raise ValueError(f"nprocs must be in [1, {self.params.p}], got {p}")
        if per_proc_args is not None and len(per_proc_args) != p:
            raise ValueError(
                f"per_proc_args has {len(per_proc_args)} entries for {p} processors"
            )

        procs = [Proc(pid, p, self) for pid in range(p)]
        gens: List[Optional[Generator]] = []
        results: List[Any] = [None] * p
        immediate_done = [False] * p
        for pid, proc in enumerate(procs):
            extra = tuple(per_proc_args[pid]) if per_proc_args is not None else ()
            out = program(proc, *args, *extra)
            if hasattr(out, "__next__"):
                gens.append(out)
            else:
                gens.append(None)
                results[pid] = out
                immediate_done[pid] = True

        records: List[SuperstepRecord] = []
        alive = [g is not None for g in gens]
        index = 0
        first = True
        while True:
            any_advanced = False
            for pid, gen in enumerate(gens):
                if gen is None or not alive[pid]:
                    continue
                any_advanced = True
                try:
                    next(gen)
                except StopIteration as stop:
                    results[pid] = stop.value
                    alive[pid] = False
            if not any_advanced and not first:
                break
            record = SuperstepRecord(
                index=index,
                work=[proc._work for proc in procs],
                messages=[msg for proc in procs for msg in proc._sends],
                reads=[r for proc in procs for r in proc._reads],
                writes=[w for proc in procs for w in proc._writes],
            )
            empty = (
                not record.messages
                and not record.reads
                and not record.writes
                and all(w == 0 for w in record.work)
            )
            still_running = any(alive)
            if not empty or still_running or first:
                cost, breakdown, stats = self._price(record)
                record.cost = cost
                record.breakdown = breakdown
                record.stats = stats
                records.append(record)
                self._deliver(record, procs)
            index += 1
            first = False
            for proc in procs:
                proc._reset_superstep()
            if not still_running:
                break
            if index >= max_supersteps:
                raise ProgramError(
                    f"program exceeded {max_supersteps} supersteps without finishing"
                )
        return RunResult(params=self.params, records=records, results=results)

    def _deliver(self, record: SuperstepRecord, procs: List[Proc]) -> None:
        """Deliver messages, resolve reads against pre-phase memory, then
        apply writes (Arbitrary rule: the last write request in record order
        wins — a legitimate instance of the model's arbitrary resolution)."""
        for proc in procs:
            proc.inbox = []
        for msg in record.messages:
            if msg.dest < len(procs):
                procs[msg.dest].inbox.append(msg)
        if record.reads:
            for req in record.reads:
                req.handle._resolve(self.shared_memory.get(req.addr))
        for wreq in record.writes:
            self.shared_memory[wreq.addr] = wreq.value

    # ------------------------------------------------------------------
    def time(self, program: Callable[..., Any], **kwargs) -> float:
        """Convenience: run and return only the total model time."""
        return self.run(program, **kwargs).time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.params})"
