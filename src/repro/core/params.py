"""Machine parameter records for the four bandwidth models.

The paper compares models that share a *machine* (p processors, latency L)
but differ in how network bandwidth is charged:

* **locally-limited** — a per-processor gap ``g``: a processor that sends or
  receives ``h`` messages in a superstep pays ``g * h``;
* **globally-limited** — an aggregate parameter ``m``: the network absorbs up
  to ``m`` message injections per time slot; slot ``t`` with ``m_t`` messages
  costs ``f_m(m_t)`` where ``f_m`` is a pluggable penalty function.

For apples-to-apples comparisons the paper fixes the *aggregate* bandwidth of
both kinds of machine: ``p * (1/g) = m``, i.e. ``g = p / m``.
:func:`MachineParams.matched_pair` constructs such a pair.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.util.validation import check_finite, check_positive, check_nonnegative

__all__ = ["MachineParams"]


@dataclass(frozen=True)
class MachineParams:
    """Immutable record of model parameters shared by all machines.

    Parameters
    ----------
    p:
        Number of processors (``p >= 1``).
    g:
        Per-processor bandwidth gap for locally-limited models
        (``g >= 1``; 1 means bandwidth-unlimited).  Globally-limited
        machines ignore it.
    m:
        Aggregate bandwidth for globally-limited models (``1 <= m``).
        Locally-limited machines ignore it.  ``None`` means "not a
        globally-limited machine" and any attempt to read :attr:`m`
        through :meth:`require_m` raises.
    L:
        BSP periodicity: worst-case message latency plus barrier cost.
        Every BSP superstep costs at least ``L``.  QSM has no ``L`` term.
    o:
        Per-message start-up overhead (LOGP-style).  0 by default; used by
        the long-message scheduling extension of Section 6.1.
    word_bits:
        ``w`` of Section 5 — the number of bits in a memory cell, used by
        the leader-recognition bounds.
    """

    p: int
    g: float = 1.0
    m: Optional[int] = None
    L: float = 1.0
    o: float = 0.0
    word_bits: int = 64

    def __post_init__(self) -> None:
        if isinstance(self.p, bool) or not isinstance(self.p, int):
            raise TypeError(f"p must be an int, got {type(self.p).__name__}")
        check_positive("p", self.p)
        check_finite("g", self.g)
        if self.g < 1.0:
            raise ValueError(f"gap g must be >= 1, got {self.g}")
        if self.m is not None:
            if isinstance(self.m, bool) or not isinstance(self.m, int):
                raise TypeError(f"m must be an int or None, got {type(self.m).__name__}")
            check_positive("m", self.m)
        # L and o reject nan/inf explicitly: nan fails every comparison, so
        # a plain `> 0` guard silently admits it, and an infinite latency or
        # overhead turns every superstep cost into inf downstream
        check_finite("L", self.L)
        check_positive("L", self.L)
        check_finite("o", self.o)
        check_nonnegative("o", self.o)
        check_positive("word_bits", self.word_bits)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def require_m(self) -> int:
        """Return ``m`` or raise when the machine is not globally limited."""
        if self.m is None:
            raise ValueError("this machine has no aggregate bandwidth parameter m")
        return self.m

    @property
    def aggregate_bandwidth_local(self) -> float:
        """Aggregate bandwidth of the locally-limited machine: ``p / g``."""
        return self.p / self.g

    @property
    def implied_gap(self) -> float:
        """The gap ``g = p / m`` a locally-limited machine would need to
        match this machine's aggregate bandwidth."""
        return self.p / self.require_m()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def matched_pair(
        p: int, m: int, L: float = 1.0, o: float = 0.0, word_bits: int = 64
    ) -> Tuple["MachineParams", "MachineParams"]:
        """Build a (locally-limited, globally-limited) parameter pair with
        equal aggregate bandwidth ``p/g == m`` — the paper's comparison
        setting.

        Returns ``(local, global)`` where ``local.g == p/m`` and
        ``global.m == m``.
        """
        if m > p:
            raise ValueError(f"matched pair needs m <= p, got m={m} > p={p}")
        g = p / m
        local = MachineParams(p=p, g=g, m=None, L=L, o=o, word_bits=word_bits)
        global_ = MachineParams(p=p, g=1.0, m=m, L=L, o=o, word_bits=word_bits)
        return local, global_

    def with_(self, **changes) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
