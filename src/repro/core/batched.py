"""Batched multi-trial replay: one recorded schedule, B parameter points.

Every Table-1/Section-5/Section-6 experiment is a sweep — the *same*
straight-line program priced under many ``(g, m, L, penalty)`` points.
:meth:`~repro.core.compiled.CompiledProgram.replay` already skips the
trampoline, but a sweep still re-derives each superstep's *structure*
(max work, per-processor ``h``, the slot-injection histogram, QSM
contention) once per trial even though it is parameter-independent.
:func:`replay_batch` hoists that work out of the trial loop: each frame's
structure summary is computed once, the pricing functions'
``price_*_batch`` variants (:mod:`repro.models.pricing`) price it under
all B parameter points with one histogram pass per penalty family, and
shared-memory writes are applied per machine exactly as a sequential
replay would.

Bit-identity contract
---------------------
``replay_batch(compiled, machines)[b]`` equals
``compiled.replay(machines[b])`` exactly — model times, cost breakdowns
and stats dicts (values *and* key insertion order).  The structure
summary helpers are the very methods the sequential ``_price`` adapters
call, and the batched kernels reuse the sequential kernels per distinct
parameter value (see :func:`repro.core.kernels.slot_charge_stats_batched`),
so no new floating-point path exists to drift.  The contract is gated by
``tests/test_batched_replay.py`` in both Numba configurations, the same
way fused≡legacy execution was gated when the fused path landed.

When batching engages
---------------------
All machines must be instances of the *same* concrete model class with a
batched pricer registered (the five paper models qualify), recorded and
replayed on the same memory kind, with enough processors and no fault
injector — the same validity rules as sequential replay.  When a tracer
or metrics registry is active, or the model has no batched pricer, the
call transparently degrades to sequential replays (observability hooks
are per-run, so a fused pass cannot emit faithful per-trial spans).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Type

import numpy as np

from repro.core.compiled import CompiledProgram, _check_no_injector
from repro.core.engine import Machine, RunResult
from repro.core.events import SuperstepRecord
from repro.obs.metrics import active_metrics as _active_metrics
from repro.obs.tracer import active_tracer as _active_tracer

__all__ = ["replay_batch", "supports_batched_replay"]


def _work_max(work: List[float]) -> float:
    return max(work) if work else 0.0


def _msg_h(machine: Machine, probe: SuperstepRecord) -> int:
    s_max, r_max = machine._max_per_proc_sends_recvs(probe, machine.params.p)
    return max(s_max, r_max)


def _bsp_g_frame(machines: Sequence[Machine], probe: SuperstepRecord):
    from repro.models.pricing import price_bsp_g_batch

    w = _work_max(probe.work)
    h = _msg_h(machines[0], probe)
    return price_bsp_g_batch(
        w,
        h,
        probe.total_flits,
        [mach.params.g for mach in machines],
        [mach.params.L for mach in machines],
    )


def _bsp_m_frame(machines: Sequence[Machine], probe: SuperstepRecord):
    from repro.models.pricing import price_bsp_m_batch

    w = _work_max(probe.work)
    h = _msg_h(machines[0], probe)
    counts = np.bincount(machines[0]._flit_slots(probe))
    return price_bsp_m_batch(
        w,
        h,
        probe.total_flits,
        counts,
        [mach.params.require_m() for mach in machines],
        [mach.penalty for mach in machines],
        [mach.params.L for mach in machines],
    )


def _qsm_g_frame(machines: Sequence[Machine], probe: SuperstepRecord):
    from repro.models.pricing import price_qsm_g_batch

    w = _work_max(probe.work)
    h = machines[0]._qsm_h(probe)
    kappa = machines[0]._qsm_contention(probe)
    return price_qsm_g_batch(
        w,
        h,
        kappa,
        probe.n_reads + probe.n_writes,
        [mach.params.g for mach in machines],
    )


def _qsm_m_frame(machines: Sequence[Machine], probe: SuperstepRecord):
    from repro.models.pricing import price_qsm_m_batch

    w = _work_max(probe.work)
    h = machines[0]._qsm_h(probe)
    kappa = machines[0]._qsm_contention(probe)
    counts = np.bincount(machines[0]._request_slots(probe))
    return price_qsm_m_batch(
        w,
        h,
        kappa,
        probe.n_reads + probe.n_writes,
        counts,
        [mach.params.require_m() for mach in machines],
        [mach.penalty for mach in machines],
    )


def _self_scheduling_frame(machines: Sequence[Machine], probe: SuperstepRecord):
    from repro.models.pricing import price_self_scheduling_batch

    w = _work_max(probe.work)
    h = _msg_h(machines[0], probe)
    return price_self_scheduling_batch(
        w,
        h,
        probe.total_flits,
        [mach.params.require_m() for mach in machines],
        [mach.params.L for mach in machines],
    )


_PRICERS: Dict[Type[Machine], Callable] = {}


def _batch_pricers() -> Dict[Type[Machine], Callable]:
    """Lazy model-class -> frame-pricer registry (keyed by *exact* type:
    a subclass may override ``_price``, so it must not inherit a batched
    pricer it never asked for)."""
    if not _PRICERS:
        from repro.models.bsp_g import BSPg
        from repro.models.bsp_m import BSPm
        from repro.models.qsm_g import QSMg
        from repro.models.qsm_m import QSMm
        from repro.models.self_scheduling import SelfSchedulingBSPm

        _PRICERS.update(
            {
                BSPg: _bsp_g_frame,
                BSPm: _bsp_m_frame,
                QSMg: _qsm_g_frame,
                QSMm: _qsm_m_frame,
                SelfSchedulingBSPm: _self_scheduling_frame,
            }
        )
    return _PRICERS


def supports_batched_replay(machine: Machine) -> bool:
    """True when ``machine``'s concrete class has a batched frame pricer."""
    return type(machine) in _batch_pricers()


def replay_batch(
    compiled: CompiledProgram, machines: Sequence[Machine]
) -> List[RunResult]:
    """Replay ``compiled`` on every machine in one fused pass.

    Element ``b`` of the returned list is bit-identical to
    ``compiled.replay(machines[b])`` (see module docstring).  All machines
    must share one concrete model class; each is validated with the same
    rules as sequential replay before any pricing or write application
    happens.  Falls back to per-machine sequential replays when a tracer
    or metrics registry is active or the class has no batched pricer.
    """
    machines = list(machines)
    if not machines:
        return []
    cls = type(machines[0])
    for mach in machines:
        if type(mach) is not cls:
            raise ValueError(
                "replay_batch needs machines of one model class; got "
                f"{cls.__name__} and {type(mach).__name__}"
            )
        if mach.uses_shared_memory != compiled.uses_shared_memory:
            raise ValueError(
                "compiled program was recorded on a "
                f"{'shared-memory' if compiled.uses_shared_memory else 'message-passing'}"
                f" machine; {type(mach).__name__} is not one"
            )
        if mach.params.p < compiled.p:
            raise ValueError(
                f"machine has {mach.params.p} processors, recorded "
                f"program used {compiled.p}"
            )
        _check_no_injector(mach, "replay")
    pricer = _batch_pricers().get(cls)
    if (
        pricer is None
        or len(machines) == 1
        or _active_tracer() is not None
        or _active_metrics() is not None
    ):
        return [compiled.replay(mach) for mach in machines]
    B = len(machines)
    records: List[List[SuperstepRecord]] = [[] for _ in range(B)]
    for index, (work, msg_b, read_b, write_b) in enumerate(compiled.frames):
        probe = SuperstepRecord(
            index=index,
            work=work,
            msg_batch=msg_b,
            read_batch=read_b,
            write_batch=write_b,
        )
        priced = pricer(machines, probe)
        # the probe doubles as machine 0's record; the rest alias the same
        # frozen batches, exactly as sequential replays of one compilation do
        probe.cost, probe.breakdown, probe.stats = priced[0]
        records[0].append(probe)
        for b in range(1, B):
            rec = SuperstepRecord(
                index=index,
                work=work,
                msg_batch=msg_b,
                read_batch=read_b,
                write_batch=write_b,
            )
            rec.cost, rec.breakdown, rec.stats = priced[b]
            records[b].append(rec)
        if write_b.n:
            for mach in machines:
                CompiledProgram._apply_writes(mach, write_b)
    return [
        RunResult(
            params=mach.params,
            records=records[b],
            results=list(compiled.results),
        )
        for b, mach in enumerate(machines)
    ]
