"""Compiled-superstep mode: record a program's barrier schedule, replay it.

A bulk-synchronous program whose communication pattern has **no
data-dependent control flow between barriers** — every run sends the same
messages in the same slots regardless of what arrives — is fully described
by its sequence of frozen :class:`~repro.core.events.SuperstepRecord`
batches.  For such *straight-line* programs the coroutine trampoline in
:mod:`repro.core.engine` is pure overhead after the first run: this module
records the superstep schedule once and replays it as a batch-at-a-time
loop (freeze is free, pricing and write application are the only work),
skipping generator dispatch, per-call validation and arena assembly
entirely.

Which programs qualify
----------------------
* the h-relation routing program of :mod:`repro.scheduling.execute` (one
  ``send_many`` per processor, one barrier — ``execute_schedule`` applies
  the equivalent direct fast path automatically, without even a recording
  run);
* :func:`repro.algorithms.total_exchange.run_total_exchange` (a fixed
  latin-square schedule, via ``execute_schedule``);
* any fixed-schedule QSM phase program whose addresses don't depend on
  read values.

Programs that do **not** qualify — and must stay on the trampoline — are
those whose sends depend on received data: the sample-sort pivot exchange,
``h_relation``'s two-phase balancing (phase 2 routes what phase 1
delivered), the ``pram_algorithms`` pointer-jumping loops (each round
reads the previous round's links), and anything driven by
:mod:`repro.faults` retries.  Replaying those would freeze one particular
execution's data flow, not the algorithm.

Validity across machines
------------------------
``replay(machine)`` re-prices the recorded schedule under ``machine``'s
cost model, so a single recording supports penalty-family and ``L``/``g``
ablations (the sweep engine's main loop).  Replaying on a machine with a
*different* aggregate bandwidth ``m`` is only meaningful when the recorded
program did not consult ``m`` when placing slots (``Proc.stagger_slot``
does); slot-exclusivity is still re-checked by the target machine's
pricing, so an invalid transplant raises
:class:`~repro.core.engine.ModelViolation` rather than mispricing.
Fault injection is refused on both record and replay: the recorded results
reflect a fault-free execution, and replaying cannot re-run the program's
reaction to faulted inboxes.
"""

from __future__ import annotations

import time as _time
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import DenseSharedMemory, Machine, RunResult
from repro.core.events import RequestBatch, SuperstepRecord
from repro.obs.metrics import active_metrics as _active_metrics
from repro.obs.tracer import active_tracer as _active_tracer

__all__ = ["CompiledProgram", "compile_program"]


def _check_no_injector(machine: Machine, action: str) -> None:
    injector = getattr(machine, "fault_injector", None)
    if injector is not None and not getattr(injector.plan, "is_null", False):
        raise ValueError(
            f"cannot {action} a compiled superstep schedule with an active "
            "fault injector: recorded supersteps replay what a fault-free "
            "execution sent, so the program's reaction to faulted inboxes "
            "cannot be reproduced (run the program on the trampoline instead)"
        )


class CompiledProgram:
    """A recorded superstep schedule plus the run's per-processor results.

    Build with :meth:`record` (or :func:`compile_program`); re-execute with
    :meth:`replay`.  Frames share the recording run's frozen batches —
    records are immutable once a run returns, so replays on any number of
    machines alias them safely.
    """

    __slots__ = ("frames", "results", "p", "uses_shared_memory")

    def __init__(
        self,
        frames: Sequence[Tuple[List[float], Any, Any, Any]],
        results: List[Any],
        p: int,
        uses_shared_memory: bool,
    ) -> None:
        self.frames = list(frames)
        self.results = results
        self.p = p
        self.uses_shared_memory = uses_shared_memory

    # ------------------------------------------------------------------
    @classmethod
    def record(
        cls,
        machine: Machine,
        program,
        *,
        args: Tuple = (),
        per_proc_args: Optional[Sequence[Tuple]] = None,
        nprocs: Optional[int] = None,
    ) -> Tuple["CompiledProgram", RunResult]:
        """Run ``program`` once on ``machine`` and capture its schedule.

        Returns ``(compiled, result)`` — the result is the recording run's
        own :class:`RunResult`, so the caller pays no extra execution for
        the capture.
        """
        _check_no_injector(machine, "record")
        res = machine.run(
            program, args=args, per_proc_args=per_proc_args, nprocs=nprocs
        )
        p = machine.params.p if nprocs is None else nprocs
        frames = [
            (list(r.work), r.msg_batch, r.read_batch, r.write_batch)
            for r in res.records
        ]
        return cls(frames, res.results, p, machine.uses_shared_memory), res

    # ------------------------------------------------------------------
    def replay(self, machine: Machine) -> RunResult:
        """Re-execute the recorded schedule on ``machine``.

        Each frame is re-priced under ``machine``'s cost model and its
        writes are applied to ``machine``'s shared memory (so post-run
        memory state matches a real execution); message delivery and read
        resolution are skipped — there is no running program to receive
        them, and the recorded ``results`` already hold what the original
        processors returned.  Replaying on the recording machine
        reproduces its ``RunResult`` bit-identically.
        """
        if machine.uses_shared_memory != self.uses_shared_memory:
            raise ValueError(
                "compiled program was recorded on a "
                f"{'shared-memory' if self.uses_shared_memory else 'message-passing'}"
                f" machine; {type(machine).__name__} is not one"
            )
        if machine.params.p < self.p:
            raise ValueError(
                f"machine has {machine.params.p} processors, recorded "
                f"program used {self.p}"
            )
        _check_no_injector(machine, "replay")
        tracer = _active_tracer()
        mreg = _active_metrics()
        observe = run_span = None
        if tracer is not None or mreg is not None:
            from repro.obs.instrument import make_superstep_observer

            if tracer is not None:
                run_span = tracer.begin(
                    "replay", cat="engine", track="machine",
                    machine=type(machine).__name__, p=self.p,
                    m=machine.params.m, L=machine.params.L, g=machine.params.g,
                )
                run_span.model_start = tracer.model_clock
            observe = make_superstep_observer(
                tracer, mreg, machine, self.p, run_span, fused=True
            )
        records: List[SuperstepRecord] = []
        try:
            for index, (work, msg_b, read_b, write_b) in enumerate(self.frames):
                t0 = _time.perf_counter() if observe is not None else 0.0
                record = SuperstepRecord(
                    index=index,
                    work=work,
                    msg_batch=msg_b,
                    read_batch=read_b,
                    write_batch=write_b,
                )
                cost, breakdown, stats = machine._price(record)
                record.cost = cost
                record.breakdown = breakdown
                record.stats = stats
                records.append(record)
                self._apply_writes(machine, write_b)
                if observe is not None:
                    t1 = _time.perf_counter()
                    observe(record, t0, t1, t1, t1)
        finally:
            if run_span is not None:
                tracer.end(
                    run_span,
                    model_dur=tracer.model_clock - run_span.model_start,
                    supersteps=len(records),
                )
        return RunResult(
            params=machine.params, records=records, results=list(self.results)
        )

    @staticmethod
    def _apply_writes(machine: Machine, wb: RequestBatch) -> None:
        if not wb.n:
            return
        mem = machine.shared_memory
        if isinstance(mem, DenseSharedMemory) and isinstance(wb.addr, np.ndarray):
            mem.put(wb.addr, wb.value)
        else:
            vals = wb.value
            for i, a in enumerate(wb.addr_list()):
                mem[a] = None if vals is None else vals[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledProgram(p={self.p}, supersteps={len(self.frames)}, "
            f"shared_memory={self.uses_shared_memory})"
        )


def compile_program(
    machine: Machine,
    program,
    *,
    args: Tuple = (),
    per_proc_args: Optional[Sequence[Tuple]] = None,
    nprocs: Optional[int] = None,
) -> CompiledProgram:
    """Record ``program`` on ``machine`` and return the compiled schedule
    (discarding the recording run's result; use :meth:`CompiledProgram.record`
    to keep it)."""
    compiled, _ = CompiledProgram.record(
        machine, program, args=args, per_proc_args=per_proc_args, nprocs=nprocs
    )
    return compiled
