"""Event records produced by the bulk-synchronous engine.

The engine executes an SPMD program one superstep at a time.  During a
superstep each processor registers *operations* (message sends, shared-memory
reads/writes, local work); at the barrier the engine freezes them into a
:class:`SuperstepRecord`, prices it under the machine's cost metric, and
delivers the communication.  Records are retained on the
:class:`~repro.core.engine.RunResult` so benchmarks can decompose where time
went (work vs. bandwidth vs. latency vs. contention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Message",
    "ReadRequest",
    "WriteRequest",
    "SuperstepRecord",
    "CostBreakdown",
]


@dataclass
class Message:
    """A point-to-point message.

    ``size`` is the length in flits (1 for a fixed-size message).  ``slot``
    is the injection time-slot of the *first* flit within the superstep; the
    remaining flits occupy consecutive slots when ``consecutive`` is true
    (wormhole-style), and the engine treats each flit as one injection.
    """

    src: int
    dest: int
    payload: Any = None
    size: int = 1
    slot: Optional[int] = None
    consecutive: bool = True

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"message size must be >= 1, got {self.size}")
        if self.slot is not None and self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")


@dataclass
class ReadRequest:
    """A QSM shared-memory read issued in the current phase.

    ``handle`` is filled in by the engine at the barrier; programs access it
    via :class:`~repro.core.engine.ReadHandle` in the *next* phase, matching
    the QSM rule that a read's value is usable only in a subsequent phase.
    """

    pid: int
    addr: Any
    slot: Optional[int] = None
    handle: Any = None


@dataclass
class WriteRequest:
    """A QSM shared-memory write issued in the current phase."""

    pid: int
    addr: Any
    value: Any
    slot: Optional[int] = None


@dataclass
class CostBreakdown:
    """Components that fed a superstep's cost, all in model time units."""

    work: float = 0.0
    local_band: float = 0.0  # g*h (locally-limited) or h (globally-limited)
    global_band: float = 0.0  # c_m, or n/m for the self-scheduling metric
    latency: float = 0.0  # L (BSP only)
    contention: float = 0.0  # kappa (QSM only)

    def total(self) -> float:
        return max(
            self.work,
            self.local_band,
            self.global_band,
            self.latency,
            self.contention,
        )

    def dominant(self) -> str:
        """Name of the component that determined the cost (ties broken in
        declaration order)."""
        items = [
            ("work", self.work),
            ("local_band", self.local_band),
            ("global_band", self.global_band),
            ("latency", self.latency),
            ("contention", self.contention),
        ]
        best_name, best_val = items[0]
        for name, val in items[1:]:
            if val > best_val:
                best_name, best_val = name, val
        return best_name


@dataclass
class SuperstepRecord:
    """Everything a superstep did, plus its price.

    Attributes
    ----------
    index:
        0-based superstep number.
    work:
        Per-processor local work amounts.
    messages:
        All messages sent this superstep (BSP machines).
    reads / writes:
        All shared-memory requests (QSM machines).
    cost:
        The model time charged.
    breakdown:
        The components behind ``cost``.
    stats:
        Free-form metrics the cost model wants to expose (``h``, ``kappa``,
        ``c_m``, ``n``, max slot, overload count, ...).
    """

    index: int
    work: List[float]
    messages: List[Message] = field(default_factory=list)
    reads: List[ReadRequest] = field(default_factory=list)
    writes: List[WriteRequest] = field(default_factory=list)
    cost: float = 0.0
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)
    stats: Dict[str, float] = field(default_factory=dict)

    # -- convenience accessors -------------------------------------------------
    @property
    def n_messages(self) -> int:
        return len(self.messages)

    @property
    def total_flits(self) -> int:
        return sum(msg.size for msg in self.messages)

    def sends_by_proc(self, p: int) -> List[int]:
        """Number of flits sent by each processor."""
        out = [0] * p
        for msg in self.messages:
            out[msg.src] += msg.size
        return out

    def recvs_by_proc(self, p: int) -> List[int]:
        """Number of flits received by each processor."""
        out = [0] * p
        for msg in self.messages:
            out[msg.dest] += msg.size
        return out
