"""Event records produced by the bulk-synchronous engine.

The engine executes an SPMD program one superstep at a time.  During a
superstep each processor registers *operations* (message sends, shared-memory
reads/writes, local work); at the barrier the engine freezes them into a
:class:`SuperstepRecord`, prices it under the machine's cost metric, and
delivers the communication.  Records are retained on the
:class:`~repro.core.engine.RunResult` so benchmarks can decompose where time
went (work vs. bandwidth vs. latency vs. contention).

Columnar layout
---------------
Records are *natively columnar*: the engine freezes each superstep into
structure-of-arrays batches (:class:`MessageBatch`, :class:`RequestBatch`)
holding NumPy ``int64`` columns plus an object payload column, so pricing
and delivery are single vector operations instead of per-object Python
loops.  The classic object views — ``record.messages``, ``record.reads``,
``record.writes`` yielding :class:`Message` / :class:`ReadRequest` /
:class:`WriteRequest` — are lazy properties materialized on first access,
so debugging code and existing benchmarks keep working unchanged (they just
pay the materialization cost when, and only when, they ask for objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Message",
    "ReadRequest",
    "WriteRequest",
    "MessageBatch",
    "RequestBatch",
    "SuperstepRecord",
    "CostBreakdown",
]

_I64 = np.int64

#: Payload / value / address columns are either absent (all ``None``), a
#: Python list (heterogeneous objects), or a NumPy array (homogeneous data).
Column = Union[None, list, np.ndarray]


def _column_get(col: Column, i: int) -> Any:
    return None if col is None else col[i]


def _column_take(col: Column, idx: np.ndarray, n: int) -> Union[list, np.ndarray]:
    """Select ``idx`` entries of an object column (list result for object
    columns, array slice for array columns)."""
    if col is None:
        return [None] * n
    if isinstance(col, np.ndarray):
        return col[idx]
    return [col[i] for i in idx.tolist()]


def _concat_columns(cols: Sequence[Column], counts: Sequence[int]) -> Column:
    """Concatenate payload-style columns, preserving the cheapest faithful
    representation (``None`` if everything is None, one array if all are
    compatible arrays, otherwise a plain list)."""
    if all(c is None for c in cols):
        return None
    arrays = [c for c in cols if isinstance(c, np.ndarray)]
    if len(arrays) == len(cols):
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
    out: list = []
    for c, n in zip(cols, counts):
        if c is None:
            out.extend([None] * n)
        elif isinstance(c, np.ndarray):
            out.extend(c.tolist())
        else:
            out.extend(c)
    return out


@dataclass
class Message:
    """A point-to-point message.

    ``size`` is the length in flits (1 for a fixed-size message).  ``slot``
    is the injection time-slot of the *first* flit within the superstep; the
    remaining flits occupy consecutive slots when ``consecutive`` is true
    (wormhole-style), and the engine treats each flit as one injection.
    """

    src: int
    dest: int
    payload: Any = None
    size: int = 1
    slot: Optional[int] = None
    consecutive: bool = True

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"message size must be >= 1, got {self.size}")
        if self.slot is not None and self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")


@dataclass
class ReadRequest:
    """A QSM shared-memory read issued in the current phase.

    ``handle`` is filled in by the engine at the barrier; programs access it
    via :class:`~repro.core.engine.ReadHandle` in the *next* phase, matching
    the QSM rule that a read's value is usable only in a subsequent phase.
    For batch reads (``ctx.read_many``) the handle is the shared
    :class:`~repro.core.engine.BatchReadHandle` of the whole batch.
    """

    pid: int
    addr: Any
    slot: Optional[int] = None
    handle: Any = None


@dataclass
class WriteRequest:
    """A QSM shared-memory write issued in the current phase."""

    pid: int
    addr: Any
    value: Any
    slot: Optional[int] = None


class MessageBatch:
    """Structure-of-arrays form of one superstep's messages.

    Columns (all the same length ``n``):

    * ``src`` / ``dest`` / ``size`` / ``slot`` — ``int64`` arrays;
    * ``consecutive`` — bool array (wormhole flit expansion per message);
    * ``payload`` — ``None`` (all payloads None), a list, or an array.
    """

    __slots__ = ("src", "dest", "size", "slot", "consecutive", "payload", "_total_flits")

    def __init__(
        self,
        src: np.ndarray,
        dest: np.ndarray,
        size: np.ndarray,
        slot: np.ndarray,
        consecutive: np.ndarray,
        payload: Column = None,
    ) -> None:
        self.src = src
        self.dest = dest
        self.size = size
        self.slot = slot
        self.consecutive = consecutive
        self.payload = payload
        self._total_flits: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.src.size)

    @property
    def total_flits(self) -> int:
        if self._total_flits is None:
            self._total_flits = int(self.size.sum()) if self.src.size else 0
        return self._total_flits

    @property
    def unit_sized(self) -> bool:
        """True when every message is a single flit (the common case)."""
        return self.total_flits == self.n

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "MessageBatch":
        z = np.zeros(0, dtype=_I64)
        return cls(z, z, z, z, np.zeros(0, dtype=bool), None)

    @classmethod
    def concat(cls, batches: Sequence["MessageBatch"]) -> "MessageBatch":
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        counts = [b.n for b in batches]
        return cls(
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dest for b in batches]),
            np.concatenate([b.size for b in batches]),
            np.concatenate([b.slot for b in batches]),
            np.concatenate([b.consecutive for b in batches]),
            _concat_columns([b.payload for b in batches], counts),
        )

    @classmethod
    def from_objects(cls, messages: Sequence[Message]) -> "MessageBatch":
        if not messages:
            return cls.empty()
        src = np.fromiter((m.src for m in messages), dtype=_I64, count=len(messages))
        dest = np.fromiter((m.dest for m in messages), dtype=_I64, count=len(messages))
        size = np.fromiter((m.size for m in messages), dtype=_I64, count=len(messages))
        # Slotless messages price as slot 0 (the engine's historical rule).
        slot = np.fromiter(
            (m.slot if m.slot is not None else 0 for m in messages),
            dtype=_I64,
            count=len(messages),
        )
        consec = np.fromiter((m.consecutive for m in messages), dtype=bool, count=len(messages))
        payload: Column = [m.payload for m in messages]
        if all(p is None for p in payload):
            payload = None
        return cls(src, dest, size, slot, consec, payload)

    def to_objects(self) -> List[Message]:
        pl = self.payload
        return [
            Message(
                src=int(self.src[i]),
                dest=int(self.dest[i]),
                payload=_column_get(pl, i),
                size=int(self.size[i]),
                slot=int(self.slot[i]),
                consecutive=bool(self.consecutive[i]),
            )
            for i in range(self.n)
        ]

    def take(self, idx: np.ndarray) -> "MessageBatch":
        """New batch holding rows ``idx`` (in that order, repeats allowed).

        Used by the fault layer to derive the *delivered* batch from the
        *sent* batch (drops = missing rows, duplicates = repeated rows,
        reorders = permuted rows) without touching the original columns.
        """
        idx = np.asarray(idx, dtype=_I64)
        payload = None
        if self.payload is not None:
            payload = _column_take(self.payload, idx, int(idx.size))
        return MessageBatch(
            self.src[idx],
            self.dest[idx],
            self.size[idx],
            self.slot[idx],
            self.consecutive[idx],
            payload,
        )

    # ------------------------------------------------------------------
    def flit_expansion(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-flit ``(src, slot)`` arrays.

        A ``consecutive`` message of size ``s`` starting at slot ``t``
        occupies slots ``t .. t+s-1``; a non-consecutive one injects all
        ``s`` flits at slot ``t``.  Unit-size batches return the message
        columns directly (no copy).
        """
        if self.unit_sized:
            return self.src, self.slot
        reps = self.size
        starts = np.repeat(self.slot, reps)
        flit_src = np.repeat(self.src, reps)
        offs = np.arange(self.total_flits, dtype=_I64) - np.repeat(
            np.cumsum(reps) - reps, reps
        )
        consec = np.repeat(self.consecutive, reps)
        return flit_src, starts + np.where(consec, offs, 0)

    def sends_by_proc(self, p: int) -> np.ndarray:
        """Flits sent per processor (length ``p``, ``int64``)."""
        if not self.n:
            return np.zeros(p, dtype=_I64)
        return np.bincount(self.src, weights=self.size, minlength=p).astype(_I64)

    def recvs_by_proc(self, p: int) -> np.ndarray:
        """Flits received per processor (length ``p``, ``int64``)."""
        if not self.n:
            return np.zeros(p, dtype=_I64)
        counts = np.bincount(self.dest, weights=self.size, minlength=p).astype(_I64)
        return counts[:p]


class RequestBatch:
    """Structure-of-arrays form of one phase's shared-memory requests.

    ``addr`` is an ``int64`` array when every address in the phase is an
    integer (enabling the dense-memory fast path) and a plain list
    otherwise.  For read batches, ``handles`` maps contiguous spans of the
    batch back to the program-facing handle objects as
    ``(handle, start, stop)`` triples; the engine resolves each span at the
    barrier.  For write batches, ``value`` is the value column.
    """

    __slots__ = ("pid", "addr", "slot", "value", "handles")

    def __init__(
        self,
        pid: np.ndarray,
        addr: Union[list, np.ndarray],
        slot: np.ndarray,
        value: Column = None,
        handles: Optional[List[Tuple[Any, int, int]]] = None,
    ) -> None:
        self.pid = pid
        self.addr = addr
        self.slot = slot
        self.value = value
        self.handles = handles if handles is not None else []

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.pid.size)

    @property
    def int_addressed(self) -> bool:
        """True when the address column is a dense integer array."""
        return isinstance(self.addr, np.ndarray)

    def addr_list(self) -> list:
        return self.addr.tolist() if isinstance(self.addr, np.ndarray) else self.addr

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "RequestBatch":
        z = np.zeros(0, dtype=_I64)
        return cls(z, [], z, None, [])

    @classmethod
    def concat(cls, batches: Sequence["RequestBatch"]) -> "RequestBatch":
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        counts = [b.n for b in batches]
        if all(isinstance(b.addr, np.ndarray) for b in batches):
            addr: Union[list, np.ndarray] = np.concatenate([b.addr for b in batches])
        else:
            addr = []
            for b in batches:
                addr.extend(b.addr_list())
        handles: List[Tuple[Any, int, int]] = []
        offset = 0
        for b in batches:
            for h, s, e in b.handles:
                handles.append((h, s + offset, e + offset))
            offset += b.n
        return cls(
            np.concatenate([b.pid for b in batches]),
            addr,
            np.concatenate([b.slot for b in batches]),
            _concat_columns([b.value for b in batches], counts),
            handles,
        )

    @classmethod
    def from_read_objects(cls, reqs: Sequence[ReadRequest]) -> "RequestBatch":
        if not reqs:
            return cls.empty()
        pid = np.fromiter((r.pid for r in reqs), dtype=_I64, count=len(reqs))
        slot = np.fromiter(
            (r.slot if r.slot is not None else 0 for r in reqs), dtype=_I64, count=len(reqs)
        )
        addr = [r.addr for r in reqs]
        handles = [(r.handle, i, i + 1) for i, r in enumerate(reqs) if r.handle is not None]
        return cls(pid, addr, slot, None, handles)

    @classmethod
    def from_write_objects(cls, reqs: Sequence[WriteRequest]) -> "RequestBatch":
        if not reqs:
            return cls.empty()
        pid = np.fromiter((r.pid for r in reqs), dtype=_I64, count=len(reqs))
        slot = np.fromiter(
            (r.slot if r.slot is not None else 0 for r in reqs), dtype=_I64, count=len(reqs)
        )
        addr = [r.addr for r in reqs]
        return cls(pid, addr, slot, [r.value for r in reqs], [])

    def to_read_objects(self) -> List[ReadRequest]:
        addrs = self.addr_list()
        out = [
            ReadRequest(pid=int(self.pid[i]), addr=addrs[i], slot=int(self.slot[i]))
            for i in range(self.n)
        ]
        for handle, start, stop in self.handles:
            for i in range(start, stop):
                out[i].handle = handle
        return out

    def to_write_objects(self) -> List[WriteRequest]:
        addrs = self.addr_list()
        val = self.value
        return [
            WriteRequest(
                pid=int(self.pid[i]),
                addr=addrs[i],
                value=_column_get(val, i),
                slot=int(self.slot[i]),
            )
            for i in range(self.n)
        ]


@dataclass
class CostBreakdown:
    """Components that fed a superstep's cost, all in model time units."""

    work: float = 0.0
    local_band: float = 0.0  # g*h (locally-limited) or h (globally-limited)
    global_band: float = 0.0  # c_m, or n/m for the self-scheduling metric
    latency: float = 0.0  # L (BSP only)
    contention: float = 0.0  # kappa (QSM only)

    def total(self) -> float:
        return max(
            self.work,
            self.local_band,
            self.global_band,
            self.latency,
            self.contention,
        )

    def dominant(self) -> str:
        """Name of the component that determined the cost (ties broken in
        declaration order)."""
        items = [
            ("work", self.work),
            ("local_band", self.local_band),
            ("global_band", self.global_band),
            ("latency", self.latency),
            ("contention", self.contention),
        ]
        best_name, best_val = items[0]
        for name, val in items[1:]:
            if val > best_val:
                best_name, best_val = name, val
        return best_name


class SuperstepRecord:
    """Everything a superstep did, plus its price.

    Natively columnar: the authoritative storage is the three batches
    (``msg_batch``, ``read_batch``, ``write_batch``); the object views
    ``messages`` / ``reads`` / ``writes`` are built lazily on first access
    and cached.  Records may also be constructed from object lists (the
    legacy form), in which case the batches are derived lazily instead.

    Attributes
    ----------
    index:
        0-based superstep number.
    work:
        Per-processor local work amounts.
    messages:
        All messages sent this superstep (BSP machines) — lazy object view.
    reads / writes:
        All shared-memory requests (QSM machines) — lazy object views.
    cost:
        The model time charged.
    breakdown:
        The components behind ``cost``.
    stats:
        Free-form metrics the cost model wants to expose (``h``, ``kappa``,
        ``c_m``, ``n``, max slot, overload count, ...).
    """

    __slots__ = (
        "index",
        "work",
        "cost",
        "breakdown",
        "stats",
        "_msg_batch",
        "_read_batch",
        "_write_batch",
        "_messages",
        "_reads",
        "_writes",
    )

    def __init__(
        self,
        index: int,
        work: List[float],
        messages: Optional[List[Message]] = None,
        reads: Optional[List[ReadRequest]] = None,
        writes: Optional[List[WriteRequest]] = None,
        *,
        msg_batch: Optional[MessageBatch] = None,
        read_batch: Optional[RequestBatch] = None,
        write_batch: Optional[RequestBatch] = None,
        cost: float = 0.0,
        breakdown: Optional[CostBreakdown] = None,
        stats: Optional[Dict[str, float]] = None,
    ) -> None:
        self.index = index
        self.work = work
        self.cost = cost
        self.breakdown = breakdown if breakdown is not None else CostBreakdown()
        self.stats = stats if stats is not None else {}
        self._msg_batch = msg_batch
        self._read_batch = read_batch
        self._write_batch = write_batch
        self._messages = messages
        self._reads = reads
        self._writes = writes
        if messages is None and msg_batch is None:
            self._messages = []
        if reads is None and read_batch is None:
            self._reads = []
        if writes is None and write_batch is None:
            self._writes = []

    # -- columnar accessors ----------------------------------------------------
    @property
    def msg_batch(self) -> MessageBatch:
        if self._msg_batch is None:
            self._msg_batch = MessageBatch.from_objects(self._messages or [])
        return self._msg_batch

    @property
    def read_batch(self) -> RequestBatch:
        if self._read_batch is None:
            self._read_batch = RequestBatch.from_read_objects(self._reads or [])
        return self._read_batch

    @property
    def write_batch(self) -> RequestBatch:
        if self._write_batch is None:
            self._write_batch = RequestBatch.from_write_objects(self._writes or [])
        return self._write_batch

    # -- lazy object views -----------------------------------------------------
    @property
    def messages(self) -> List[Message]:
        if self._messages is None:
            self._messages = self._msg_batch.to_objects()
        return self._messages

    @property
    def reads(self) -> List[ReadRequest]:
        if self._reads is None:
            self._reads = self._read_batch.to_read_objects()
        return self._reads

    @property
    def writes(self) -> List[WriteRequest]:
        if self._writes is None:
            self._writes = self._write_batch.to_write_objects()
        return self._writes

    # -- convenience accessors -------------------------------------------------
    @property
    def n_messages(self) -> int:
        if self._msg_batch is not None:
            return self._msg_batch.n
        return len(self._messages or [])

    @property
    def n_reads(self) -> int:
        if self._read_batch is not None:
            return self._read_batch.n
        return len(self._reads or [])

    @property
    def n_writes(self) -> int:
        if self._write_batch is not None:
            return self._write_batch.n
        return len(self._writes or [])

    @property
    def total_flits(self) -> int:
        return self.msg_batch.total_flits

    @property
    def is_empty(self) -> bool:
        """No communication and no work this superstep."""
        return (
            self.n_messages == 0
            and self.n_reads == 0
            and self.n_writes == 0
            and not any(self.work)
        )

    def sends_by_proc(self, p: int) -> np.ndarray:
        """Number of flits sent by each processor (``int64`` array)."""
        return self.msg_batch.sends_by_proc(p)

    def recvs_by_proc(self, p: int) -> np.ndarray:
        """Number of flits received by each processor (``int64`` array)."""
        return self.msg_batch.recvs_by_proc(p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SuperstepRecord(index={self.index}, messages={self.n_messages}, "
            f"reads={self.n_reads}, writes={self.n_writes}, cost={self.cost})"
        )
