"""Preallocated superstep arenas for the fused engine path.

The legacy engine buffers each processor's operations in per-processor
chunk lists and *gathers* them into columnar batches at the barrier
(:func:`repro.core.engine._gather_msg_batch` and friends).  The fused path
inverts this: every ``send``/``send_many``/``read``/``write`` appends
directly into a machine-owned arena — a set of preallocated, growable
``int64`` columns shared by all processors — so the barrier freeze is a
single slice-copy per column instead of a Python-level merge pass, and no
per-call ``MessageBatch``/``RequestBatch`` chunks (or their per-chunk
``np.full`` source columns) are ever allocated.

Correctness contract
--------------------
``freeze()`` must produce batches *value-identical* to the legacy gather:
same column values in the same row order, and the same payload-column
representation rules (``None`` if every payload is ``None``, a single
array when all chunks are arrays, a list otherwise — see
:func:`repro.core.events._concat_columns`).  This holds because the engine
advances processors sequentially in pid order within a superstep, so arena
append order *is* the legacy gather order.  The one exception — programs
where some processors are plain functions (executed at construction time)
and others are generators (executed at the first barrier) — is detected via
a pid-monotonicity check and repaired at freeze time with a stable sort by
source pid, which restores the legacy pid-major order exactly.

Arenas are reused across supersteps and across runs on the same machine;
``grows`` counts capacity growths so benchmarks can assert steady-state
runs allocate nothing (see ``benchmarks/bench_engine_throughput.py``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.events import (
    Column,
    MessageBatch,
    RequestBatch,
    _column_take,
    _concat_columns,
)
from repro.core.kernels import stable_group_order

__all__ = ["SendArena", "RequestArena"]

_I64 = np.int64


def _int_addr_column(addrs: list) -> Any:
    """Int64 array when every address is an integer, else the list itself
    (mirrors the engine's scalar-request freezer)."""
    if addrs and all(isinstance(a, (int, np.integer)) for a in addrs):
        return np.asarray(addrs, dtype=_I64)
    return addrs


def _concat_addr(chunks: List[Tuple[Any, int]]) -> Any:
    """Concatenate address chunks with :meth:`RequestBatch.concat`'s rule:
    one int64 array when every chunk is an array, else a flat list."""
    if len(chunks) == 1:
        return chunks[0][0]
    if all(isinstance(c, np.ndarray) for c, _ in chunks):
        return np.concatenate([c for c, _ in chunks])
    out: list = []
    for c, _ in chunks:
        out.extend(c.tolist() if isinstance(c, np.ndarray) else c)
    return out


class _ColumnArena:
    """Shared bookkeeping for growable column sets."""

    GROW_FACTOR = 2

    def __init__(self, capacity: int) -> None:
        self._cap = max(1, capacity)
        self.n = 0
        #: Number of capacity growths since construction; a steady-state
        #: workload re-run on the same machine must keep this constant.
        self.grows = 0
        #: True when appends arrived out of pid order this superstep (mixed
        #: plain-function / generator programs); freeze() restores order.
        self._out_of_order = False
        self._last_pid = -1

    def _note_pid(self, pid: int) -> None:
        if pid < self._last_pid:
            self._out_of_order = True
        self._last_pid = pid

    def _grown(self, need: int) -> int:
        self.grows += 1
        self._cap = max(need, self._cap * self.GROW_FACTOR)
        return self._cap


class SendArena(_ColumnArena):
    """Arena for one superstep's message sends (all processors)."""

    def __init__(self, capacity: int = 1024) -> None:
        super().__init__(capacity)
        cap = self._cap
        self.src = np.empty(cap, dtype=_I64)
        self.dest = np.empty(cap, dtype=_I64)
        self.size = np.empty(cap, dtype=_I64)
        self.slot = np.empty(cap, dtype=_I64)
        self.consecutive = np.empty(cap, dtype=bool)
        self._payload_chunks: List[Tuple[Column, int]] = []
        # scalar merge buffers: consecutive scalar sends (possibly spanning
        # processors) collapse into one chunk, exactly like the legacy
        # gather's (pid, count) runs
        self._run_pids: List[int] = []
        self._run_counts: List[int] = []
        self._s_dest: List[int] = []
        self._s_size: List[int] = []
        self._s_slot: List[int] = []
        self._s_consec: List[bool] = []
        self._s_payload: List[Any] = []

    def _ensure(self, extra: int) -> None:
        need = self.n + extra
        if need <= self._cap:
            return
        cap = self._grown(need)
        for name in ("src", "dest", "size", "slot", "consecutive"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    # -- appends (call-time, pid order) ---------------------------------------
    def append_scalar(
        self, pid: int, dest: int, size: int, slot: int, consec: bool, payload: Any
    ) -> None:
        self._note_pid(pid)
        if self._run_pids and self._run_pids[-1] == pid:
            self._run_counts[-1] += 1
        else:
            self._run_pids.append(pid)
            self._run_counts.append(1)
        self._s_dest.append(dest)
        self._s_size.append(size)
        self._s_slot.append(slot)
        self._s_consec.append(consec)
        self._s_payload.append(payload)

    def append_batch(
        self,
        pid: int,
        dest: np.ndarray,
        size: Optional[np.ndarray],
        slot: np.ndarray,
        consecutive: bool,
        payloads: Column,
    ) -> None:
        """Append one ``send_many`` batch (``size=None`` means all-unit)."""
        self._note_pid(pid)
        self._flush_scalars()
        k = int(dest.size)
        self._ensure(k)
        i, j = self.n, self.n + k
        self.src[i:j] = pid
        self.dest[i:j] = dest
        if size is None:
            self.size[i:j] = 1
        else:
            self.size[i:j] = size
        self.slot[i:j] = slot
        self.consecutive[i:j] = consecutive
        self._payload_chunks.append((payloads, k))
        self.n = j

    def _flush_scalars(self) -> None:
        k = len(self._s_dest)
        if not k:
            return
        self._ensure(k)
        i, j = self.n, self.n + k
        self.src[i:j] = np.repeat(
            np.asarray(self._run_pids, dtype=_I64),
            np.asarray(self._run_counts, dtype=_I64),
        )
        self.dest[i:j] = self._s_dest
        self.size[i:j] = self._s_size
        self.slot[i:j] = self._s_slot
        self.consecutive[i:j] = self._s_consec
        pl: Column = (
            None if all(x is None for x in self._s_payload) else list(self._s_payload)
        )
        self._payload_chunks.append((pl, k))
        self.n = j
        self._run_pids.clear()
        self._run_counts.clear()
        self._s_dest.clear()
        self._s_size.clear()
        self._s_slot.clear()
        self._s_consec.clear()
        self._s_payload.clear()

    # -- barrier --------------------------------------------------------------
    def freeze(self) -> MessageBatch:
        """Copy the arena contents out as this superstep's frozen batch."""
        self._flush_scalars()
        n = self.n
        if n == 0:
            return MessageBatch.empty()
        payload = _concat_columns(
            [c for c, _ in self._payload_chunks],
            [k for _, k in self._payload_chunks],
        )
        batch = MessageBatch(
            self.src[:n].copy(),
            self.dest[:n].copy(),
            self.size[:n].copy(),
            self.slot[:n].copy(),
            self.consecutive[:n].copy(),
            payload,
        )
        if self._out_of_order:
            # same permutation as np.argsort(kind="stable"), via the ~7×
            # faster combined-key sort (pids are small non-negative ints)
            order = stable_group_order(batch.src, int(batch.src.max()))
            batch = batch.take(order)
        return batch

    def reset(self) -> None:
        self.n = 0
        self._payload_chunks.clear()
        self._out_of_order = False
        self._last_pid = -1


class RequestArena(_ColumnArena):
    """Arena for one phase's shared-memory requests (reads *or* writes).

    Reads carry ``(handle, start, stop)`` spans with offsets absolute in
    the frozen batch; writes carry a value column.  One instance serves one
    kind — the machine owns a read arena and a write arena.
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity)
        cap = self._cap
        self.pid = np.empty(cap, dtype=_I64)
        self.slot = np.empty(cap, dtype=_I64)
        self._addr_chunks: List[Tuple[Any, int]] = []
        self._value_chunks: List[Tuple[Column, int]] = []
        self.handles: List[Tuple[Any, int, int]] = []
        # scalar merge buffers
        self._run_pids: List[int] = []
        self._run_counts: List[int] = []
        self._s_addr: List[Any] = []
        self._s_slot: List[int] = []
        self._s_value: List[Any] = []
        self._s_handle: List[Any] = []

    def _ensure(self, extra: int) -> None:
        need = self.n + extra
        if need <= self._cap:
            return
        cap = self._grown(need)
        for name in ("pid", "slot"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    # -- appends (call-time, pid order) ---------------------------------------
    def append_scalar_read(self, pid: int, addr: Any, slot: int, handle: Any) -> None:
        self._note_pid(pid)
        self._merge_run(pid)
        self._s_addr.append(addr)
        self._s_slot.append(slot)
        self._s_handle.append(handle)

    def append_scalar_write(self, pid: int, addr: Any, slot: int, value: Any) -> None:
        self._note_pid(pid)
        self._merge_run(pid)
        self._s_addr.append(addr)
        self._s_slot.append(slot)
        self._s_value.append(value)

    def _merge_run(self, pid: int) -> None:
        if self._run_pids and self._run_pids[-1] == pid:
            self._run_counts[-1] += 1
        else:
            self._run_pids.append(pid)
            self._run_counts.append(1)

    def append_batch_read(
        self, pid: int, addr: Any, slot: np.ndarray, handle: Any
    ) -> None:
        self._note_pid(pid)
        self._flush_scalars()
        k = len(addr)
        self._ensure(k)
        i, j = self.n, self.n + k
        self.pid[i:j] = pid
        self.slot[i:j] = slot
        self._addr_chunks.append((addr, k))
        self._value_chunks.append((None, k))
        self.handles.append((handle, i, j))
        self.n = j

    def append_batch_write(
        self, pid: int, addr: Any, slot: np.ndarray, values: Column
    ) -> None:
        self._note_pid(pid)
        self._flush_scalars()
        k = len(addr)
        self._ensure(k)
        i, j = self.n, self.n + k
        self.pid[i:j] = pid
        self.slot[i:j] = slot
        self._addr_chunks.append((addr, k))
        self._value_chunks.append((values, k))
        self.n = j

    def _flush_scalars(self) -> None:
        k = len(self._s_addr)
        if not k:
            return
        self._ensure(k)
        i, j = self.n, self.n + k
        self.pid[i:j] = np.repeat(
            np.asarray(self._run_pids, dtype=_I64),
            np.asarray(self._run_counts, dtype=_I64),
        )
        self.slot[i:j] = self._s_slot
        self._addr_chunks.append((_int_addr_column(list(self._s_addr)), k))
        if self._s_handle:
            for off, h in enumerate(self._s_handle):
                self.handles.append((h, i + off, i + off + 1))
            self._value_chunks.append((None, k))
        else:
            self._value_chunks.append((list(self._s_value), k))
        self.n = j
        self._run_pids.clear()
        self._run_counts.clear()
        self._s_addr.clear()
        self._s_slot.clear()
        self._s_value.clear()
        self._s_handle.clear()

    # -- barrier --------------------------------------------------------------
    def freeze(self, *, with_values: bool) -> RequestBatch:
        """Copy the arena out as the phase's frozen read or write batch."""
        self._flush_scalars()
        n = self.n
        if n == 0:
            return RequestBatch.empty()
        addr = _concat_addr(self._addr_chunks)
        value: Column = None
        if with_values:
            value = _concat_columns(
                [c for c, _ in self._value_chunks],
                [k for _, k in self._value_chunks],
            )
        batch = RequestBatch(
            self.pid[:n].copy(),
            addr,
            self.slot[:n].copy(),
            value,
            list(self.handles),
        )
        if self._out_of_order:
            batch = self._reorder(batch)
        return batch

    def _reorder(self, batch: RequestBatch) -> RequestBatch:
        """Restore legacy pid-major order after a mixed plain/generator
        program appended out of pid order (rare; see module docstring).
        Each handle span belongs to one processor's contiguous appends, so
        spans stay contiguous under the stable sort and only shift."""
        order = stable_group_order(batch.pid, int(batch.pid.max()))
        inv = np.empty(order.size, dtype=_I64)
        inv[order] = np.arange(order.size, dtype=_I64)
        addr = batch.addr
        addr2 = addr[order] if isinstance(addr, np.ndarray) else [addr[i] for i in order.tolist()]
        value2 = None
        if batch.value is not None:
            value2 = _column_take(batch.value, order, int(order.size))
        handles2 = [(h, int(inv[s]), int(inv[s]) + (e - s)) for h, s, e in batch.handles]
        return RequestBatch(batch.pid[order], addr2, batch.slot[order], value2, handles2)

    def reset(self) -> None:
        self.n = 0
        self._addr_chunks.clear()
        self._value_chunks.clear()
        self.handles.clear()
        self._out_of_order = False
        self._last_pid = -1
