"""Reference PRAM algorithms and trace extraction.

Section 4's generic mapping turns *any* EREW/QRQW PRAM algorithm with time
``t(n)`` and work ``w(n)`` into a QSM(m) algorithm of time
``O(n/m + t + w/m)``.  To exercise that mapping on real algorithms (not
hand-written trace shapes), this module provides:

* classical PRAM programs on the :class:`~repro.models.pram.PRAM` engine —
  balanced-tree prefix sums and Wyllie list ranking, both EREW;
* :func:`trace_from_run` — extract the per-step operation counts of an
  actual PRAM run into a :class:`~repro.algorithms.emulation.PRAMTrace`,
  ready for :func:`~repro.algorithms.emulation.simulate_trace_on_qsm_m`.

So the full §4 pipeline is executable: run the PRAM algorithm, measure its
``(t, w)``, map it onto the QSM(m), and compare against the Table-1 direct
implementations.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.algorithms.emulation import PRAMTrace
from repro.core.engine import RunResult
from repro.core.params import MachineParams
from repro.models.pram import PRAM, ConcurrencyRule
from repro.util.intmath import ilog2

__all__ = [
    "pram_prefix_sums",
    "pram_wyllie_ranks",
    "trace_from_run",
]


def trace_from_run(res: RunResult) -> PRAMTrace:
    """Per-step shared-memory operation counts of a PRAM run.

    The trace's ``input_size`` is taken as the machine width ``p`` (one
    input item per processor, the Table-1 setting).
    """
    ops = np.asarray(
        [r.stats.get("reads", 0.0) + r.stats.get("writes", 0.0) for r in res.records],
        dtype=np.int64,
    )
    return PRAMTrace(ops=ops, input_size=res.params.p)


def _prefix_program(ctx, rounds: int, value):
    """EREW balanced-tree inclusive prefix sums (one value per processor).

    Upsweep then downsweep over cells ``("t", level, index)``; every memory
    cell is touched by exactly one reader and one writer per step (EREW).
    """
    pid, p = ctx.pid, ctx.nprocs
    subtotal = value
    ctx.work(1)
    left_totals: List = []
    stride = 1
    for lvl in range(rounds):
        if pid % (2 * stride) == stride:
            ctx.write(("up", lvl, pid), subtotal)
        yield
        handle = None
        if pid % (2 * stride) == 0:
            handle = ctx.read(("up", lvl, pid + stride)) if pid + stride < p else None
        yield
        if pid % (2 * stride) == 0:
            left_totals.append(subtotal)
            if handle is not None and handle.value is not None:
                subtotal = subtotal + handle.value
                ctx.work(1)
        stride *= 2
    carry = None
    stride = 2 ** max(rounds - 1, 0)
    for lvl in range(rounds):
        if pid % (2 * stride) == 0 and left_totals:
            my_left = left_totals.pop()
            right = pid + stride
            if right < p:
                ctx.write(("dn", lvl, right), my_left if carry is None else carry + my_left)
                ctx.work(1)
        yield
        handle = None
        if pid % (2 * stride) == stride:
            handle = ctx.read(("dn", lvl, pid))
        yield
        if handle is not None and handle.value is not None:
            carry = handle.value
        stride = max(1, stride // 2)
    ctx.work(1)
    return value if carry is None else carry + value


def pram_prefix_sums(values: Sequence[float]) -> Tuple[RunResult, List[float]]:
    """Inclusive prefix sums on an EREW PRAM, ``t = O(lg n)``, ``w = O(n)``.

    Returns ``(run_result, prefixes)``.
    """
    p = len(values)
    if p == 0:
        raise ValueError("need at least one value")
    rounds = max(1, ilog2(max(1, p - 1)) + 1) if p > 1 else 0
    pram = PRAM(MachineParams(p=p), rule=ConcurrencyRule.EREW)
    res = pram.run(
        _prefix_program, args=(rounds,), per_proc_args=[(v,) for v in values]
    )
    return res, list(res.results)


def _wyllie_program(ctx, rounds: int, succ0: int):
    """EREW Wyllie pointer jumping: each node publishes ``(succ, rank)``
    and reads its successor's cell (in-degree 1 keeps it exclusive)."""
    pid = ctx.pid
    succ = succ0
    rank = 0 if succ < 0 else 1
    for r in range(rounds):
        ctx.write(("wy", r, pid), (succ, rank))
        yield
        handle = None
        if succ >= 0:
            handle = ctx.read(("wy", r, succ))
        yield
        if handle is not None and handle.value is not None:
            nxt, nxt_rank = handle.value
            rank += nxt_rank
            succ = nxt
    return rank


def pram_wyllie_ranks(succ: Sequence[int]) -> Tuple[RunResult, np.ndarray]:
    """Wyllie list ranking on an EREW PRAM: ``t = O(lg n)``,
    ``w = O(n lg n)`` — the work-suboptimal baseline whose mapped QSM(m)
    cost the Table-1 algorithms beat."""
    succ = np.asarray(succ, dtype=np.int64)
    p = succ.size
    if p == 0:
        raise ValueError("need at least one node")
    rounds = max(1, ilog2(max(1, p - 1)) + 1)
    pram = PRAM(MachineParams(p=p), rule=ConcurrencyRule.EREW)
    res = pram.run(
        _wyllie_program, args=(rounds,), per_proc_args=[(int(s),) for s in succ]
    )
    return res, np.asarray(res.results, dtype=np.int64)
