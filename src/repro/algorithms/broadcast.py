"""Broadcasting — Table 1, row 2, plus the non-receipt algorithm of §4.2.

One processor holds a value; at the end every processor holds it.  The four
models get four structurally different optimal algorithms:

===========  ===============================================================
BSP(g)       ``b``-ary send-tree with ``b ≈ L/g`` — per round one superstep
             of cost ``max(g(b-1), L) = L``; time ``Θ(L lg p / lg(L/g))``.
BSP(m)       send-tree over ``min(p, m)`` processors with ``b ≈ L``, then a
             full-bandwidth fan-out; time ``O(L lg m / lg L + p/m + L)``.
QSM(g)       *read*-tree with ``b ≈ g`` — children concurrently read the
             parent's cell, balancing the ``g·h`` and ``κ`` terms; time
             ``Θ(g lg p / lg g)``.
QSM(m)       binary read-tree over ``min(p, m)`` processors, then one
             concurrent-read fan-out phase; time ``Θ(lg m + p/m)``.
===========  ===============================================================

:func:`broadcast` dispatches on the machine type.  :func:`broadcast_bit_nonreceipt`
implements the §4.2 curiosity: on the BSP(g) with ``L <= g``, a *single bit*
can be broadcast in ``g·ceil(log3 p)`` time because the *absence* of a
message carries information — each informed processor signals 0/1 by which
of two target processors it sends to, and both targets learn the bit (one
from receipt, the other from non-receipt).  Theorem 4.1's lower bound
``L lg p / (2 lg(2L/g + 1))`` accounts for exactly this effect.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.models.bsp_m import BSPm
from repro.models.qsm_g import QSMg
from repro.models.qsm_m import QSMm
from repro.models.self_scheduling import SelfSchedulingBSPm

__all__ = [
    "broadcast",
    "broadcast_bsp_tree_program",
    "broadcast_bsp_m_program",
    "broadcast_qsm_tree_program",
    "broadcast_qsm_m_program",
    "broadcast_bit_nonreceipt",
    "default_branching",
]


def default_branching(machine: Machine) -> int:
    """The cost-balancing tree branching for each model (see module doc)."""
    params = machine.params
    if isinstance(machine, (BSPm, SelfSchedulingBSPm)):
        return max(2, int(params.L))
    if isinstance(machine, QSMm):
        return 2
    if isinstance(machine, QSMg):
        return max(2, int(params.g) + 1)
    # BSP(g): balance g*(b-1) against L.
    return max(2, int(params.L / params.g) + 1)


# ----------------------------------------------------------------------
# BSP programs
# ----------------------------------------------------------------------


def broadcast_bsp_tree_program(ctx, value: Any, b: int, length: int = 1):
    """Plain ``b``-ary send-tree over all processors (BSP(g) optimal).

    ``length`` is the broadcast value's size in flits — the word-versus-bit
    distinction of Section 5's ``w`` parameter, priced honestly.
    """
    p, pid = ctx.nprocs, ctx.pid
    have = pid == 0
    val = value if have else None
    span = 1
    while span < p:
        if have and pid < span:
            # children pid + j*span for j in 1..b-1 (increasing, so the
            # in-range ones are a prefix); one batch send per round
            targets = pid + np.arange(1, b, dtype=np.int64) * span
            targets = targets[targets < p]
            if targets.size:
                ctx.send_many(
                    targets,
                    payloads=[val] * targets.size,
                    sizes=np.full(targets.size, length, dtype=np.int64),
                    slots=np.arange(targets.size, dtype=np.int64) * length,
                )
        yield
        if not have:
            inbox = ctx.receive()
            if inbox:
                val = inbox.payloads[0]
                have = True
        span *= b
    return val


def broadcast_bsp_m_program(ctx, value: Any, a: int, b: int, length: int = 1):
    """Tree over ``a = min(p, m)`` processors, then full-bandwidth fan-out
    (BSP(m) optimal); ``length`` = value size in flits."""
    p, pid = ctx.nprocs, ctx.pid
    have = pid == 0
    val = value if have else None
    span = 1
    while span < a:
        if have and pid < span:
            targets = pid + np.arange(1, b, dtype=np.int64) * span
            targets = targets[targets < a]
            if targets.size:
                ctx.send_many(
                    targets,
                    payloads=[val] * targets.size,
                    sizes=np.full(targets.size, length, dtype=np.int64),
                    slots=np.arange(targets.size, dtype=np.int64) * length,
                )
        yield
        if not have and pid < a:
            inbox = ctx.receive()
            if inbox:
                val = inbox.payloads[0]
                have = True
        span *= b
    # Fan-out: aggregator j serves pids j+a, j+2a, ...; the k-th member is
    # sent at slot k, so each slot carries at most a <= m flits.
    if pid < a:
        members = np.arange(pid + a, p, a, dtype=np.int64)
        if members.size:
            ctx.send_many(
                members,
                payloads=[val] * members.size,
                sizes=np.full(members.size, length, dtype=np.int64),
                slots=np.arange(members.size, dtype=np.int64) * length,
            )
    yield
    if pid >= a:
        inbox = ctx.receive()
        if inbox:
            val = inbox.payloads[0]
    return val


# ----------------------------------------------------------------------
# QSM programs
# ----------------------------------------------------------------------


def broadcast_qsm_tree_program(ctx, value: Any, b: int):
    """Read-tree: informed processors publish to their own cell; the next
    tier concurrently reads it (``b-1`` readers per cell)."""
    p, pid = ctx.nprocs, ctx.pid
    val = value if pid == 0 else None
    if pid == 0:
        ctx.write(("bc", 0), val)
    yield
    span = 1
    while span < p:
        handle = None
        if span <= pid < span * b:
            handle = ctx.read(("bc", pid % span))
        yield
        if handle is not None:
            val = handle.value
            if pid < p:  # publish for the next tier
                ctx.write(("bc", pid), val)
        yield
        span *= b
    return val


def broadcast_qsm_m_program(ctx, value: Any, a: int, b: int):
    """Binary read-tree over ``a`` processors, then one concurrent-read
    fan-out phase where everyone else reads an aggregator's cell."""
    p, pid = ctx.nprocs, ctx.pid
    val = value if pid == 0 else None
    if pid == 0:
        ctx.write(("bc", 0), val, slot=ctx.stagger_slot())
    yield
    span = 1
    while span < a:
        handle = None
        if span <= pid < min(span * b, a):
            handle = ctx.read(("bc", pid % span), slot=ctx.stagger_slot())
        yield
        if handle is not None:
            val = handle.value
            ctx.write(("bc", pid), val, slot=ctx.stagger_slot())
        yield
        span *= b
    handle = None
    if pid >= a:
        handle = ctx.read(("bc", pid % a), slot=ctx.stagger_slot())
    yield
    if handle is not None:
        val = handle.value
    return val


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------


def broadcast(
    machine: Machine, value: Any, branching: Optional[int] = None, length: int = 1
) -> RunResult:
    """Broadcast ``value`` from processor 0 on any of the four models.

    ``result.results`` holds each processor's received value and
    ``result.time`` the model time.  ``length`` prices the value at that
    many flits per hop (message-passing machines only; QSM models a cell
    as one word).
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    b = branching if branching is not None else default_branching(machine)
    params = machine.params
    if isinstance(machine, QSMm):
        a = min(params.p, params.require_m())
        return machine.run(broadcast_qsm_m_program, args=(value, a, b))
    if isinstance(machine, QSMg):
        return machine.run(broadcast_qsm_tree_program, args=(value, b))
    if isinstance(machine, (BSPm, SelfSchedulingBSPm)):
        a = min(params.p, params.require_m())
        return machine.run(broadcast_bsp_m_program, args=(value, a, b, length))
    return machine.run(broadcast_bsp_tree_program, args=(value, b, length))


# ----------------------------------------------------------------------
# Non-receipt single-bit broadcast (Section 4.2)
# ----------------------------------------------------------------------


def _nonreceipt_program(ctx, bit: int):
    p, pid = ctx.nprocs, ctx.pid
    know = pid == 0
    val = bit if know else None
    span = 1  # processors [0, span) know the bit
    while span < p:
        if know and pid < span:
            target = pid + span if val == 0 else pid + 2 * span
            if target < p:
                ctx.send(target, None, slot=0)
        yield
        if not know:
            got = bool(ctx.receive())
            if span <= pid < 2 * span:
                val = 0 if got else 1
                know = True
            elif 2 * span <= pid < 3 * span:
                val = 1 if got else 0
                know = True
        span *= 3
    return val


def broadcast_bit_nonreceipt(machine: Machine, bit: int) -> RunResult:
    """The §4.2 algorithm: broadcast one bit in ``ceil(log3 p)`` supersteps
    (time ``g·ceil(log3 p)`` on the BSP(g) when ``L <= g``) by encoding the
    bit in *which* processor receives a message.  Non-receivers learn the
    bit from silence — only sound on a bulk-synchronous machine.
    """
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    if machine.uses_shared_memory:
        raise ValueError("the non-receipt broadcast is a message-passing algorithm")
    return machine.run(_nonreceipt_program, args=(bit,))
