"""Realizing h-relations on the CRCW PRAM — the Section 4.1 gadget.

Section 4.1 converts CRCW PRAM lower bounds into BSP(g) lower bounds by
showing the converse simulation is cheap: a CRCW PRAM can realize any
h-relation in ``O(h)`` steps, so a BSP(g) superstep of communication cost
``g·h`` maps to ``O(h)`` CRCW steps and any CRCW time lower bound ``t(n)``
lifts to ``Ω(g·t(n))`` on the BSP(g).

We implement the paper's third variant (the ``x̄ < lg lg p`` branch, which
is fully executable): every source processor gets a *team* of ``x̄`` helper
processors, one per message.  Each round every undelivered message performs
a concurrent write to its destination's mailbox cell; the Arbitrary rule
picks one winner per destination; winners check success by reading the cell
back, and the destination copies the message out.  Every destination with
pending traffic receives exactly one message per round, so the loop ends
after exactly ``ȳ <= h`` rounds of O(1) steps each.

Also here: :func:`crcw_max` — the constant-time maximum with ``p^2``
processors (Step 1 of the paper's first algorithm), and
:func:`bsp_lower_bound_from_crcw` — the executable form of the lower-bound
conversion.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.core.engine import RunResult
from repro.core.params import MachineParams
from repro.models.pram import PRAM, ConcurrencyRule
from repro.workloads.relations import HRelation

__all__ = [
    "realize_h_relation_crcw",
    "realize_h_relation_crcw_randomized",
    "crcw_max",
    "bsp_lower_bound_from_crcw",
    "bsp_lower_bound_from_crcw_randomized",
    "bsp_lower_bound_from_crcw_deterministic",
]


def _msgs_by_source(rel: HRelation) -> List[List[Tuple[int, Any]]]:
    """Per-source ``(dest, payload=src)`` message lists, grouped by one
    stable argsort of the relation's columns (record order preserved
    within each source)."""
    order = np.argsort(rel.src, kind="stable")
    dest_sorted = rel.dest[order]
    src_sorted = rel.src[order]
    bounds = np.searchsorted(src_sorted, np.arange(rel.p + 1))
    return [
        list(
            zip(
                dest_sorted[bounds[i] : bounds[i + 1]].tolist(),
                src_sorted[bounds[i] : bounds[i + 1]].tolist(),
            )
        )
        for i in range(rel.p)
    ]


def _team_program(ctx, x_bar: int, max_rounds: int, my_msg, is_reader: bool):
    """One engine processor per (source, slot-in-team).

    ``my_msg`` is ``None`` or ``(dest, payload)``.  Processor ``i * x_bar``
    doubles as the reader for destination ``i``.
    """
    pid = ctx.pid
    dest_id = pid // x_bar  # the destination this proc reads for
    delivered = False if my_msg is not None else True
    received: List[Any] = []

    for rnd in range(max_rounds):
        # Step A: every undelivered message concurrent-writes its mailbox.
        if not delivered:
            dest, payload = my_msg
            ctx.write(("mbox", rnd, dest), (pid, payload))
        yield
        # Step B: writers read back to learn the Arbitrary winner; the
        # destination's reader copies the message out.
        handle = None
        if not delivered:
            handle = ctx.read(("mbox", rnd, my_msg[0]))
        rhandle = None
        if is_reader:
            rhandle = ctx.read(("mbox", rnd, dest_id))
        yield
        if handle is not None:
            winner, _payload = handle.value
            if winner == pid:
                delivered = True
        if rhandle is not None and rhandle.value is not None:
            _winner, payload = rhandle.value
            received.append(payload)
    return received if is_reader else None


def realize_h_relation_crcw(
    rel: HRelation, max_rounds: int | None = None
) -> Tuple[RunResult, List[List[Any]]]:
    """Route ``rel`` (unit-length messages) on an Arbitrary-CRCW PRAM with
    ``p * x̄`` processors in ``O(ȳ) <= O(h)`` rounds.

    Returns ``(run_result, delivered)`` where ``delivered[i]`` is the list
    of payloads received by destination ``i`` (payload = source id).
    ``run_result.time`` counts PRAM steps; dividing a BSP(g) superstep's
    ``g·h`` charge by it is the Section 4.1 conversion factor.
    """
    if np.any(rel.length != 1):
        raise ValueError("the CRCW realization handles unit-length messages")
    p = rel.p
    x = rel.sizes
    x_bar = max(1, int(x.max()) if x.size else 0)
    y_bar = int(rel.recv_sizes.max()) if rel.n else 0
    rounds = max_rounds if max_rounds is not None else max(1, y_bar)

    # Assign message k-of-source-i to engine processor i*x_bar + k.
    msgs_of = _msgs_by_source(rel)
    per_proc = []
    for i in range(p):
        for k in range(x_bar):
            my = msgs_of[i][k] if k < len(msgs_of[i]) else None
            per_proc.append((my, k == 0))

    pram = PRAM(MachineParams(p=p * x_bar), rule=ConcurrencyRule.CRCW)
    res = pram.run(_team_program, args=(x_bar, rounds), per_proc_args=per_proc)
    delivered = [res.results[i * x_bar] or [] for i in range(p)]
    return res, delivered


# ----------------------------------------------------------------------
# Constant-time CRCW maximum with p^2 processors (Step 1 of §4.1)
# ----------------------------------------------------------------------


def _max_program(ctx, p: int, value):
    """Processors ``0..p-1`` hold values; processors ``p + i*p + j`` are the
    comparison grid.  Three O(1) steps: publish, knock out, read winner."""
    pid = ctx.pid
    if pid < p:
        ctx.write(("val", pid), value)
        ctx.write(("win", pid), 1)
    yield
    hi = hj = None
    if pid >= p:
        k = pid - p
        i, j = divmod(k, p)
        if i != j:
            hi = ctx.read(("val", i))
            hj = ctx.read(("val", j))
    yield
    if pid >= p and hi is not None:
        k = pid - p
        i, j = divmod(k, p)
        vi, vj = hi.value, hj.value
        # i is knocked out if a strictly larger value exists (ties broken by id)
        if (vi, i) < (vj, j):
            ctx.write(("win", i), 0)
    yield
    handles = None
    if pid < p:
        handles = ctx.read(("win", pid))
    yield
    if pid < p and handles.value == 1:
        ctx.write(("max",), value)
    yield
    out = ctx.read(("max",))
    yield
    return out.value


def crcw_max(values: Sequence[float]) -> Tuple[RunResult, float]:
    """Maximum of ``p`` values in O(1) CRCW steps using ``p + p^2``
    processors.  Returns ``(run_result, maximum)`` with every processor
    knowing the answer."""
    p = len(values)
    if p == 0:
        raise ValueError("crcw_max needs at least one value")
    pram = PRAM(MachineParams(p=p + p * p), rule=ConcurrencyRule.CRCW)
    per_proc = [(values[i] if i < p else None,) for i in range(p + p * p)]
    res = pram.run(_max_program, args=(p,), per_proc_args=per_proc)
    return res, res.results[0]


# ----------------------------------------------------------------------
# The lower-bound conversion itself
# ----------------------------------------------------------------------


def bsp_lower_bound_from_crcw(crcw_time_lower: float, g: float) -> float:
    """Section 4.1: a CRCW PRAM time lower bound ``t(n)`` (unbounded local
    computation, polynomial processors) implies a ``Ω(g · t(n))`` lower
    bound on the BSP(g), because the CRCW realizes each superstep's
    h-relation in ``O(h)`` steps while the BSP(g) pays ``g·h``."""
    if g < 1:
        raise ValueError(f"gap g must be >= 1, got {g}")
    return g * crcw_time_lower


def bsp_lower_bound_from_crcw_randomized(
    crcw_time_lower: float, g: float, L: float, p: int
) -> float:
    """Section 4.1, randomized version: a randomized CRCW time lower bound
    ``t(n)`` lifts to ``g · t(n) · min((L+g)/(g·lg* p), 1)`` on the
    BSP(g), via the ``O(h + lg* p)``-time w.h.p. CRCW h-relation algorithm
    (approximate integer sorting + nearest-zero).  For ``L >= g·lg* p``
    this is the full ``g · t(n)``."""
    from repro.util.intmath import log_star

    if g < 1:
        raise ValueError(f"gap g must be >= 1, got {g}")
    ls = max(1, log_star(p))
    return g * crcw_time_lower * min((L + g) / (g * ls), 1.0)


def bsp_lower_bound_from_crcw_deterministic(
    crcw_time_lower: float, g: float
) -> float:
    """Section 4.1, deterministic version: a deterministic time lower bound
    on a ``(p lg lg p)``-processor Arbitrary-CRCW PRAM lifts to the full
    ``g · t(n)`` on the ``p``-processor BSP(g), via the O(h)-time,
    ``lg lg p``-factor-work h-relation realization (integer chain sorting
    for ``x̄ >= lg lg p``, write-retry teams below)."""
    if g < 1:
        raise ValueError(f"gap g must be >= 1, got {g}")
    return g * crcw_time_lower


def _randomized_team_program(ctx, x_bar: int, bucket: int, max_rounds: int, my_msg, is_reader: bool, seed: int):
    """Randomized delivery: each undelivered message throws a dart at a
    random cell of its destination's bucket each round; Arbitrary-CRCW
    resolves collisions, winners retire.  With bucket size ``c·h`` and at
    most ``h`` contenders per destination, each dart lands with constant
    probability, so all messages land within ``O(lg n)`` rounds w.h.p."""
    import random as _random

    pid = ctx.pid
    rng = _random.Random(seed)
    dest_id = pid // x_bar
    delivered = my_msg is None
    rounds_used = 0

    for rnd in range(max_rounds):
        # Probe-then-claim: darts target only cells observed empty, so a
        # landed message is never clobbered by later rounds (nobody writes
        # to a non-empty cell).
        cell = rng.randrange(bucket) if not delivered else 0
        probe = None
        if not delivered:
            probe = ctx.read(("bkt", my_msg[0], cell))
        yield
        wrote = False
        if probe is not None and probe.value is None:
            dest, payload = my_msg
            ctx.write(("bkt", dest, cell), (pid, payload))
            wrote = True
        yield
        handle = None
        if wrote:
            handle = ctx.read(("bkt", my_msg[0], cell))
        yield
        if handle is not None and handle.value is not None:
            winner, _payload = handle.value
            if winner == pid:
                delivered = True
                rounds_used = rnd + 1

    # Readers scan their bucket in O(bucket) = O(c·h) steps, one cell/step.
    received = []
    if is_reader:
        for cell in range(bucket):
            h = ctx.read(("bkt", dest_id, cell))
            yield
            if h.value is not None:
                received.append(h.value[1])
    else:
        for _ in range(bucket):
            yield
    return (received, rounds_used) if is_reader else (None, rounds_used)


def realize_h_relation_crcw_randomized(
    rel: HRelation,
    c: int = 4,
    max_rounds: int | None = None,
    seed=None,
) -> Tuple[RunResult, List[List[Any]]]:
    """Randomized CRCW h-relation delivery in ``O(h + lg n)`` steps w.h.p.
    (the practical face of §4.1's randomized conversion, whose full
    ``O(h + lg* p)`` bound uses approximate integer sorting).

    Each message's team processor darts into its destination's size-``c·h``
    bucket until it wins a cell; destinations then scan their buckets.
    Raises :class:`RuntimeError` if a message fails to land within
    ``max_rounds`` (exponentially unlikely for ``c >= 2``).
    """
    import math as _math

    from repro.util.rng import as_generator

    if np.any(rel.length != 1):
        raise ValueError("the CRCW realization handles unit-length messages")
    if c < 2:
        raise ValueError(f"bucket factor c must be >= 2, got {c}")
    p = rel.p
    x = rel.sizes
    x_bar = max(1, int(x.max()) if x.size else 0)
    h = max(x_bar, rel.y_bar, 1)
    bucket = c * h
    if max_rounds is None:
        max_rounds = 4 * (int(_math.log2(max(2, rel.n + 1))) + 1) + 8

    msgs_of = _msgs_by_source(rel)
    rng = as_generator(seed)
    seeds = rng.integers(0, 2**62, size=p * x_bar)
    per_proc = []
    for i in range(p):
        for k in range(x_bar):
            my = msgs_of[i][k] if k < len(msgs_of[i]) else None
            per_proc.append((my, k == 0, int(seeds[i * x_bar + k])))

    pram = PRAM(MachineParams(p=p * x_bar), rule=ConcurrencyRule.CRCW)
    res = pram.run(
        _randomized_team_program,
        args=(x_bar, bucket, max_rounds),
        per_proc_args=per_proc,
    )
    # verify every message landed
    expected = rel.n
    delivered = [res.results[i * x_bar][0] or [] for i in range(p)]
    got = sum(len(d) for d in delivered)
    if got != expected:
        raise RuntimeError(
            f"randomized delivery incomplete: {got}/{expected} messages landed "
            f"within {max_rounds} rounds (increase c or max_rounds)"
        )
    return res, delivered
