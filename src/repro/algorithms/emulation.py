"""Model emulations (Section 4 opening + the generic PRAM mapping).

Three executable translations between models:

1. **Local-on-global** (:func:`grouping_emulation_time`): any QSM(g)/BSP(g)
   algorithm runs on the matching QSM(m)/BSP(m) with the *same* time bound,
   by grouping processors into ``g = p/m`` groups of ``m`` and giving each
   group its own sub-slot of every communication step.  In this library the
   emulation is realized mechanically by :meth:`Proc.stagger_slot` (engine)
   and :func:`repro.scheduling.naive.grouped_schedule` (schedules); here we
   expose the time accounting and an executable checker.

2. **PRAM-on-QSM(m)** (:class:`PRAMTrace`, :func:`simulate_trace_on_qsm_m`):
   an EREW/QRQW PRAM algorithm with time ``t(n)`` and work ``w(n)`` becomes
   a QSM(m) algorithm of time ``O(n/m + t(n) + w(n)/m)`` — distribute the
   input over the first ``m`` processors (``n/m``), then execute each PRAM
   step with its ``w_s`` operations spread over the ``m`` processors
   (``w_s/m`` slots, never exceeding ``m`` requests per slot).  We evaluate
   this on explicit per-step traces so the bound is *measured*, not assumed.

3. **BSP(m)-on-self-scheduling** (:func:`self_scheduling_transfer`): the
   Section 2 claim that the simplified metric ``max(w, h, n/m, L)`` is
   realizable on the true BSP(m) within ``(1+eps)`` w.h.p. — each superstep
   of a self-scheduled program is turned into an Unbalanced-Send schedule
   and re-priced under the exponential penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.costs import EXPONENTIAL, PenaltyFunction
from repro.scheduling.analysis import evaluate_schedule
from repro.scheduling.static_send import unbalanced_send
from repro.util.intmath import ceil_div
from repro.util.rng import SeedLike
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation

__all__ = [
    "grouping_emulation_time",
    "PRAMTrace",
    "simulate_trace_on_qsm_m",
    "self_scheduling_transfer",
]


def grouping_emulation_time(local_time: float) -> float:
    """Time of a locally-limited algorithm after the grouping emulation on
    the matched globally-limited machine (``p/g = m``): identical.

    Each communication step of cost ``g·h`` becomes ``g`` sub-steps in which
    one group of ``m`` processors sends; ``h`` messages per processor over
    ``g`` sub-slots costs ``g·h`` slots at load ``<= m`` each — the same
    charge.  The function is the identity, stated as code so the claim is
    part of the tested API surface.
    """
    return local_time


@dataclass
class PRAMTrace:
    """Per-step operation counts of a PRAM algorithm.

    ``ops[s]`` is the number of shared-memory operations (reads + writes)
    the PRAM performs at step ``s``; ``t = len(ops)`` and ``w = sum(ops)``.
    A trace is all the mapping needs — *which* cells are touched does not
    change the QSM(m) charge as long as the per-slot cap is respected,
    which the round-robin assignment guarantees.
    """

    ops: np.ndarray
    input_size: int

    def __post_init__(self) -> None:
        self.ops = np.asarray(self.ops, dtype=np.int64)
        if np.any(self.ops < 0):
            raise ValueError("operation counts must be non-negative")
        check_positive("input_size", self.input_size)

    @property
    def t(self) -> int:
        return int(self.ops.size)

    @property
    def w(self) -> int:
        return int(self.ops.sum())

    @staticmethod
    def balanced(t: int, work_per_step: int, input_size: int) -> "PRAMTrace":
        """A uniform trace (e.g. a balanced tree algorithm)."""
        return PRAMTrace(np.full(t, work_per_step), input_size)

    @staticmethod
    def geometric(n: int, ratio: float = 0.5) -> "PRAMTrace":
        """A geometrically shrinking trace — the shape of reduction trees
        and contraction algorithms (``w = O(n)``, ``t = O(lg n)``)."""
        ops = []
        live = n
        while live > 1:
            ops.append(live)
            live = max(1, int(live * ratio))
        ops.append(1)
        return PRAMTrace(np.asarray(ops), n)


def simulate_trace_on_qsm_m(trace: PRAMTrace, m: int) -> Tuple[float, float]:
    """Measured QSM(m) time of the naive PRAM simulation, vs. the paper's
    bound.

    Returns ``(measured, bound)`` where ``measured`` is the exact slot count
    (input distribution ``ceil(n/m)`` plus ``ceil(w_s/m)`` slots per PRAM
    step, each slot carrying at most ``m`` requests) and ``bound`` is the
    paper's ``n/m + t + w/m``.
    """
    check_positive("m", m)
    distribute = ceil_div(trace.input_size, m)
    per_step = np.maximum(1, -(-trace.ops // m))  # ceil(w_s / m), min 1 step
    measured = float(distribute + int(per_step.sum()))
    bound = trace.input_size / m + trace.t + trace.w / m
    return measured, bound


def self_scheduling_transfer(
    rel: HRelation,
    m: int,
    epsilon: float = 0.1,
    seed: SeedLike = None,
    L: float = 1.0,
    penalty: PenaltyFunction = EXPONENTIAL,
) -> Tuple[float, float, float]:
    """Price one self-scheduled superstep against its BSP(m) realization.

    Returns ``(self_scheduling_cost, bsp_m_cost, ratio)``: the simplified
    metric charges ``max(h, n/m, L)``; the realization schedules the same
    messages with Unbalanced-Send and prices them under ``penalty``.
    Theorem 6.2 says ``ratio <= 1 + eps`` w.h.p. (plus the ``tau`` term,
    excluded here as both sides know ``n``).
    """
    self_cost = max(float(rel.h), rel.n / m, float(L))
    sched = unbalanced_send(rel, m, epsilon, seed)
    report = evaluate_schedule(sched, m=m, L=L, penalty=penalty)
    real_cost = report.superstep_cost
    ratio = real_cost / self_cost if self_cost else 1.0
    return self_cost, real_cost, ratio
