"""The paper's basic algorithms (Table 1) and emulations (Section 4).

Every problem has implementations on the locally-limited and the
globally-limited machines, structured so the Table-1 bounds are met term by
term; the benchmarks measure the separation between them.
"""

from repro.algorithms.broadcast import (
    broadcast,
    broadcast_bit_nonreceipt,
    default_branching,
)
from repro.algorithms.one_to_all import one_to_all
from repro.algorithms.prefix import reduce_all, summation, parity, prefix_sums
from repro.algorithms.list_ranking import (
    list_ranking_wyllie,
    list_ranking_contraction,
    random_list,
    sequential_ranks,
)
from repro.algorithms.sorting import (
    columnsort,
    columnsort_reference,
    choose_columns,
    local_sort_work,
)
from repro.algorithms.sample_sort import sample_sort
from repro.algorithms.qsm_on_bsp import run_qsm_program_on_bsp, SharedMemoryProxy
from repro.algorithms.h_relation import (
    realize_h_relation_crcw,
    realize_h_relation_crcw_randomized,
    crcw_max,
    bsp_lower_bound_from_crcw,
    bsp_lower_bound_from_crcw_randomized,
    bsp_lower_bound_from_crcw_deterministic,
)
from repro.algorithms.emulation import (
    grouping_emulation_time,
    PRAMTrace,
    simulate_trace_on_qsm_m,
    self_scheduling_transfer,
)
from repro.algorithms.pram_algorithms import (
    pram_prefix_sums,
    pram_wyllie_ranks,
    trace_from_run,
)
from repro.algorithms.total_exchange import (
    latin_square_schedule,
    chatting_schedule_centralized,
    chatting_schedule_distributed,
    total_exchange_lower_bound,
)
from repro.algorithms.primitives import Comm, BSPComm, QSMComm, comm_for

__all__ = [
    "broadcast",
    "broadcast_bit_nonreceipt",
    "default_branching",
    "one_to_all",
    "reduce_all",
    "summation",
    "parity",
    "prefix_sums",
    "list_ranking_wyllie",
    "list_ranking_contraction",
    "random_list",
    "sequential_ranks",
    "columnsort",
    "columnsort_reference",
    "choose_columns",
    "local_sort_work",
    "sample_sort",
    "run_qsm_program_on_bsp",
    "SharedMemoryProxy",
    "realize_h_relation_crcw",
    "realize_h_relation_crcw_randomized",
    "crcw_max",
    "bsp_lower_bound_from_crcw",
    "bsp_lower_bound_from_crcw_randomized",
    "bsp_lower_bound_from_crcw_deterministic",
    "grouping_emulation_time",
    "PRAMTrace",
    "simulate_trace_on_qsm_m",
    "self_scheduling_transfer",
    "Comm",
    "BSPComm",
    "QSMComm",
    "comm_for",
    "latin_square_schedule",
    "chatting_schedule_centralized",
    "chatting_schedule_distributed",
    "total_exchange_lower_bound",
    "pram_prefix_sums",
    "pram_wyllie_ranks",
    "trace_from_run",
]
