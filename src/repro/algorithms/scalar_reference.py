"""Frozen scalar baselines for the vectorized algorithm programs.

The algorithm layer (`sorting`, `sample_sort`, `list_ranking`,
`one_to_all`, `qsm_on_bsp`, `primitives`) is written in the engine's
columnar idiom — ``send_many`` / ``read_many`` / ``write_many`` with
explicit slot arrays and ``ctx.receive().payloads`` on the receive side.
The porting contract is *bit-identical model times*: a batch program and
the scalar per-key loop it replaced must produce the same
``RunResult.time``, per-superstep costs and stats, message/flit totals,
and program results on every machine model.

This module keeps the scalar originals alive, verbatim, as the reference
side of that contract (``tests/test_algorithm_vectorization.py``) and as
the "seed" side of the end-to-end speedup benchmark
(``benchmarks/bench_algorithms_e2e.py``).  They are *frozen*: do not
optimize them — their entire value is that they still issue one engine
call per key.
"""

from __future__ import annotations

import math
import random as _random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.primitives import Comm, Key, OutTriple
from repro.algorithms.qsm_on_bsp import SharedMemoryProxy, _owner
from repro.algorithms.sorting import _NEG, _POS, local_sort_work
from repro.core.engine import Machine, RunResult
from repro.util.intmath import ceil_div, ilog2
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "one_to_all_bsp_scalar",
    "one_to_all_qsm_scalar",
    "columnsort_bsp_scalar",
    "columnsort_qsm_scalar",
    "contraction_scalar",
    "emulation_scalar",
    "run_qsm_on_bsp_scalar",
    "BSPCommScalar",
    "QSMCommScalar",
    "sample_sort_scalar_program",
    "sample_sort_scalar",
    "reduce_tree_bsp_scalar",
    "reduce_funnel_bsp_scalar",
    "reduce_tree_qsm_scalar",
    "reduce_funnel_qsm_scalar",
]

NIL = -1


# ----------------------------------------------------------------------
# one_to_all (Table 1, row 1)
# ----------------------------------------------------------------------


def one_to_all_bsp_scalar(ctx, payloads: Sequence[Any], root: int):
    if ctx.pid == root:
        k = 0
        for dest in range(ctx.nprocs):
            if dest == root:
                continue
            ctx.send(dest, payloads[dest], slot=k)
            k += 1
    yield
    if ctx.pid == root:
        return payloads[root]
    msgs = ctx.receive()
    return msgs[0].payload if msgs else None


def one_to_all_qsm_scalar(ctx, payloads: Sequence[Any], root: int):
    if ctx.pid == root:
        k = 0
        for dest in range(ctx.nprocs):
            if dest == root:
                continue
            ctx.write(("o2a", dest), payloads[dest], slot=k)
            k += 1
    yield
    handle = None
    if ctx.pid != root:
        handle = ctx.read(("o2a", ctx.pid), slot=ctx.stagger_slot())
    yield
    if ctx.pid == root:
        return payloads[root]
    return handle.value if handle is not None else None


# ----------------------------------------------------------------------
# columnsort (Table 1, row 5)
# ----------------------------------------------------------------------


def columnsort_bsp_scalar(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    offset = pid * per
    for k, key in enumerate(chunk):
        g = offset + k
        ctx.send(g // r, (g % r, float(key)), slot=k * groups + pid // m_cap)
    yield

    col = np.full(r, _POS)
    if pid < s:
        for msg in ctx.receive():
            row, key = msg.payload
            col[row] = key
    elif pid == s:
        ctx.receive()

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    def permute(dest_cols: np.ndarray, dest_rows: np.ndarray):
        for k in range(r):
            ctx.send(int(dest_cols[k]), (int(dest_rows[k]), float(col[k])), slot=k)

    rows = np.arange(r)

    # ---- step 1 + 2 ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows
        dc, dr = kidx % s, kidx // s
        permute(dc, dr)
    yield
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 3 + 4 ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid
        dc, dr = k2 // r, k2 % r
        permute(dc, dr)
    yield
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        dc, dr = kidx // r, kidx % r
        permute(dc, dr)
    yield
    if pid <= s:
        newcol = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            newcol[shift:] = _POS
            newcol[:shift] = _NEG
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        for k in range(r):
            if valid[k]:
                ctx.send(int(kidx[k] // r), (int(kidx[k] % r), float(col[k])), slot=k)
    yield
    sorted_col = None
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        sorted_col = newcol

    # ---- collect ----
    per_proc = ceil_div(n, p)
    if pid < s:
        for k in range(r):
            g = pid * r + k
            if g < n:
                ctx.send(g // per_proc, (g % per_proc, float(sorted_col[k])), slot=k)
    yield
    mine = [None] * per_proc
    for msg in ctx.receive():
        idx, key = msg.payload
        mine[idx] = key
    return [x for x in mine if x is not None]


def columnsort_qsm_scalar(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    offset = pid * per
    for k, key in enumerate(chunk):
        g = offset + k
        ctx.write(("cs", 0, g // r, g % r), float(key), slot=k * groups + pid // m_cap)
    yield

    def read_column(step: int):
        return [ctx.read(("cs", step, pid, row), slot=row) for row in range(r)]

    col = np.full(r, _POS)
    handles = read_column(0) if pid < s else []
    yield
    if pid < s:
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    rows = np.arange(r)

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    def write_perm(step: int, dest_cols, dest_rows, valid=None):
        for k in range(r):
            if valid is not None and not valid[k]:
                continue
            ctx.write(
                ("cs", step, int(dest_cols[k]), int(dest_rows[k])),
                float(col[k]),
                slot=k,
            )

    # ---- step 1 + 2 (transpose) ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows
        write_perm(2, kidx % s, kidx // s)
    yield
    handles = read_column(2) if pid < s else []
    yield
    if pid < s:
        col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 3 + 4 (untranspose) ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid
        write_perm(4, k2 // r, k2 % r)
    yield
    handles = read_column(4) if pid < s else []
    yield
    if pid < s:
        col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        write_perm(6, kidx // r, kidx % r)
    yield
    handles = read_column(6) if pid <= s else []
    yield
    if pid <= s:
        col = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            col[shift:] = _POS
            col[:shift] = _NEG
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        write_perm(8, np.where(valid, kidx // r, 0), np.where(valid, kidx % r, 0), valid)
    yield
    handles = read_column(8) if pid < s else []
    yield
    sorted_col = None
    if pid < s:
        sorted_col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                sorted_col[row] = h.value

    # ---- collect ----
    per_proc = ceil_div(n, p)
    if pid < s:
        slot = 0
        for k in range(r):
            g = pid * r + k
            if g < n:
                ctx.write(("out", g // per_proc, g % per_proc), float(sorted_col[k]), slot=slot)
                slot += 1
    yield
    out_handles = [
        ctx.read(("out", pid, j), slot=ctx.stagger_slot())
        for j in range(per_proc)
        if pid * per_proc + j < n
    ]
    yield
    return [h.value for h in out_handles if h.value is not None]


# ----------------------------------------------------------------------
# list-ranking contraction (Table 1, row 4)
# ----------------------------------------------------------------------


def contraction_scalar(ctx, a: int, max_rounds: int, nodes: Dict[int, int], seed: int):
    pid = ctx.pid
    if pid >= a:
        for _ in range(2 * max_rounds + 1 + max_rounds + 1):
            yield
        return {}

    rng = _random.Random(seed)
    owner = lambda v: v % a  # noqa: E731
    succ = dict(nodes)
    weight = {u: (0 if s == NIL else 1) for u, s in succ.items()}
    alive = set(succ)
    spliced_at: Dict[int, List[Tuple[int, int, int]]] = {}
    splice_round_of: Dict[int, int] = {}

    slot = 0

    def stag() -> int:
        nonlocal slot
        s = slot
        slot += 1
        return s

    for rnd in range(max_rounds):
        slot = 0
        coins = {u: rng.random() < 0.5 for u in sorted(alive)}
        for u in sorted(alive):
            if succ[u] != NIL:
                ctx.send(owner(succ[u]), ("c", u, succ[u], coins[u]), slot=stag())
                ctx.work(1)
        yield
        slot = 0
        grants = []
        for msg in ctx.receive():
            _tag, u, v, coin_u = msg.payload
            if v in alive:
                if coin_u and not coins[v]:
                    grants.append((v, u))
        for v, u in grants:
            ctx.send(owner(u), ("s", v, u, succ[v], weight[v]), slot=stag())
            ctx.work(1)
            alive.discard(v)
            splice_round_of[v] = rnd
        yield
        for msg in ctx.receive():
            _tag, v, u, sv, wv = msg.payload
            spliced_at.setdefault(rnd, []).append((u, v, weight[u]))
            weight[u] += wv
            succ[u] = sv
            ctx.work(1)

    ranks: Dict[int, int] = {}
    leftovers = [u for u in alive if succ[u] != NIL]
    for u in alive:
        if succ[u] == NIL:
            ranks[u] = weight[u]
    yield

    for rnd in range(max_rounds - 1, -1, -1):
        slot = 0
        for (u, v, w_before) in spliced_at.get(rnd, ()):
            if u in ranks:
                ctx.send(owner(v), ("f", v, ranks[u] - w_before), slot=stag())
                ctx.work(1)
        yield
        for msg in ctx.receive():
            _tag, v, rank_v = msg.payload
            ranks[v] = rank_v

    return {"ranks": ranks, "unfinished": leftovers}


# ----------------------------------------------------------------------
# QSM-on-BSP emulation (Section 4 mapping)
# ----------------------------------------------------------------------


def emulation_scalar(ctx, qsm_program: Callable, extra_args: tuple, proc_extra: tuple = ()):
    proxy = SharedMemoryProxy(ctx)
    gen = qsm_program(proxy, *extra_args, *proc_extra)
    if not hasattr(gen, "__next__"):
        return gen
    result = None
    cells: Dict[Any, Any] = {}

    while True:
        try:
            next(gen)
            finished = False
        except StopIteration as stop:
            result = stop.value
            finished = True

        reads, proxy._reads = proxy._reads, []
        writes, proxy._writes = proxy._writes, []

        for i, handle in enumerate(reads):
            ctx.send(
                _owner(handle.addr, ctx.nprocs),
                ("r", ctx.pid, i, handle.addr),
                slot=ctx.stagger_slot(),
            )
        for addr, value in writes:
            ctx.send(
                _owner(addr, ctx.nprocs),
                ("w", ctx.pid, addr, value),
                slot=ctx.stagger_slot(),
            )
        yield

        msgs = ctx.receive()
        read_reqs = [m.payload for m in msgs if m.payload[0] == "r"]
        write_reqs = [m.payload for m in msgs if m.payload[0] == "w"]
        for _tag, requester, idx, addr in read_reqs:
            ctx.send(requester, ("v", idx, cells.get(addr)), slot=ctx.stagger_slot())
        for _tag, _writer, addr, value in write_reqs:
            cells[addr] = value
        yield

        for msg in ctx.receive():
            _tag, idx, value = msg.payload
            reads[idx]._value = value
            reads[idx]._set = True

        if finished:
            return result


def run_qsm_on_bsp_scalar(
    machine: Machine,
    qsm_program: Callable,
    *,
    args: tuple = (),
    per_proc_args: Optional[Sequence[tuple]] = None,
) -> RunResult:
    """Scalar twin of :func:`repro.algorithms.qsm_on_bsp.run_qsm_program_on_bsp`."""
    if machine.uses_shared_memory:
        raise ValueError("the emulation targets message-passing machines")
    wrapped = (
        [(tuple(pp) if isinstance(pp, tuple) else (pp,),) for pp in per_proc_args]
        if per_proc_args is not None
        else None
    )
    return machine.run(
        emulation_scalar,
        args=(qsm_program, args),
        per_proc_args=wrapped,
    )


# ----------------------------------------------------------------------
# keyed-exchange adapters
# ----------------------------------------------------------------------


class BSPCommScalar(Comm):
    """Scalar twin of :class:`repro.algorithms.primitives.BSPComm`."""

    phases = 1

    def exchange(self, ctx, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        for dest, key, value in out:
            ctx.send(dest, (key, value), slot=ctx.stagger_slot())
        yield
        received: Dict[Key, Any] = {}
        for msg in ctx.receive():
            key, value = msg.payload
            received[key] = value
        return received


class QSMCommScalar(Comm):
    """Scalar twin of :class:`repro.algorithms.primitives.QSMComm`."""

    phases = 2

    def exchange(self, ctx, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        for _dest, key, value in out:
            ctx.write(key, value, slot=ctx.stagger_slot())
        yield
        handles = [(key, ctx.read(key, slot=ctx.stagger_slot())) for key in expect]
        yield
        return {key: h.value for key, h in handles}


# ----------------------------------------------------------------------
# reductions (Table 1, row 3 skeleton: summation / parity)
# ----------------------------------------------------------------------


def reduce_tree_bsp_scalar(ctx, op, b: int, value: Any):
    """Scalar twin of :func:`repro.algorithms.prefix.reduce_tree_bsp_program`."""
    from repro.algorithms.prefix import _tree_rounds

    pid, p = ctx.pid, ctx.nprocs
    acc = value
    ctx.work(1)
    stride = 1
    for _ in range(_tree_rounds(p, b)):
        block = stride * b
        if pid % stride == 0 and pid % block != 0:
            ctx.send(pid - pid % block, acc, slot=0)
        yield
        if pid % block == 0:
            for msg in ctx.receive():
                acc = op(acc, msg.payload)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


def reduce_funnel_bsp_scalar(ctx, op, a: int, b: int, value: Any):
    """Scalar twin of :func:`repro.algorithms.prefix.reduce_funnel_bsp_program`."""
    from repro.algorithms.prefix import _tree_rounds

    pid, p = ctx.pid, ctx.nprocs
    if pid >= a:
        ctx.send(pid % a, value, slot=pid // a - 1)
    yield
    acc = value
    if pid < a:
        for msg in ctx.receive():
            acc = op(acc, msg.payload)
            ctx.work(1)
    stride = 1
    for _ in range(_tree_rounds(a, b)):
        block = stride * b
        if pid < a and pid % stride == 0 and pid % block != 0:
            ctx.send(pid - pid % block, acc, slot=0)
        yield
        if pid < a and pid % block == 0:
            for msg in ctx.receive():
                acc = op(acc, msg.payload)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


def reduce_tree_qsm_scalar(ctx, op, b: int, value: Any):
    """Scalar twin of :func:`repro.algorithms.prefix.reduce_tree_qsm_program`."""
    from repro.algorithms.prefix import _tree_rounds

    pid, p = ctx.pid, ctx.nprocs
    acc = value
    ctx.work(1)
    stride = 1
    for r in range(_tree_rounds(p, b)):
        block = stride * b
        if pid % stride == 0 and pid % block != 0:
            ctx.write(("red", r, pid), acc, slot=ctx.stagger_slot())
        yield
        handles = []
        if pid % block == 0:
            for child in range(pid + stride, min(pid + block, p), stride):
                handles.append(ctx.read(("red", r, child), slot=ctx.stagger_slot()))
        yield
        for h in handles:
            if h.value is not None:
                acc = op(acc, h.value)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


def reduce_funnel_qsm_scalar(ctx, op, a: int, b: int, value: Any):
    """Scalar twin of :func:`repro.algorithms.prefix.reduce_funnel_qsm_program`."""
    from repro.algorithms.prefix import _tree_rounds

    pid, p = ctx.pid, ctx.nprocs
    if pid >= a:
        ctx.write(("fun", pid), value, slot=pid // a - 1)
    yield
    handles = []
    if pid < a:
        for k, member in enumerate(range(pid + a, p, a)):
            handles.append(ctx.read(("fun", member), slot=k))
    yield
    acc = value
    for h in handles:
        if h.value is not None:
            acc = op(acc, h.value)
            ctx.work(1)
    stride = 1
    for r in range(_tree_rounds(a, b)):
        block = stride * b
        if pid < a and pid % stride == 0 and pid % block != 0:
            ctx.write(("redm", r, pid), acc, slot=0)
        yield
        handles = []
        if pid < a and pid % block == 0:
            for j, child in enumerate(range(pid + stride, min(pid + block, a), stride)):
                handles.append(ctx.read(("redm", r, child), slot=j))
        yield
        for h in handles:
            if h.value is not None:
                acc = op(acc, h.value)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


# ----------------------------------------------------------------------
# sample sort (hand-derived scalar form of the columnar program)
# ----------------------------------------------------------------------


def sample_sort_scalar_program(
    ctx, n: int, k: int, s: int, per: int, m_cap: int, chunk, seed: int
):
    """Per-key scalar twin of ``_sample_sort_program`` — slot for slot: the
    ``i``-th staggered send uses ``i * ceil(p/m_cap) + pid // m_cap``, the
    splitter broadcast to ``dest`` uses ``dest * sz`` with ``size=sz``, and
    the sorter-only phases use plain slot ``i``."""
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)
    base = pid // m_cap

    # ---- phase 1: local sort + samples to processor 0 ----
    local = np.sort(np.asarray(chunk, dtype=np.float64))
    ctx.work(local_sort_work(local.size))
    if local.size:
        idx = np.linspace(0, local.size - 1, num=min(s, local.size)).astype(int)
        samples = local[np.unique(idx)]
        for i in range(samples.size):
            ctx.send(0, samples[i], slot=i * groups + base)
    yield

    # ---- phase 2: processor 0 picks and broadcasts splitters ----
    if pid == 0:
        samples = np.sort(
            np.asarray([m.payload for m in ctx.receive()], dtype=np.float64)
        )
        ctx.work(local_sort_work(samples.size))
        if samples.size and k > 1:
            step = samples.size / k
            pick = np.minimum(
                samples.size - 1, (np.arange(1, k) * step).astype(np.int64)
            )
            splitters = samples[pick]
        else:
            splitters = np.zeros(0)
        sz = max(1, k - 1)
        for dest in range(p):
            ctx.send(dest, splitters, size=sz, slot=dest * sz)
    yield
    inbox = ctx.receive()
    splitters = (
        np.asarray(inbox[0].payload, dtype=np.float64) if len(inbox) else np.zeros(0)
    )

    # ---- phase 3: route keys to bucket sorters ----
    if local.size:
        buckets = np.searchsorted(splitters, local, side="right").astype(np.int64)
        ctx.work(local.size * max(1.0, math.log2(max(2, k))))
        for i in range(local.size):
            ctx.send(int(buckets[i]), local[i], slot=i * groups + base)
    yield
    mine = np.sort(np.asarray([m.payload for m in ctx.receive()], dtype=np.float64))
    ctx.work(local_sort_work(mine.size))

    # ---- phase 4: bucket sizes to processor 0 ----
    if pid < k:
        ctx.send(0, (pid, int(mine.size)), slot=base)
    yield
    if pid == 0:
        sizes = [0] * k
        for msg in ctx.receive():
            bucket, count = msg.payload
            sizes[bucket] = count
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
        for i in range(k):
            ctx.send(i, offsets[i], slot=i)
    yield
    inbox = ctx.receive()
    offset = int(inbox[0].payload) if len(inbox) else 0

    # ---- phase 6: route to final owners ----
    if pid < k and mine.size:
        g = offset + np.arange(mine.size, dtype=np.int64)
        dest = g // per
        for i in range(mine.size):
            ctx.send(int(dest[i]), mine[i], slot=i)
    yield
    final = np.sort(np.asarray([m.payload for m in ctx.receive()], dtype=np.float64))
    return final.tolist()


def sample_sort_scalar(
    machine: Machine,
    keys,
    sorters: Optional[int] = None,
    oversample: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[RunResult, np.ndarray]:
    """Scalar twin of :func:`repro.algorithms.sample_sort.sample_sort` —
    same host-side setup, per-key engine calls."""
    if machine.uses_shared_memory:
        raise ValueError("sample_sort targets message-passing machines")
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size and not np.all(np.isfinite(keys)):
        raise ValueError("keys must be finite")
    n = keys.size
    p = machine.params.p
    m = machine.params.m
    if n == 0:
        res = machine.run(lambda ctx: [])
        return res, np.zeros(0)
    k = sorters if sorters is not None else (min(p, m) if m is not None else p)
    k = max(1, min(k, p))
    s = oversample if oversample is not None else (ilog2(max(2, n)) + 2)
    per = ceil_div(n, p)
    chunks = [keys[i * per : (i + 1) * per] for i in range(p)]
    rng = as_generator(seed)
    res = machine.run(
        sample_sort_scalar_program,
        args=(n, k, s, per, m if m is not None else p, ),
        per_proc_args=[(c, int(rng.integers(0, 2**62))) for c in chunks],
    )
    out: List[float] = []
    for block in res.results:
        if block:
            out.extend(block)
    return res, np.asarray(out, dtype=np.float64)
