"""Model-generic communication primitives.

The Table-1 algorithms run on both message-passing (BSP) and shared-memory
(QSM) machines.  The :class:`Comm` adapters hide the difference behind one
*keyed exchange* primitive so each algorithm is written once:

* on BSP machines, ``exchange`` sends ``(key, value)`` pairs point-to-point
  (staggered injection slots on globally-limited machines) and collects the
  next superstep's inbox;
* on QSM machines, ``exchange`` writes values to shared locations named by
  their keys, then has receivers read the keys they expect (two phases —
  the QSM read rule).

Keys must be hashable and globally unique per exchange round (by convention
``(tag, round, index...)`` tuples).  On QSM machines several receivers may
expect the *same* key — that is a concurrent read and is priced via the
contention term, which is exactly how the QSM broadcast exploits it.

All primitives are generators meant to be driven with ``yield from`` inside
an SPMD program.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.core.engine import Machine, Proc

__all__ = ["Comm", "BSPComm", "QSMComm", "comm_for", "tree_parent", "tree_children"]


Key = Any
OutTriple = Tuple[int, Key, Any]  # (dest_pid, key, value)


class Comm:
    """Abstract keyed-exchange adapter."""

    #: Supersteps consumed per exchange (1 for BSP, 2 for QSM).
    phases: int = 1

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        """Deliver ``(dest, key, value)`` triples; return ``{key: value}``
        for this processor.

        On BSP the result contains whatever arrived (``expect`` is advisory);
        on QSM it contains exactly the ``expect`` keys (missing keys map to
        ``None``, matching unwritten shared memory).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def barrier(self, ctx: Proc):
        """A bare synchronization (one superstep)."""
        yield


class BSPComm(Comm):
    """Keyed exchange over point-to-point messages."""

    phases = 1

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        for dest, key, value in out:
            ctx.send(dest, (key, value), slot=ctx.stagger_slot())
        yield
        received: Dict[Key, Any] = {}
        for msg in ctx.receive():
            key, value = msg.payload
            received[key] = value
        return received


class QSMComm(Comm):
    """Keyed exchange over shared memory.

    The destination pid in the out-triples is ignored (shared memory is
    location-addressed); receivers name what they want via ``expect``.
    """

    phases = 2

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        for _dest, key, value in out:
            ctx.write(key, value, slot=ctx.stagger_slot())
        yield
        handles = [(key, ctx.read(key, slot=ctx.stagger_slot())) for key in expect]
        yield
        return {key: h.value for key, h in handles}


def comm_for(machine: Machine) -> Comm:
    """The right adapter for a machine."""
    return QSMComm() if machine.uses_shared_memory else BSPComm()


# ----------------------------------------------------------------------
# b-ary tree shape helpers (used by reductions and broadcasts)
# ----------------------------------------------------------------------


def tree_parent(pid: int, stride: int, branching: int) -> int:
    """Parent of ``pid`` at a reduce round operating on multiples of
    ``stride`` grouped ``branching`` at a time."""
    block = stride * branching
    return pid - pid % block


def tree_children(pid: int, stride: int, branching: int, limit: int) -> List[int]:
    """Children of ``pid`` at the corresponding broadcast round."""
    block = stride * branching
    return [c for c in range(pid + stride, min(pid + block, limit), stride)]
