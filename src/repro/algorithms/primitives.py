"""Model-generic communication primitives.

The Table-1 algorithms run on both message-passing (BSP) and shared-memory
(QSM) machines.  The :class:`Comm` adapters hide the difference behind one
*keyed exchange* primitive so each algorithm is written once:

* on BSP machines, ``exchange`` sends ``(key, value)`` pairs point-to-point
  (staggered injection slots on globally-limited machines) and collects the
  next superstep's inbox;
* on QSM machines, ``exchange`` writes values to shared locations named by
  their keys, then has receivers read the keys they expect (two phases —
  the QSM read rule).

Keys must be hashable and globally unique per exchange round (by convention
``(tag, round, index...)`` tuples).  On QSM machines several receivers may
expect the *same* key — that is a concurrent read and is priced via the
contention term, which is exactly how the QSM broadcast exploits it.

All primitives are generators meant to be driven with ``yield from`` inside
an SPMD program.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, Proc

__all__ = ["Comm", "BSPComm", "QSMComm", "comm_for", "tree_parent", "tree_children"]


Key = Any
OutTriple = Tuple[int, Key, Any]  # (dest_pid, key, value)


class Comm:
    """Abstract keyed-exchange adapter."""

    #: Supersteps consumed per exchange (1 for BSP, 2 for QSM).
    phases: int = 1

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        """Deliver ``(dest, key, value)`` triples; return ``{key: value}``
        for this processor.

        On BSP the result contains whatever arrived (``expect`` is advisory);
        on QSM it contains exactly the ``expect`` keys (missing keys map to
        ``None``, matching unwritten shared memory).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def barrier(self, ctx: Proc):
        """A bare synchronization (one superstep)."""
        yield


class BSPComm(Comm):
    """Keyed exchange over point-to-point messages."""

    phases = 1

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        triples = list(out)
        if triples:
            ctx.send_many(
                np.fromiter(
                    (d for d, _k, _v in triples), dtype=np.int64, count=len(triples)
                ),
                payloads=[(k, v) for _d, k, v in triples],
                slots=ctx.stagger_slots(len(triples)),
            )
        yield
        received: Dict[Key, Any] = {}
        for key, value in ctx.receive().payloads:
            received[key] = value
        return received


class QSMComm(Comm):
    """Keyed exchange over shared memory.

    The destination pid in the out-triples is ignored (shared memory is
    location-addressed); receivers name what they want via ``expect``.
    """

    phases = 2

    def exchange(self, ctx: Proc, out: Iterable[OutTriple], expect: Sequence[Key] = ()):
        triples = list(out)
        if triples:
            ctx.write_many(
                [k for _d, k, _v in triples],
                [v for _d, _k, v in triples],
                slots=ctx.stagger_slots(len(triples)),
            )
        yield
        expect = list(expect)
        handle = (
            ctx.read_many(expect, slots=ctx.stagger_slots(len(expect)))
            if expect
            else None
        )
        yield
        if handle is None:
            return {}
        return dict(zip(expect, handle.values))


def comm_for(machine: Machine) -> Comm:
    """The right adapter for a machine."""
    return QSMComm() if machine.uses_shared_memory else BSPComm()


# ----------------------------------------------------------------------
# b-ary tree shape helpers (used by reductions and broadcasts)
# ----------------------------------------------------------------------


def tree_parent(pid: int, stride: int, branching: int) -> int:
    """Parent of ``pid`` at a reduce round operating on multiples of
    ``stride`` grouped ``branching`` at a time."""
    block = stride * branching
    return pid - pid % block


def tree_children(pid: int, stride: int, branching: int, limit: int) -> List[int]:
    """Children of ``pid`` at the corresponding broadcast round."""
    block = stride * branching
    return [c for c in range(pid + stride, min(pid + block, limit), stride)]
