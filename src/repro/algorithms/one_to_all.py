"""One-to-all personalized communication — Table 1, row 1.

The root sends a *distinct* message to every other processor (Section 1's
motivating example).  All the communication leaves one processor, so the
pattern is maximally send-unbalanced: ``x̄ = n = p-1``.

* Locally limited: bandwidth forces ``g(p-1)`` — the root pays the gap for
  every message, and no other processor can help (the messages are
  distinct and start at the root).  Time ``Θ(gp)`` on QSM(g), ``Θ(gp+L)``
  on BSP(g).
* Globally limited: the root injects one message per slot and never exceeds
  any aggregate limit ``m >= 1``; time ``Θ(p)`` on QSM(m), ``Θ(p+L)`` on
  BSP(m) — a full ``Θ(g)`` separation.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.engine import Machine, RunResult

__all__ = ["one_to_all", "one_to_all_bsp_program", "one_to_all_qsm_program"]


def one_to_all_bsp_program(ctx, payloads: Sequence[Any], root: int):
    """Root sends ``payloads[i]`` to processor ``i``, one injection per slot."""
    if ctx.pid == root:
        dests = np.delete(np.arange(ctx.nprocs, dtype=np.int64), root)
        ctx.send_many(
            dests,
            payloads=[payloads[int(d)] for d in dests],
            slots=np.arange(dests.size, dtype=np.int64),
        )
    yield
    if ctx.pid == root:
        return payloads[root]
    msgs = ctx.receive()
    return msgs.payloads[0] if msgs else None


def one_to_all_qsm_program(ctx, payloads: Sequence[Any], root: int):
    """Root writes ``payloads[i]`` to cell ``("o2a", i)``; everyone reads
    their own cell (exclusive reads, contention 1)."""
    if ctx.pid == root:
        dests = [d for d in range(ctx.nprocs) if d != root]
        ctx.write_many(
            [("o2a", d) for d in dests],
            [payloads[d] for d in dests],
            slots=np.arange(len(dests), dtype=np.int64),
        )
    yield
    handle = None
    if ctx.pid != root:
        handle = ctx.read(("o2a", ctx.pid), slot=ctx.stagger_slot())
    yield
    if ctx.pid == root:
        return payloads[root]
    return handle.value if handle is not None else None


def one_to_all(
    machine: Machine, payloads: Optional[Sequence[Any]] = None, root: int = 0
) -> RunResult:
    """Run one-to-all personalized communication on any model.

    ``payloads`` defaults to ``[0, 1, ..., p-1]`` (processor ``i`` receives
    ``i``); ``result.results[i]`` is what processor ``i`` ended up with.
    """
    p = machine.params.p
    if payloads is None:
        payloads = list(range(p))
    if len(payloads) != p:
        raise ValueError(f"{len(payloads)} payloads for {p} processors")
    if not (0 <= root < p):
        raise ValueError(f"root {root} out of range")
    if machine.uses_shared_memory:
        return machine.run(one_to_all_qsm_program, args=(payloads, root))
    return machine.run(one_to_all_bsp_program, args=(payloads, root))
