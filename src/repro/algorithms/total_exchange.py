"""Total exchange and the unbalanced total-exchange ("chatting") problem.

Section 3 situates the paper in a long line of total-exchange work: every
ordered pair of processors exchanges a message (matrix transposition, 2-D
FFT, HPF array remapping, h-relation routing all reduce to it).  This
module provides:

* :func:`latin_square_schedule` — the classical optimal schedule for the
  *balanced* total exchange on a globally-limited machine: in round ``r``
  processor ``i`` sends its message for processor ``(i + r) mod p``.  Every
  round is a permutation, so with full-bandwidth staggering the span is
  exactly the lower bound ``(p-1)·ceil(p/m)·len``.

* :func:`chatting_schedule_centralized` — the Bhatt et al. approach the
  paper contrasts with in Section 3: gather all ``p^2`` (source,
  destination, length) triples at one processor, compute an (optimal
  offline) schedule, broadcast it.  Collecting the triples alone costs
  ``Θ(p^2/m + L)`` on the BSP(m).

* :func:`chatting_schedule_distributed` — the paper's alternative: compute
  and broadcast only ``n`` (cost ``tau = O(p/m + L + L lg m / lg L)``) and
  run Unbalanced-Send-Long.  The benchmark shows the crossover: for
  ``n << p^2`` the centralized preprocessing dominates everything.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.params import MachineParams
from repro.scheduling.long_messages import unbalanced_send_long
from repro.scheduling.offline import offline_consecutive_schedule
from repro.scheduling.prefix_broadcast import tau_bound
from repro.scheduling.schedule import Schedule
from repro.util.intmath import ceil_div
from repro.util.rng import SeedLike
from repro.util.validation import check_positive
from repro.workloads.relations import HRelation, total_exchange_relation

__all__ = [
    "latin_square_schedule",
    "chatting_schedule_centralized",
    "chatting_schedule_distributed",
    "total_exchange_lower_bound",
    "run_total_exchange",
]


def total_exchange_lower_bound(p: int, m: int, length: int = 1) -> int:
    """Minimum span of a balanced total exchange on bandwidth ``m``:
    ``max(ceil(n/m), x̄)`` with ``n = p(p-1)·length`` and
    ``x̄ = (p-1)·length``."""
    check_positive("p", p)
    check_positive("m", m)
    n = p * (p - 1) * length
    return max(ceil_div(n, m), (p - 1) * length)


def latin_square_schedule(p: int, m: int, length: int = 1) -> Schedule:
    """The classical round-robin (latin square) total-exchange schedule.

    Round ``r`` (``1 <= r < p``) is the permutation ``i -> (i + r) mod p``;
    within a round the ``p`` senders are staggered ``ceil(p/m)``-wide and a
    message's ``length`` flits run consecutively.  Span =
    ``(p-1) · ceil(p/m) · length`` — equal to the bandwidth lower bound
    whenever ``m | p``, and within one stagger-granule of it otherwise.
    """
    check_positive("p", p)
    check_positive("m", m)
    check_positive("length", length)
    rel = total_exchange_relation(p, length=length)
    groups = ceil_div(p, m)
    # message (i -> j) belongs to round r = (j - i) mod p, r in [1, p)
    rounds = (rel.dest - rel.src) % p
    group_of = rel.src // m
    starts = (rounds - 1) * groups * length + group_of * length
    sched = Schedule.from_message_starts(
        rel, starts.astype(np.int64), algorithm="latin-square", meta={"rounds": float(p - 1)}
    )
    return sched


def run_total_exchange(machine, length: int = 1):
    """Execute the balanced total exchange end-to-end on a message-passing
    machine and verify delivery.

    Globally-limited machines get the optimal latin-square schedule; on
    locally-limited machines no scheduling is needed (Proposition 6.1) and
    flits go back-to-back.  The routing program is the engine's columnar
    fast path (one ``send_many`` per processor), so this doubles as the
    library's all-to-all throughput workload.  Returns the engine
    :class:`~repro.core.engine.RunResult`.
    """
    from repro.scheduling.execute import execute_schedule

    if machine.uses_shared_memory:
        raise ValueError("total exchange routes point-to-point messages; use a BSP machine")
    check_positive("length", length)
    p = machine.params.p
    if machine.params.m is not None:
        sched = latin_square_schedule(p, machine.params.m, length=length)
    else:
        from repro.scheduling.naive import naive_schedule

        sched = naive_schedule(total_exchange_relation(p, length=length))
    return execute_schedule(machine, sched)


def chatting_schedule_centralized(
    rel: HRelation, m: int, L: float = 1.0
) -> Tuple[Schedule, float]:
    """Bhatt-et-al-style centralized scheduling of an unbalanced total
    exchange.

    All message descriptors are collected at processor 0 (``p^2`` triples
    through bandwidth ``m``: ``p^2/m`` time, and processor 0 receives
    ``p^2`` of them — ``Θ(p^2 + L)`` on the BSP(m) as the paper states),
    an offline consecutive schedule is computed centrally, and descriptor
    broadcasting costs another gather's worth.  Returns
    ``(schedule, preprocessing_time)``; the schedule itself is near-optimal
    — the point is the preprocessing bill.
    """
    check_positive("m", m)
    sched = offline_consecutive_schedule(rel, m)
    p = rel.p
    n_desc = p * p  # one (source, dest, length) triple per ordered pair
    gather = max(n_desc / m, float(n_desc)) + L  # recv side dominates: p^2
    scatter = max(n_desc / m, float(n_desc)) + L
    preprocessing = gather + scatter
    sched.algorithm = "chatting-centralized"
    sched.meta["preprocessing"] = preprocessing
    return sched, preprocessing


def chatting_schedule_distributed(
    rel: HRelation,
    m: int,
    L: float = 1.0,
    epsilon: float = 0.2,
    seed: SeedLike = None,
) -> Tuple[Schedule, float]:
    """The paper's approach: compute and broadcast only ``n`` (cost
    ``tau``), then run the long-message Unbalanced-Send.  Returns
    ``(schedule, preprocessing_time)`` with
    ``preprocessing = tau = O(p/m + L + L lg m / lg L)``."""
    check_positive("m", m)
    params = MachineParams(p=rel.p, m=m, L=L)
    tau = tau_bound(params)
    sched = unbalanced_send_long(rel, m, epsilon, seed=seed)
    sched.algorithm = "chatting-distributed"
    sched.meta["preprocessing"] = tau
    return sched, tau
