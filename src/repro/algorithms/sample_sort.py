"""Randomized sample sort — the splitter-based alternative to columnsort.

Columnsort (the paper's choice, via Adler–Byers–Karp) is deterministic but
needs ``r >= 2(s-1)^2``.  Sample sort is the classical randomized
counterpart used by the BSP sorting literature the paper cites (e.g.
Gerbessiotis–Siniolakis): oversample, pick splitters, route keys to
buckets, sort locally.  With oversampling ``Θ(lg n)`` the buckets balance
to ``O(n/k)`` w.h.p., so the communication is a balanced ``Θ(n/m)``
h-relation on the globally-limited machines — the same Table-1 shape, with
a randomized instead of worst-case guarantee.  The ablation benchmark
compares the two.

Phases (each one engine superstep, staggered injection throughout):

1. local sort; every processor ships ``oversample`` evenly-spaced local
   samples to processor 0;
2. processor 0 sorts the ``p·s`` samples, picks ``k-1`` splitters and
   ships the splitter vector to every *input* processor;
3. every processor routes each key to its bucket's sorter
   (``searchsorted`` against the splitters);
4. sorters sort their buckets and ship the bucket sizes to processor 0,
   which prefix-sums them into global offsets;
5. offsets return to the sorters;
6. sorters route every key to its final owner (``global_rank // (n/p)``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.algorithms.sorting import local_sort_work
from repro.util.intmath import ceil_div, ilog2
from repro.util.rng import SeedLike, as_generator

__all__ = ["sample_sort"]


def _sample_sort_program(
    ctx, n: int, k: int, s: int, per: int, m_cap: int, chunk, seed: int
):
    # Written in the engine's columnar idiom: every high-volume phase is one
    # ``send_many`` of array columns (keys travel as float64 payload arrays)
    # and receivers read ``ctx.receive().payloads`` without materializing
    # Message objects.  Slot patterns are identical to the scalar original.
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)
    base = pid // m_cap

    def stag_arr(count: int) -> np.ndarray:
        return np.arange(count, dtype=np.int64) * groups + base

    # ---- phase 1: local sort + samples to processor 0 ----
    local = np.sort(np.asarray(chunk, dtype=np.float64))
    ctx.work(local_sort_work(local.size))
    if local.size:
        # evenly spaced (regular) samples from the sorted local run
        idx = np.linspace(0, local.size - 1, num=min(s, local.size)).astype(int)
        samples = local[np.unique(idx)]
        ctx.send_many(
            np.zeros(samples.size, dtype=np.int64),
            payloads=samples,
            slots=stag_arr(samples.size),
        )
    yield

    # ---- phase 2: processor 0 picks and broadcasts splitters ----
    if pid == 0:
        samples = np.sort(np.asarray(ctx.receive().payloads, dtype=np.float64))
        ctx.work(local_sort_work(samples.size))
        if samples.size and k > 1:
            step = samples.size / k
            pick = np.minimum(
                samples.size - 1, (np.arange(1, k) * step).astype(np.int64)
            )
            splitters = samples[pick]
        else:
            splitters = np.zeros(0)
        sz = max(1, k - 1)
        ctx.send_many(
            np.arange(p, dtype=np.int64),
            payloads=[splitters] * p,
            sizes=np.full(p, sz, dtype=np.int64),
            slots=np.arange(p, dtype=np.int64) * sz,
        )
    yield
    inbox = ctx.receive()
    splitters = (
        np.asarray(inbox.payloads[0], dtype=np.float64) if len(inbox) else np.zeros(0)
    )

    # ---- phase 3: route keys to bucket sorters ----
    if local.size:
        buckets = np.searchsorted(splitters, local, side="right").astype(np.int64)
        ctx.work(local.size * max(1.0, math.log2(max(2, k))))
        ctx.send_many(buckets, payloads=local, slots=stag_arr(local.size))
    yield
    mine = np.sort(np.asarray(ctx.receive().payloads, dtype=np.float64))
    ctx.work(local_sort_work(mine.size))

    # ---- phase 4: bucket sizes to processor 0 ----
    if pid < k:
        ctx.send(0, (pid, int(mine.size)), slot=base)
    yield
    if pid == 0:
        sizes = [0] * k
        for bucket, count in ctx.receive().payloads:
            sizes[bucket] = count
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
        ctx.send_many(
            np.arange(k, dtype=np.int64),
            payloads=offsets,
            slots=np.arange(k, dtype=np.int64),
        )
    yield
    inbox = ctx.receive()
    offset = int(inbox.payloads[0]) if len(inbox) else 0

    # ---- phase 6: route to final owners ----
    # Only the k <= m sorters send here, so the i-th outgoing flit can use
    # slot i directly (the p-wide stagger would stretch the span by p/m).
    # A key with global rank g goes to processor g // per; since each owner
    # holds a contiguous rank range, sorting the received keys reproduces
    # the rank order without shipping positions.
    if pid < k and mine.size:
        g = offset + np.arange(mine.size, dtype=np.int64)
        ctx.send_many(
            g // per, payloads=mine, slots=np.arange(mine.size, dtype=np.int64)
        )
    yield
    final = np.sort(np.asarray(ctx.receive().payloads, dtype=np.float64))
    return final.tolist()


def sample_sort(
    machine: Machine,
    keys,
    sorters: Optional[int] = None,
    oversample: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[RunResult, np.ndarray]:
    """Sort ``keys`` on a message-passing machine with randomized sample
    sort.  Returns ``(run_result, sorted_keys)``.

    ``sorters`` defaults to ``min(p, m)`` on globally-limited machines
    (full-bandwidth buckets) and ``p`` otherwise; ``oversample`` defaults
    to ``ceil(lg n) + 1`` samples per processor, enough for ``O(n/k)``
    buckets w.h.p.
    """
    if machine.uses_shared_memory:
        raise ValueError("sample_sort targets message-passing machines")
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size and not np.all(np.isfinite(keys)):
        raise ValueError("keys must be finite")
    n = keys.size
    p = machine.params.p
    m = machine.params.m
    if n == 0:
        res = machine.run(lambda ctx: [])
        return res, np.zeros(0)
    k = sorters if sorters is not None else (min(p, m) if m is not None else p)
    k = max(1, min(k, p))
    s = oversample if oversample is not None else (ilog2(max(2, n)) + 2)
    per = ceil_div(n, p)
    chunks = [keys[i * per : (i + 1) * per] for i in range(p)]
    rng = as_generator(seed)
    res = machine.run(
        _sample_sort_program,
        args=(n, k, s, per, m if m is not None else p, ),
        per_proc_args=[(c, int(rng.integers(0, 2**62))) for c in chunks],
    )
    out: List[float] = []
    for block in res.results:
        if block:
            out.extend(block)
    return res, np.asarray(out, dtype=np.float64)
