"""List ranking — Table 1, row 4.

Input: a linked list given as a successor array (``succ[i]`` is the next
node, ``-1`` at the tail); output: for every node its distance to the tail.

Two algorithms:

* :func:`list_ranking_wyllie` — Wyllie's pointer jumping, ``ceil(lg n)``
  rounds, one node per processor.  Per round every live node queries its
  successor and halves its pointer chain.  Communication is perfectly
  *balanced* (in/out degree 1), so on locally-limited machines this is
  already near the ``Ω(g lg n / lg lg n)`` lower bound — but its total
  message volume is ``Θ(n lg n)``, so on a globally-limited machine it
  cannot reach the Table-1 bound.

* :func:`list_ranking_contraction` — work-efficient randomized contraction
  (random-mate): nodes are block-distributed over ``a = min(p, m)``
  simulator processors; each round every live node flips a coin and a
  head-node splices out its tail-successor, so a constant fraction of the
  list disappears per round w.h.p. and the total message volume is
  ``O(n)``.  Spliced nodes record ``(parent, offset)``; a reverse-order
  expansion then assigns final ranks.  On the BSP(m) the bandwidth term is
  ``O(n/m)`` and the latency term ``O(L lg n)`` — the Table-1 shape
  ``O(L lg m + n/m)`` up to ``lg n`` vs ``lg m`` in the latency term (the
  paper gets ``lg m`` by switching to pointer jumping once the list fits
  in ``m``; we run contraction to the end, which only affects the
  latency-dominated regime).

Slot discipline for the contraction: only the ``a <= m`` simulators ever
send, each tagging its ``k``-th message of a superstep with slot ``k`` — so
no slot can exceed ``m`` injections, with zero coordination.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.util.intmath import ilog2
from repro.util.rng import SeedLike, as_generator

__all__ = [
    "list_ranking_wyllie",
    "list_ranking_contraction",
    "random_list",
    "sequential_ranks",
]

NIL = -1


def random_list(n: int, seed: SeedLike = None) -> np.ndarray:
    """A uniformly random linked list over nodes ``0..n-1`` as a successor
    array (tail has successor ``-1``)."""
    rng = as_generator(seed)
    order = rng.permutation(n)
    succ = np.full(n, NIL, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    return succ


def sequential_ranks(succ: Sequence[int]) -> np.ndarray:
    """Host-side oracle: distance of each node to the tail."""
    succ = np.asarray(succ, dtype=np.int64)
    n = succ.size
    is_succ = np.zeros(n, dtype=bool)
    valid = succ[succ != NIL]
    is_succ[valid] = True
    heads = np.nonzero(~is_succ)[0]
    if n and heads.size != 1:
        raise ValueError(f"input is not a single list (found {heads.size} heads)")
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    chain = []
    node = int(heads[0])
    while node != NIL:
        chain.append(node)
        node = int(succ[node])
    if len(chain) != n:
        raise ValueError("successor array contains a cycle or is disconnected")
    for dist_from_head, node in enumerate(chain):
        ranks[node] = n - 1 - dist_from_head
    return ranks


# ----------------------------------------------------------------------
# Wyllie pointer jumping (one node per processor)
# ----------------------------------------------------------------------


def _wyllie_bsp_program(ctx, rounds: int, succ0: int):
    pid = ctx.pid
    succ = succ0
    rank = 0 if succ == NIL else 1
    for _ in range(rounds):
        if succ != NIL:
            ctx.send(succ, ("q", pid), slot=ctx.stagger_slot())
        yield
        queries = [msg.payload[1] for msg in ctx.receive() if msg.payload[0] == "q"]
        for q in queries:  # at most one predecessor in a list
            ctx.send(q, ("a", succ, rank), slot=ctx.stagger_slot())
        yield
        for msg in ctx.receive():
            tag, nxt, nxt_rank = msg.payload
            rank += nxt_rank
            succ = nxt
    return rank


def _wyllie_qsm_program(ctx, rounds: int, succ0: int):
    pid = ctx.pid
    succ = succ0
    rank = 0 if succ == NIL else 1
    for r in range(rounds):
        ctx.write(("wy", r, pid), (succ, rank), slot=ctx.stagger_slot())
        yield
        handle = None
        if succ != NIL:
            handle = ctx.read(("wy", r, succ), slot=ctx.stagger_slot())
        yield
        if handle is not None:
            nxt, nxt_rank = handle.value
            rank += nxt_rank
            succ = nxt
    return rank


def list_ranking_wyllie(machine: Machine, succ: Sequence[int]) -> Tuple[RunResult, np.ndarray]:
    """Wyllie pointer jumping; requires one node per processor
    (``len(succ) == p``).  Returns ``(run_result, ranks)``."""
    succ = np.asarray(succ, dtype=np.int64)
    p = machine.params.p
    if succ.size != p:
        raise ValueError(f"Wyllie needs one node per processor ({succ.size} != {p})")
    rounds = max(1, ilog2(max(1, p - 1)) + 1)
    per_proc = [(int(s),) for s in succ]
    program = _wyllie_qsm_program if machine.uses_shared_memory else _wyllie_bsp_program
    res = machine.run(program, args=(rounds,), per_proc_args=per_proc)
    return res, np.asarray(res.results, dtype=np.int64)


# ----------------------------------------------------------------------
# Work-efficient randomized contraction on a = min(p, m) simulators
# ----------------------------------------------------------------------


def _contraction_program(ctx, a: int, max_rounds: int, nodes: Dict[int, int], seed: int):
    """Simulator program: ``nodes`` maps node id -> successor for the block
    owned by this processor.  Returns ``{node: rank}``.

    Message vocabulary (all routed to ``owner(v) = v % a``):
    ``("c", u, v, coin)``   u tells its successor v its id and coin;
    ``("s", v, u, sv, wv)`` v grants the splice: u absorbs v;
    ``("f", v, rank)``      expansion: v's final rank.
    """
    pid = ctx.pid
    if pid >= a:
        # Non-simulators idle but must match the simulators' yield count.
        for _ in range(2 * max_rounds + 1 + max_rounds + 1):
            yield
        return {}

    rng = _random.Random(seed)
    owner = lambda v: v % a
    succ = dict(nodes)
    weight = {u: (0 if s == NIL else 1) for u, s in succ.items()}
    alive = set(succ)
    spliced_at: Dict[int, List[Tuple[int, int, int]]] = {}  # round -> [(child, w_before)]
    splice_round_of: Dict[int, int] = {}

    # Each superstep's messages go out as one columnar batch; the k-th
    # message keeps slot k (the <= m senders discipline above), so the
    # slot column is just arange(count).
    def send_batch(dests: List[int], payloads: List[tuple]) -> None:
        if not dests:
            return
        ctx.send_many(
            np.asarray(dests, dtype=np.int64),
            payloads=payloads,
            slots=np.arange(len(dests), dtype=np.int64),
        )
        ctx.work(len(dests))

    # ---- contraction ----
    for rnd in range(max_rounds):
        # One coin per live node per round, used consistently whether the
        # node acts as a head (splicer) or a tail (splicee) — inconsistent
        # coins would let a node be spliced out while absorbing its own
        # successor, orphaning part of the list.
        coins = {u: rng.random() < 0.5 for u in sorted(alive)}
        senders = [u for u in sorted(alive) if succ[u] != NIL]
        send_batch(
            [owner(succ[u]) for u in senders],
            [("c", u, succ[u], coins[u]) for u in senders],
        )
        yield
        grants = []
        for _tag, u, v, coin_u in ctx.receive().payloads:
            if v in alive:
                # u=head (coin H), v=tail (coin T): v is spliced out by u.
                if coin_u and not coins[v]:
                    grants.append((v, u))
        send_batch(
            [owner(u) for _v, u in grants],
            [("s", v, u, succ[v], weight[v]) for v, u in grants],
        )
        for v, u in grants:
            alive.discard(v)
            splice_round_of[v] = rnd
        yield
        absorbed = ctx.receive().payloads
        for _tag, v, u, sv, wv in absorbed:
            spliced_at.setdefault(rnd, []).append((u, v, weight[u]))
            weight[u] += wv
            succ[u] = sv
        ctx.work(len(absorbed))

    # ---- finalize survivors ----
    ranks: Dict[int, int] = {}
    leftovers = [u for u in alive if succ[u] != NIL]
    for u in alive:
        if succ[u] == NIL:
            ranks[u] = weight[u]
    yield  # alignment barrier before expansion

    # ---- expansion (reverse round order) ----
    for rnd in range(max_rounds - 1, -1, -1):
        final = [
            (u, v, w_before)
            for (u, v, w_before) in spliced_at.get(rnd, ())
            if u in ranks
        ]
        send_batch(
            [owner(v) for _u, v, _w in final],
            [("f", v, ranks[u] - w_before) for u, v, w_before in final],
        )
        yield
        for _tag, v, rank_v in ctx.receive().payloads:
            ranks[v] = rank_v

    return {"ranks": ranks, "unfinished": leftovers}


def list_ranking_contraction(
    machine: Machine,
    succ: Sequence[int],
    seed: SeedLike = None,
    max_rounds: Optional[int] = None,
) -> Tuple[RunResult, np.ndarray]:
    """Randomized contraction list ranking on ``a = min(p, m)`` simulators
    (all ``p`` when the machine is locally limited).

    Returns ``(run_result, ranks)``.  Raises :class:`RuntimeError` in the
    exponentially unlikely event that ``max_rounds`` (default
    ``4 ceil(lg n) + 16``) rounds did not contract the whole list — rerun
    with a different seed or more rounds.
    """
    if machine.uses_shared_memory:
        raise ValueError(
            "contraction ranking is implemented for message-passing machines; "
            "use list_ranking_wyllie on QSM machines"
        )
    succ = np.asarray(succ, dtype=np.int64)
    n = succ.size
    p = machine.params.p
    m = machine.params.m
    a = min(p, m) if m is not None else p
    if max_rounds is None:
        max_rounds = 4 * (ilog2(max(1, n)) + 1) + 16
    rng = as_generator(seed)
    seeds = rng.integers(0, 2**62, size=p)
    blocks: List[Dict[int, int]] = [dict() for _ in range(p)]
    for u in range(n):
        blocks[u % a][u] = int(succ[u])
    per_proc = [(blocks[i], int(seeds[i])) for i in range(p)]
    res = machine.run(_contraction_program, args=(a, max_rounds), per_proc_args=per_proc)
    ranks = np.full(n, -1, dtype=np.int64)
    for out in res.results:
        if not out:
            continue
        if out["unfinished"]:
            raise RuntimeError(
                f"contraction did not finish in {max_rounds} rounds "
                f"({len(out['unfinished'])} nodes left on one simulator)"
            )
        for u, r in out["ranks"].items():
            ranks[u] = r
    if n and (ranks < 0).any():
        raise RuntimeError("some nodes never received a final rank")
    return res, ranks
