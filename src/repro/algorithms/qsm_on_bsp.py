"""Emulating shared memory on a message-passing machine.

The QSM is positioned (in the companion paper the text cites as [24, 25])
as a bridging model precisely because it maps efficiently onto the BSP;
this module makes the mapping executable in our engine: run a *QSM
program* on a *BSP machine* by hashing each shared-memory cell to an owner
processor and turning reads/writes into request/reply messages.

One QSM phase becomes three BSP supersteps:

1. **requests** — every processor sends its phase's read/write requests to
   the owners (staggered injection on globally-limited machines);
2. **serve** — owners apply the QSM semantics locally: reads are answered
   from the pre-phase cell values, then writes are applied
   (Arbitrary-resolved); replies to readers are sent;
3. **resolve** — readers install reply values into their
   :class:`~repro.core.engine.ReadHandle`-equivalents.

Contention behaves exactly like the QSM's κ — all requests for one cell
land on one owner — except it is *priced* by the BSP's h term, which is
the known Θ(κ) relationship.  The emulation validates the library's model
stack end-to-end: the same generator program produces the same answers on
a QSM machine and through this adapter on a BSP machine.
"""

from __future__ import annotations

from itertools import repeat as _repeat
from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, ProgramError, RunResult

__all__ = ["run_qsm_program_on_bsp", "SharedMemoryProxy"]

_addr_value = itemgetter(0, 1)  # (addr, value, 0) triple -> cells dict item


class _ProxyHandle:
    """Read-handle equivalent for the emulated shared memory."""

    __slots__ = ("addr", "_value", "_set")

    def __init__(self, addr: Any) -> None:
        self.addr = addr
        self._value = None
        self._set = False

    @property
    def value(self) -> Any:
        if not self._set:
            raise ProgramError(
                f"emulated read of {self.addr!r} not yet resolved — values "
                "arrive after the phase's yield"
            )
        return self._value


class _ProxyHandleList:
    """Batch-read result for the scalar proxy: a view over per-request
    handles, exposing the same ``.values`` as the columnar batch handle."""

    __slots__ = ("_handles",)

    def __init__(self, handles: List[_ProxyHandle]) -> None:
        self._handles = handles

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def values(self) -> List[Any]:
        return [h.value for h in self._handles]


class _ProxyBatchHandle:
    """Batch-read result for the columnar proxy: one object per
    ``read_many`` call; values are installed as one slice in the resolve
    superstep."""

    __slots__ = ("addrs", "_values", "_set")

    def __init__(self, addrs: Sequence[Any]) -> None:
        self.addrs = addrs  # list or ndarray, kept as given
        self._values: List[Any] = []
        self._set = False

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def values(self) -> List[Any]:
        if not self._set:
            raise ProgramError(
                "emulated batch read not yet resolved — values arrive after "
                "the phase's yield"
            )
        return self._values


class SharedMemoryProxy:
    """The ``ctx``-like object handed to the QSM program under emulation.

    Supports the QSM subset: ``read``/``write``/``read_many``/``write_many``
    /``work``/``stagger_slot`` plus ``pid``/``nprocs``.  ``send``/
    ``receive`` are unavailable (they would bypass the emulation).

    This base class expands batch calls into per-request handles (the
    scalar twin in :mod:`repro.algorithms.scalar_reference` iterates
    ``_reads`` directly); :class:`_BatchSharedMemoryProxy` — used by
    :func:`run_qsm_program_on_bsp` — records one batch object per call
    instead.  Request order, and therefore pricing, is identical.
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self.pid = ctx.pid
        self.nprocs = ctx.nprocs
        self._reads: List[Any] = []
        self._writes: List[Tuple[Any, Any]] = []
        self._k = 0

    # -- QSM program API --------------------------------------------------
    def read(self, addr: Any, slot: Optional[int] = None) -> _ProxyHandle:
        handle = _ProxyHandle(addr)
        self._reads.append(handle)
        return handle

    def write(self, addr: Any, value: Any, slot: Optional[int] = None) -> None:
        self._writes.append((addr, value))

    def read_many(self, addrs: Sequence[Any], *, slots=None) -> _ProxyHandleList:
        return _ProxyHandleList([self.read(a) for a in addrs])

    def write_many(self, addrs: Sequence[Any], values: Sequence[Any], *, slots=None) -> None:
        self._writes.extend(zip(list(addrs), list(values)))

    def work(self, amount: float = 1.0) -> None:
        self._ctx.work(amount)

    def stagger_slot(self, k: Optional[int] = None) -> Optional[int]:
        # slots are managed by the emulation's own staggering
        return None

    def send(self, *args, **kwargs):  # pragma: no cover - defensive
        raise ProgramError("emulated QSM programs cannot send point-to-point")

    def receive(self):  # pragma: no cover - defensive
        raise ProgramError("emulated QSM programs cannot receive directly")


class _BatchSharedMemoryProxy(SharedMemoryProxy):
    """Columnar proxy: ``read_many`` records one batch object (no
    per-request handles); the emulation flattens batches when building the
    request column and installs reply values as slices."""

    def read_many(self, addrs: Sequence[Any], *, slots=None) -> _ProxyBatchHandle:
        if not isinstance(addrs, (list, np.ndarray)):
            addrs = list(addrs)
        handle = _ProxyBatchHandle(addrs)
        self._reads.append(handle)
        return handle


def _owner(addr: Any, p: int) -> int:
    return hash(addr) % p


_HASH_MOD = (1 << 61) - 1  # CPython's hash modulus for int


def _int_addr_column(addrs: Sequence[Any]) -> Optional[np.ndarray]:
    """The address column as an int64 array, or None if it holds anything
    other than non-negative ints below CPython's hash modulus (for which
    ``hash(x) == x``, so ``% p`` reproduces ``_owner`` exactly)."""
    if isinstance(addrs, np.ndarray):
        if addrs.ndim != 1 or addrs.dtype.kind not in "iu":
            return None
        arr = addrs.astype(np.int64, copy=False)
    elif len(addrs) and isinstance(addrs[0], (int, np.integer)):
        try:
            arr = np.asarray(addrs, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
    else:
        return None
    if bool((arr >= 0).all()) and bool((arr < _HASH_MOD).all()):
        return arr
    return None


def _owner_column(addrs: Sequence[Any], p: int) -> np.ndarray:
    """Vectorized ``_owner`` over an address column: one modulo on the
    int fast path, per-address ``hash`` otherwise.  Both paths produce
    identical owners, so the choice is pricing-invisible."""
    arr = _int_addr_column(addrs)
    if arr is not None:
        return arr % p
    return np.fromiter(
        (_owner(a, p) for a in addrs), dtype=np.int64, count=len(addrs)
    )


def _emulation_program(ctx, qsm_program: Callable, extra_args: tuple, proc_extra: tuple = ()):
    proxy = _BatchSharedMemoryProxy(ctx)
    gen = qsm_program(proxy, *extra_args, *proc_extra)
    if not hasattr(gen, "__next__"):
        return gen  # plain function: no shared memory used after all
    result = None
    cells: Dict[Any, Any] = {}  # cells this processor owns

    while True:
        try:
            next(gen)
            finished = False
        except StopIteration as stop:
            result = stop.value
            finished = True

        reads, proxy._reads = proxy._reads, []
        writes, proxy._writes = proxy._writes, []

        # Flatten scalar handles and read_many batches into one address
        # column; spans remember where each handle's values live so the
        # resolve step can install replies by slice.  The one-batch case
        # (the columnar idiom) keeps the caller's column as-is.
        spans: List[Tuple[Any, int, int]] = []  # (handle, start, count)
        if len(reads) == 1 and type(reads[0]) is _ProxyBatchHandle:
            read_addrs = reads[0].addrs
            spans.append((reads[0], 0, len(read_addrs)))
        else:
            read_addrs = []
            for h in reads:
                if type(h) is _ProxyBatchHandle:
                    spans.append((h, len(read_addrs), len(h.addrs)))
                    read_addrs.extend(h.addrs)
                else:
                    spans.append((h, len(read_addrs), 1))
                    read_addrs.append(h.addr)
        n_reads = len(read_addrs)

        # --- superstep A: ship requests to owners, reads before writes
        # (the staggered-slot issue order).  The emulation serves its own
        # requests, so the wire format is private: a read travels as an
        # ``(index, addr)`` pair — one 2D int64 column when the addresses
        # are ints, zero per-request work — and a write as an
        # ``(addr, value, 0)`` triple; requesters come from the src column.
        p = ctx.nprocs
        if n_reads:
            arr = _int_addr_column(read_addrs)
            if arr is not None:
                r_payloads: Any = np.column_stack(
                    [np.arange(n_reads, dtype=np.int64), arr]
                )
                r_owners = arr % p
            else:
                r_payloads = [(i, a) for i, a in enumerate(read_addrs)]
                r_owners = _owner_column(read_addrs, p)
            ctx.send_many(
                r_owners, payloads=r_payloads, slots=ctx.stagger_slots(n_reads)
            )
        if writes:
            w_addrs, w_vals = zip(*writes)
            ctx.send_many(
                _owner_column(w_addrs, p),
                payloads=list(zip(w_addrs, w_vals, _repeat(0))),
                slots=ctx.stagger_slots(len(writes)),
            )
        yield

        # --- superstep B: owners serve reads (pre-write values), apply
        # writes, and reply (one pass over the inbox; writes are deferred
        # past the loop so every read sees the pre-phase cells) ---
        inbox = ctx.receive()
        pls = inbox.payloads
        cells_get = cells.get
        write_reqs: List[tuple] = []
        if isinstance(pls, np.ndarray):
            # pure int-addressed reads from every sender
            reply_dests: Any = inbox.srcs
            replies = list(
                zip(pls[:, 0].tolist(), map(cells_get, pls[:, 1].tolist()))
            )
        else:
            reply_dests = []
            replies = []
            for src, pl in zip(inbox.srcs.tolist(), pls):
                if len(pl) == 2:  # read: (index, addr); row or tuple
                    reply_dests.append(src)
                    replies.append((pl[0], cells_get(pl[1])))
                else:  # write: (addr, value, 0)
                    write_reqs.append(pl)
            reply_dests = np.asarray(reply_dests, dtype=np.int64)
        if replies:
            ctx.send_many(
                reply_dests, payloads=replies, slots=ctx.stagger_slots(len(replies))
            )
        # Arbitrary concurrent-write rule: last in arrival order wins
        # (dict.update preserves it).
        cells.update(map(_addr_value, write_reqs))
        yield

        # --- resolve replies into handles ---
        reply_pls = ctx.receive().payloads
        vals: List[Any] = [None] * n_reads
        if reply_pls:
            idxs, rvals = zip(*reply_pls)
            scatter = np.empty(n_reads, dtype=object)
            scatter[np.fromiter(idxs, np.int64, count=len(idxs))] = rvals
            vals = scatter.tolist()
        for h, start, count in spans:
            if type(h) is _ProxyBatchHandle:
                h._values = vals[start : start + count]
            else:
                h._value = vals[start]
            h._set = True

        if finished:
            return result


def run_qsm_program_on_bsp(
    machine: Machine,
    qsm_program: Callable,
    *,
    args: tuple = (),
    per_proc_args: Optional[Sequence[tuple]] = None,
) -> RunResult:
    """Run a QSM-style program (reads/writes through shared memory) on a
    message-passing machine via the owner-hashing emulation.

    The program must follow the QSM discipline (values used only after the
    phase's ``yield``) and every processor must execute the same number of
    phases (owners must stay alive to serve requests); each QSM phase costs
    three supersteps here.
    """
    if machine.uses_shared_memory:
        raise ValueError("the emulation targets message-passing machines")
    wrapped = (
        [(tuple(pp) if isinstance(pp, tuple) else (pp,),) for pp in per_proc_args]
        if per_proc_args is not None
        else None
    )
    return machine.run(
        _emulation_program,
        args=(qsm_program, args),
        per_proc_args=wrapped,
    )
