"""Emulating shared memory on a message-passing machine.

The QSM is positioned (in the companion paper the text cites as [24, 25])
as a bridging model precisely because it maps efficiently onto the BSP;
this module makes the mapping executable in our engine: run a *QSM
program* on a *BSP machine* by hashing each shared-memory cell to an owner
processor and turning reads/writes into request/reply messages.

One QSM phase becomes three BSP supersteps:

1. **requests** — every processor sends its phase's read/write requests to
   the owners (staggered injection on globally-limited machines);
2. **serve** — owners apply the QSM semantics locally: reads are answered
   from the pre-phase cell values, then writes are applied
   (Arbitrary-resolved); replies to readers are sent;
3. **resolve** — readers install reply values into their
   :class:`~repro.core.engine.ReadHandle`-equivalents.

Contention behaves exactly like the QSM's κ — all requests for one cell
land on one owner — except it is *priced* by the BSP's h term, which is
the known Θ(κ) relationship.  The emulation validates the library's model
stack end-to-end: the same generator program produces the same answers on
a QSM machine and through this adapter on a BSP machine.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import Machine, ProgramError, RunResult

__all__ = ["run_qsm_program_on_bsp", "SharedMemoryProxy"]


class _ProxyHandle:
    """Read-handle equivalent for the emulated shared memory."""

    __slots__ = ("addr", "_value", "_set")

    def __init__(self, addr: Any) -> None:
        self.addr = addr
        self._value = None
        self._set = False

    @property
    def value(self) -> Any:
        if not self._set:
            raise ProgramError(
                f"emulated read of {self.addr!r} not yet resolved — values "
                "arrive after the phase's yield"
            )
        return self._value


class SharedMemoryProxy:
    """The ``ctx``-like object handed to the QSM program under emulation.

    Supports the QSM subset: ``read``/``write``/``work``/``stagger_slot``
    plus ``pid``/``nprocs``.  ``send``/``receive`` are unavailable (they
    would bypass the emulation).
    """

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self.pid = ctx.pid
        self.nprocs = ctx.nprocs
        self._reads: List[_ProxyHandle] = []
        self._writes: List[Tuple[Any, Any]] = []
        self._k = 0

    # -- QSM program API --------------------------------------------------
    def read(self, addr: Any, slot: Optional[int] = None) -> _ProxyHandle:
        handle = _ProxyHandle(addr)
        self._reads.append(handle)
        return handle

    def write(self, addr: Any, value: Any, slot: Optional[int] = None) -> None:
        self._writes.append((addr, value))

    def work(self, amount: float = 1.0) -> None:
        self._ctx.work(amount)

    def stagger_slot(self, k: Optional[int] = None) -> Optional[int]:
        # slots are managed by the emulation's own staggering
        return None

    def send(self, *args, **kwargs):  # pragma: no cover - defensive
        raise ProgramError("emulated QSM programs cannot send point-to-point")

    def receive(self):  # pragma: no cover - defensive
        raise ProgramError("emulated QSM programs cannot receive directly")


def _owner(addr: Any, p: int) -> int:
    return hash(addr) % p


def _emulation_program(ctx, qsm_program: Callable, extra_args: tuple, proc_extra: tuple = ()):
    proxy = SharedMemoryProxy(ctx)
    gen = qsm_program(proxy, *extra_args, *proc_extra)
    if not hasattr(gen, "__next__"):
        return gen  # plain function: no shared memory used after all
    result = None
    cells: Dict[Any, Any] = {}  # cells this processor owns

    while True:
        try:
            next(gen)
            finished = False
        except StopIteration as stop:
            result = stop.value
            finished = True

        reads, proxy._reads = proxy._reads, []
        writes, proxy._writes = proxy._writes, []

        # --- superstep A: ship requests to owners ---
        for i, handle in enumerate(reads):
            ctx.send(
                _owner(handle.addr, ctx.nprocs),
                ("r", ctx.pid, i, handle.addr),
                slot=ctx.stagger_slot(),
            )
        for addr, value in writes:
            ctx.send(
                _owner(addr, ctx.nprocs),
                ("w", ctx.pid, addr, value),
                slot=ctx.stagger_slot(),
            )
        yield

        # --- superstep B: owners serve reads (pre-write values), apply
        # writes, and reply ---
        msgs = ctx.receive()
        read_reqs = [m.payload for m in msgs if m.payload[0] == "r"]
        write_reqs = [m.payload for m in msgs if m.payload[0] == "w"]
        for _tag, requester, idx, addr in read_reqs:
            ctx.send(requester, ("v", idx, cells.get(addr)), slot=ctx.stagger_slot())
        for _tag, _writer, addr, value in write_reqs:
            cells[addr] = value  # Arbitrary: last in arrival order wins
        yield

        # --- resolve replies into handles ---
        for msg in ctx.receive():
            _tag, idx, value = msg.payload
            reads[idx]._value = value
            reads[idx]._set = True

        if finished:
            return result


def run_qsm_program_on_bsp(
    machine: Machine,
    qsm_program: Callable,
    *,
    args: tuple = (),
    per_proc_args: Optional[Sequence[tuple]] = None,
) -> RunResult:
    """Run a QSM-style program (reads/writes through shared memory) on a
    message-passing machine via the owner-hashing emulation.

    The program must follow the QSM discipline (values used only after the
    phase's ``yield``) and every processor must execute the same number of
    phases (owners must stay alive to serve requests); each QSM phase costs
    three supersteps here.
    """
    if machine.uses_shared_memory:
        raise ValueError("the emulation targets message-passing machines")
    wrapped = (
        [(tuple(pp) if isinstance(pp, tuple) else (pp,),) for pp in per_proc_args]
        if per_proc_args is not None
        else None
    )
    return machine.run(
        _emulation_program,
        args=(qsm_program, args),
        per_proc_args=wrapped,
    )
