"""Summation, parity and prefix sums — Table 1, row 3.

``n = p`` input values, one per processor; the goal is the total (or XOR
for parity) at every processor, or all prefix sums.

* Globally limited (QSM(m)/BSP(m)): funnel the inputs onto ``a = min(p, m)``
  aggregators at full aggregate bandwidth (``n/m`` time), locally combine,
  then tree-reduce the ``a`` partial results (``lg m`` rounds, unit cost on
  QSM(m), ``L`` per round on BSP(m)).  Time ``Θ(lg m + n/m)`` /
  ``O(L lg m / lg L + n/m + L)``.
* Locally limited: a ``b``-ary reduction tree over all ``p`` processors;
  each round costs ``max(g(b-1), L)``.  The matching lower bound is the
  Beame–Håstad CRCW bound times ``g`` (Section 4.1):
  ``Ω(g lg n / lg lg n)`` on QSM(g).

The same skeleton computes any associative/commutative ``op``; prefix sums
add a downsweep carrying left-context.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.models.bsp_m import BSPm
from repro.models.qsm_m import QSMm
from repro.models.self_scheduling import SelfSchedulingBSPm

__all__ = [
    "reduce_all",
    "summation",
    "parity",
    "prefix_sums",
    "reduce_tree_bsp_program",
    "reduce_funnel_bsp_program",
    "reduce_tree_qsm_program",
    "reduce_funnel_qsm_program",
]

Op = Callable[[Any, Any], Any]


def _tree_rounds(a: int, b: int) -> int:
    rounds, span = 0, 1
    while span < a:
        span *= b
        rounds += 1
    return rounds


def _default_branching(machine: Machine) -> int:
    params = machine.params
    if isinstance(machine, (BSPm, SelfSchedulingBSPm, QSMm)):
        return max(2, int(params.L)) if not machine.uses_shared_memory else 2
    if machine.uses_shared_memory:
        # Unlike broadcast (where concurrent reads make wide trees cheap),
        # a reduce parent pays g per child read, so binary is optimal.
        return 2
    return max(2, int(params.L / params.g) + 1)


# ----------------------------------------------------------------------
# BSP programs
# ----------------------------------------------------------------------


def reduce_tree_bsp_program(ctx, op: Op, b: int, value: Any):
    """``b``-ary reduction tree over all processors; result at processor 0."""
    pid, p = ctx.pid, ctx.nprocs
    acc = value
    ctx.work(1)
    stride = 1
    for _ in range(_tree_rounds(p, b)):
        block = stride * b
        if pid % stride == 0 and pid % block != 0:
            ctx.send(pid - pid % block, acc, slot=0)
        yield
        if pid % block == 0:
            for payload in ctx.receive().payloads:
                acc = op(acc, payload)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


def reduce_funnel_bsp_program(ctx, op: Op, a: int, b: int, value: Any):
    """Funnel to ``a`` aggregators at full bandwidth, then tree-reduce."""
    pid, p = ctx.pid, ctx.nprocs
    if pid >= a:
        ctx.send(pid % a, value, slot=pid // a - 1)
    yield
    acc = value
    if pid < a:
        for payload in ctx.receive().payloads:
            acc = op(acc, payload)
            ctx.work(1)
    stride = 1
    for _ in range(_tree_rounds(a, b)):
        block = stride * b
        if pid < a and pid % stride == 0 and pid % block != 0:
            ctx.send(pid - pid % block, acc, slot=0)
        yield
        if pid < a and pid % block == 0:
            for payload in ctx.receive().payloads:
                acc = op(acc, payload)
                ctx.work(1)
        stride = block
    return acc if pid == 0 else None


# ----------------------------------------------------------------------
# QSM programs
# ----------------------------------------------------------------------


def reduce_tree_qsm_program(ctx, op: Op, b: int, value: Any):
    """Reduction tree over shared memory: children publish, parent reads.

    A parent pulls all ``b - 1`` children's cells with one ``read_many``
    per round (``stagger_slots`` advances the same per-superstep counter as
    ``b - 1`` scalar staggered reads, so the slot columns — and therefore
    model times — are unchanged)."""
    pid, p = ctx.pid, ctx.nprocs
    acc = value
    ctx.work(1)
    stride = 1
    for r in range(_tree_rounds(p, b)):
        block = stride * b
        if pid % stride == 0 and pid % block != 0:
            ctx.write(("red", r, pid), acc, slot=ctx.stagger_slot())
        yield
        handle = None
        if pid % block == 0:
            addrs = [
                ("red", r, child)
                for child in range(pid + stride, min(pid + block, p), stride)
            ]
            if addrs:
                handle = ctx.read_many(addrs, slots=ctx.stagger_slots(len(addrs)))
        yield
        if handle is not None:
            for v in handle.values:
                if v is not None:
                    acc = op(acc, v)
                    ctx.work(1)
        stride = block
    return acc if pid == 0 else None


def reduce_funnel_qsm_program(ctx, op: Op, a: int, b: int, value: Any):
    """Funnel onto ``a`` aggregators through shared memory, then tree.

    Slot discipline: the ``p - a`` writers share slots ``pid//a - 1`` (at
    most ``a <= m`` per slot); each aggregator reads its ``k``-th member's
    cell at slot ``k`` (at most ``a`` concurrent readers per slot).
    """
    pid, p = ctx.pid, ctx.nprocs
    if pid >= a:
        ctx.write(("fun", pid), value, slot=pid // a - 1)
    yield
    handle = None
    if pid < a:
        addrs = [("fun", member) for member in range(pid + a, p, a)]
        if addrs:
            handle = ctx.read_many(
                addrs, slots=np.arange(len(addrs), dtype=np.int64)
            )
    yield
    acc = value
    if handle is not None:
        for v in handle.values:
            if v is not None:
                acc = op(acc, v)
                ctx.work(1)
    stride = 1
    for r in range(_tree_rounds(a, b)):
        block = stride * b
        if pid < a and pid % stride == 0 and pid % block != 0:
            ctx.write(("redm", r, pid), acc, slot=0)
        yield
        handle = None
        if pid < a and pid % block == 0:
            addrs = [
                ("redm", r, child)
                for child in range(pid + stride, min(pid + block, a), stride)
            ]
            if addrs:
                handle = ctx.read_many(
                    addrs, slots=np.arange(len(addrs), dtype=np.int64)
                )
        yield
        if handle is not None:
            for v in handle.values:
                if v is not None:
                    acc = op(acc, v)
                    ctx.work(1)
        stride = block
    return acc if pid == 0 else None


# ----------------------------------------------------------------------
# Dispatch and wrappers
# ----------------------------------------------------------------------


def reduce_all(
    machine: Machine,
    values: Sequence[Any],
    op: Op = operator.add,
    branching: Optional[int] = None,
) -> Tuple[RunResult, Any]:
    """Reduce one value per processor with ``op``; result at processor 0.

    Returns ``(run_result, reduced_value)``.
    """
    p = machine.params.p
    if len(values) != p:
        raise ValueError(f"{len(values)} values for {p} processors")
    b = branching if branching is not None else _default_branching(machine)
    m = machine.params.m
    per_proc = [(v,) for v in values]
    if machine.uses_shared_memory:
        if m is not None:
            a = min(p, m)
            res = machine.run(
                reduce_funnel_qsm_program, args=(op, a, b), per_proc_args=per_proc
            )
        else:
            res = machine.run(reduce_tree_qsm_program, args=(op, b), per_proc_args=per_proc)
    else:
        if m is not None:
            a = min(p, m)
            res = machine.run(
                reduce_funnel_bsp_program, args=(op, a, b), per_proc_args=per_proc
            )
        else:
            res = machine.run(reduce_tree_bsp_program, args=(op, b), per_proc_args=per_proc)
    return res, res.results[0]


def summation(machine: Machine, values: Sequence[float], branching: Optional[int] = None):
    """Sum of one value per processor (Table 1 "Summation")."""
    return reduce_all(machine, values, operator.add, branching)


def parity(machine: Machine, bits: Sequence[int], branching: Optional[int] = None):
    """Parity (XOR) of one bit per processor (Table 1 "Parity")."""
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"parity input must be bits, got {bit!r}")
    return reduce_all(machine, bits, operator.xor, branching)


# ----------------------------------------------------------------------
# Prefix sums (binary up/down sweep; used by the Section 6 senders)
# ----------------------------------------------------------------------


def _prefix_bsp_program(ctx, op: Op, value: Any):
    """Inclusive prefix sums via binary up/down sweep (message passing).

    Each tree node (a processor at some stride level) remembers its *left*
    subtree total so the downsweep can hand the right child its carry.
    """
    pid, p = ctx.pid, ctx.nprocs
    rounds = _tree_rounds(p, 2)
    subtotal = value
    ctx.work(1)
    left_totals: List[Any] = []  # my subtree total before absorbing right child
    m = ctx._machine.params.m
    cap = m if m is not None else p  # stagger senders m-per-slot on BSP(m)
    stride = 1
    for _ in range(rounds):
        if pid % (2 * stride) == stride:
            ctx.send(pid - stride, subtotal, slot=(pid // (2 * stride)) // cap)
        yield
        if pid % (2 * stride) == 0:
            msgs = ctx.receive()
            left_totals.append(subtotal)
            if msgs:
                subtotal = op(subtotal, msgs[0].payload)
                ctx.work(1)
        stride *= 2
    carry = None
    stride = 2 ** max(rounds - 1, 0)
    for _ in range(rounds):
        if pid % (2 * stride) == 0 and left_totals:
            my_left = left_totals.pop()
            right = pid + stride
            if right < p:
                right_carry = my_left if carry is None else op(carry, my_left)
                ctx.send(right, right_carry, slot=(pid // (2 * stride)) // cap)
                ctx.work(1)
        yield
        if pid % (2 * stride) == stride:
            msgs = ctx.receive()
            if msgs:
                carry = msgs[0].payload
        stride = max(1, stride // 2)
    ctx.work(1)
    return value if carry is None else op(carry, value)


def _prefix_qsm_program(ctx, op: Op, value: Any):
    """Inclusive prefix sums over shared memory: the same binary up/down
    sweep as the BSP program, with each message replaced by a write phase
    plus a read phase (cells keyed by level and receiver)."""
    pid, p = ctx.pid, ctx.nprocs
    rounds = _tree_rounds(p, 2)
    subtotal = value
    ctx.work(1)
    left_totals: List[Any] = []
    stride = 1
    for lvl in range(rounds):
        if pid % (2 * stride) == stride:
            ctx.write(("px-up", lvl, pid - stride), subtotal, slot=ctx.stagger_slot())
        yield
        handle = None
        if pid % (2 * stride) == 0 and pid + stride < p:
            handle = ctx.read(("px-up", lvl, pid), slot=ctx.stagger_slot())
        yield
        if pid % (2 * stride) == 0:
            left_totals.append(subtotal)
            if handle is not None and handle.value is not None:
                subtotal = op(subtotal, handle.value)
                ctx.work(1)
        stride *= 2
    carry = None
    stride = 2 ** max(rounds - 1, 0)
    for lvl in range(rounds):
        if pid % (2 * stride) == 0 and left_totals:
            my_left = left_totals.pop()
            right = pid + stride
            if right < p:
                down = my_left if carry is None else op(carry, my_left)
                ctx.write(("px-dn", lvl, right), down, slot=ctx.stagger_slot())
                ctx.work(1)
        yield
        handle = None
        if pid % (2 * stride) == stride:
            handle = ctx.read(("px-dn", lvl, pid), slot=ctx.stagger_slot())
        yield
        if handle is not None and handle.value is not None:
            carry = handle.value
        stride = max(1, stride // 2)
    ctx.work(1)
    return value if carry is None else op(carry, value)


def prefix_sums(
    machine: Machine, values: Sequence[Any], op: Op = operator.add
) -> Tuple[RunResult, List[Any]]:
    """Inclusive prefix sums: processor ``i`` ends with
    ``op(values[0], ..., values[i])``.

    Works on both machine families: message-passing machines run the
    binary up/down sweep over point-to-point messages; shared-memory
    machines run the same sweep through per-level cells (two phases per
    round).  Time ``O(lg p)`` supersteps either way.
    """
    p = machine.params.p
    if len(values) != p:
        raise ValueError(f"{len(values)} values for {p} processors")
    program = (
        _prefix_qsm_program if machine.uses_shared_memory else _prefix_bsp_program
    )
    res = machine.run(program, args=(op,), per_proc_args=[(v,) for v in values])
    return res, list(res.results)
