"""Sorting — Table 1, row 5.

The paper sorts by routing the keys to a small set of processors and running
the Adler–Byers–Karp adaptation of Leighton's **columnsort**; when
``m = O(n^{1-eps})`` the time is within a constant of routing a balanced
permutation: ``Θ(n/m)`` on QSM(m), ``Θ(n/m + L)`` on BSP(m).

We implement columnsort itself, both as a host-side reference
(:func:`columnsort_reference`) and as an engine program
(:func:`columnsort`): ``s`` sorter processors each own one column of an
``r × s`` matrix (``r >= 2(s-1)^2``, ``s | r``); the eight steps alternate
local column sorts with fixed global permutations (transpose, untranspose,
shift, unshift), each permutation moving all ``n`` keys through the network
in ``n/s`` staggered slots.

**Substitution note** (recorded in DESIGN.md): the paper uses ``m lg n``
sorter processors with a recursive columnsort to absorb the local-sort
``lg`` factor and reach ``O(n/m)`` total; we use ``s = min(m, (n/2)^{1/3})``
columns and a single columnsort level, so the *communication* term is the
paper's ``Θ(n/m)`` exactly while local work carries an extra ``lg`` factor.
The benchmark separates the two components via the run's cost breakdown.

The locally-limited machine runs the *same program*; each permutation then
costs ``g·(n/s)`` instead of ``n/s`` — a clean ``Θ(g)`` separation on the
communication term.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive

__all__ = [
    "columnsort",
    "columnsort_reference",
    "choose_columns",
    "local_sort_work",
]

_NEG = -np.inf
_POS = np.inf


def local_sort_work(k: int) -> float:
    """Comparison-sort work charge ``k * max(1, lg k)``."""
    if k <= 0:
        return 0.0
    return k * max(1.0, math.log2(k))


def choose_columns(n: int, limit: Optional[int]) -> Tuple[int, int]:
    """Pick ``(r, s)`` for columnsort: the largest ``s <= limit`` with
    ``r = s * ceil(n / s^2)`` satisfying Leighton's ``r >= 2(s-1)^2``
    (``s | r`` holds by construction).  ``limit`` is ``m`` on a
    globally-limited machine."""
    check_positive("n", n)
    cap = limit if limit is not None else n
    s = max(1, min(cap, int(round((n / 2) ** (1.0 / 3.0)))))
    while s > 1:
        r = s * ceil_div(n, s * s)
        if r >= 2 * (s - 1) ** 2 and r * s >= n:
            return r, s
        s -= 1
    return n, 1


def _sort_columns(mat: np.ndarray) -> np.ndarray:
    return np.sort(mat, axis=0)


def columnsort_reference(keys: Sequence[float], r: int, s: int) -> np.ndarray:
    """Host-side columnsort over an ``r x s`` matrix (column-major layout).

    Requires ``r * s >= len(keys)``, ``s | r`` and ``r >= 2(s-1)^2``; pads
    with ``+inf`` and strips the pads from the sorted output.  Used as the
    oracle for the engine program and as a standalone PRAM-style reference.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.size
    if r * s < n:
        raise ValueError(f"matrix {r}x{s} too small for {n} keys")
    if s > 1 and r % s != 0:
        raise ValueError(f"columnsort needs s | r, got r={r}, s={s}")
    if s > 1 and r < 2 * (s - 1) ** 2:
        raise ValueError(f"columnsort needs r >= 2(s-1)^2, got r={r}, s={s}")
    flat = np.concatenate([keys, np.full(r * s - n, _POS)])
    mat = flat.reshape(s, r).T  # column j = flat[j*r:(j+1)*r]

    mat = _sort_columns(mat)  # 1
    mat = mat.T.reshape(r, s)  # 2: read column-major, write row-major
    mat = _sort_columns(mat)  # 3
    mat = mat.reshape(s, r).T  # 4: inverse of 2
    mat = _sort_columns(mat)  # 5
    shift = r // 2
    flat6 = np.concatenate(
        [np.full(shift, _NEG), mat.T.ravel(), np.full(r - shift, _POS)]
    )  # 6: shift down by r/2 into s+1 columns
    mat7 = flat6.reshape(s + 1, r).T
    mat7 = _sort_columns(mat7)  # 7
    flat8 = mat7.T.ravel()[shift : shift + r * s]  # 8: unshift
    out = flat8[flat8 != _POS]
    if out.size != n:
        # keys may legitimately be +inf; fall back to length-based strip
        out = flat8[:n] if np.all(flat8[n:] == _POS) else flat8
    return out


# ----------------------------------------------------------------------
# Engine program
# ----------------------------------------------------------------------


def _columnsort_program(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    """SPMD columnsort: procs ``0..s-1`` own columns, proc ``s`` owns the
    shift-overflow column, everyone initially holds ``chunk`` of the input.

    Slot discipline: distribution is staggered ``p``-wide (slot =
    ``k*ceil(p/cap) + pid//cap``); the permutation steps have only
    ``s+1 <= cap`` senders, so the ``k``-th outgoing flit simply uses slot
    ``k``.
    """
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    # ---- distribute: global index -> column (index // r) ----
    offset = pid * per
    for k, key in enumerate(chunk):
        g = offset + k
        ctx.send(g // r, (g % r, float(key)), slot=k * groups + pid // m_cap)
    yield

    col = np.full(r, _POS)
    if pid < s:
        for msg in ctx.receive():
            row, key = msg.payload
            col[row] = key
    elif pid == s:
        ctx.receive()

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    def permute(dest_cols: np.ndarray, dest_rows: np.ndarray):
        for k in range(r):
            ctx.send(int(dest_cols[k]), (int(dest_rows[k]), float(col[k])), slot=k)

    rows = np.arange(r)

    # ---- step 1 + 2 ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows  # column-major linear indices
        dc, dr = kidx % s, kidx // s
        permute(dc, dr)
    yield
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 3 + 4 ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid  # row-major linear indices of my entries
        dc, dr = k2 // r, k2 % r
        permute(dc, dr)
    yield
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        dc, dr = kidx // r, kidx % r
        permute(dc, dr)
    yield
    if pid <= s:
        newcol = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            newcol[shift:] = _POS  # only rows [0, shift) are -inf pads
            newcol[:shift] = _NEG
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        col = newcol

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        for k in range(r):
            if valid[k]:
                ctx.send(int(kidx[k] // r), (int(kidx[k] % r), float(col[k])), slot=k)
    yield
    sorted_col = None
    if pid < s:
        newcol = np.full(r, _POS)
        for msg in ctx.receive():
            row, key = msg.payload
            newcol[row] = key
        sorted_col = newcol

    # ---- collect: route to final owners, n/p keys each ----
    per_proc = ceil_div(n, p)
    if pid < s:
        for k in range(r):
            g = pid * r + k  # global sorted position (column-major)
            if g < n:
                ctx.send(g // per_proc, (g % per_proc, float(sorted_col[k])), slot=k)
    yield
    mine = [None] * per_proc
    for msg in ctx.receive():
        idx, key = msg.payload
        mine[idx] = key
    return [x for x in mine if x is not None]


def _columnsort_qsm_program(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    """Shared-memory columnsort: identical step structure to the BSP
    program, but every permutation is a write phase (cells keyed by the
    *destination* position, which is a fixed function of the step) followed
    by a read phase in which each sorter reads its column's ``r`` cells.

    Slot discipline mirrors the BSP program: distribution is staggered
    ``p``-wide, permutation phases have at most ``s+1 <= cap`` requesters
    per slot index.
    """
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    # ---- distribute ----
    offset = pid * per
    for k, key in enumerate(chunk):
        g = offset + k
        ctx.write(("cs", 0, g // r, g % r), float(key), slot=k * groups + pid // m_cap)
    yield

    def read_column(step: int) -> "np.ndarray":
        handles = [
            ctx.read(("cs", step, pid, row), slot=row) for row in range(r)
        ]
        return handles

    col = np.full(r, _POS)
    handles = read_column(0) if pid < s else []
    yield
    if pid < s:
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    rows = np.arange(r)

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    def write_perm(step: int, dest_cols, dest_rows, valid=None):
        # Slot = source row index: in the unshift step columns 0 and s have
        # complementary valid row ranges, so using the (uncompacted) row
        # keeps every slot at <= s concurrent writers.
        for k in range(r):
            if valid is not None and not valid[k]:
                continue
            ctx.write(
                ("cs", step, int(dest_cols[k]), int(dest_rows[k])),
                float(col[k]),
                slot=k,
            )

    # ---- step 1 + 2 (transpose) ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows
        write_perm(2, kidx % s, kidx // s)
    yield
    handles = read_column(2) if pid < s else []
    yield
    if pid < s:
        col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 3 + 4 (untranspose) ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid
        write_perm(4, k2 // r, k2 % r)
    yield
    handles = read_column(4) if pid < s else []
    yield
    if pid < s:
        col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        write_perm(6, kidx // r, kidx % r)
    yield
    handles = read_column(6) if pid <= s else []
    yield
    if pid <= s:
        col = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            col[shift:] = _POS
            col[:shift] = _NEG
        for row, h in enumerate(handles):
            if h.value is not None:
                col[row] = h.value

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        write_perm(8, np.where(valid, kidx // r, 0), np.where(valid, kidx % r, 0), valid)
    yield
    handles = read_column(8) if pid < s else []
    yield
    sorted_col = None
    if pid < s:
        sorted_col = np.full(r, _POS)
        for row, h in enumerate(handles):
            if h.value is not None:
                sorted_col[row] = h.value

    # ---- collect ----
    per_proc = ceil_div(n, p)
    if pid < s:
        slot = 0
        for k in range(r):
            g = pid * r + k
            if g < n:
                ctx.write(("out", g // per_proc, g % per_proc), float(sorted_col[k]), slot=slot)
                slot += 1
    yield
    out_handles = [
        ctx.read(("out", pid, j), slot=ctx.stagger_slot())
        for j in range(per_proc)
        if pid * per_proc + j < n
    ]
    yield
    return [h.value for h in out_handles if h.value is not None]


def columnsort(
    machine: Machine,
    keys: Sequence[float],
    columns: Optional[int] = None,
) -> Tuple[RunResult, np.ndarray]:
    """Sort ``keys`` with columnsort on any of the four machine models.

    Returns ``(run_result, sorted_keys)``; processor ``i``'s final block is
    ``result.results[i]``.  Keys must be finite floats (``±inf`` are the
    pad sentinels).  On QSM machines the permutations move through shared
    memory (write phase + read phase); on BSP machines they are
    point-to-point messages — same structure, same Θ(n/m) communication.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size and not np.all(np.isfinite(keys)):
        raise ValueError("keys must be finite (±inf are reserved as pads)")
    n = keys.size
    p = machine.params.p
    m = machine.params.m
    cap = m if m is not None else p
    if columns is not None:
        s = columns
        r = s * ceil_div(n, s * s) if s > 1 else n
    else:
        # QSM phases have s+1 active requesters (the shift-overflow column
        # reads/writes too), so keep s+1 <= m there; BSP permutation steps
        # never have more than s concurrent senders per slot.
        limit = cap - 1 if machine.uses_shared_memory else cap
        r, s = choose_columns(n, min(max(1, limit), p - 1) if p > 1 else 1)
    if s + 1 > p and s > 1:
        raise ValueError(f"columnsort with s={s} needs at least s+1={s+1} processors")
    if s == 1:
        # Degenerate single-column case: local sort on processor 0.
        def _seq(ctx, data):
            if ctx.pid == 0:
                ctx.work(local_sort_work(len(data)))
            yield
            return sorted(data) if ctx.pid == 0 else []

        res = machine.run(_seq, args=(list(map(float, keys)),))
        return res, np.asarray(res.results[0], dtype=np.float64)

    per_proc = ceil_div(n, p)
    chunks = [
        [float(x) for x in keys[i * per_proc : (i + 1) * per_proc]] for i in range(p)
    ]
    program = _columnsort_qsm_program if machine.uses_shared_memory else _columnsort_program
    res = machine.run(
        program,
        args=(n, r, s, cap, per_proc),
        per_proc_args=[(c,) for c in chunks],
    )
    out: List[float] = []
    for block in res.results:
        if block:
            out.extend(block)
    return res, np.asarray(out, dtype=np.float64)
